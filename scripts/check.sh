#!/usr/bin/env bash
# Full local gate for the oocnvm workspace. Run from anywhere:
#
#   scripts/check.sh          # everything (what CI runs)
#   scripts/check.sh --fast   # skip the release build
#
# Stages, in dependency order:
#   1. rustfmt        — formatting is canonical (`cargo fmt --check`)
#   2. clippy         — workspace lint policy ([workspace.lints]: the
#                       unwrap/expect/panic deny set, unsafe_code)
#   3. simlint        — simulator invariants (determinism, unit-safety,
#                       no-panic, exhaustive matches, atomic-ordering
#                       and lock-order concurrency passes;
#                       docs/INVARIANTS.md, docs/CONCURRENCY.md)
#   4. tests          — the whole workspace test suite
#   5. release build  — tier-1 artifact (skipped with --fast)
#   6. reliability    — fault-injection smoke: the seeded fault sweep
#                       must be byte-identical run-to-run and the zero
#                       plan identical to the fault-free driver
#                       (docs/FAULT_MODEL.md; skipped with --fast)
#   7. obsreport      — observability smoke: the traced run must match
#                       the untraced run byte-for-byte, the exported
#                       Chrome-trace JSON must parse and be replay-
#                       identical, and the latency attribution must sum
#                       exactly (docs/OBSERVABILITY.md; skipped with
#                       --fast)
#   8. thread sweep   — headline/reliability/obsreport JSON exports at
#                       RAYON_NUM_THREADS=1 and =8 must be byte-
#                       identical: the thread count is invisible in
#                       every output (docs/PARALLELISM.md; skipped
#                       with --fast)
#   9. simlint baseline — the versioned `simlint --json` findings are
#                       diffed against the committed
#                       results/simlint.baseline.json: any new
#                       (rule, path) finding or allowlist growth fails
#                       the gate, including under the concurrency
#                       passes (docs/STATIC_ANALYSIS.md)
#  10. simcheck       — model-checking smoke: exhaustively explores the
#                       vendored pool's claim/poison protocol at 2-3
#                       threads on shadow atomics (zero violations) and
#                       re-detects every planted fixture bug at its
#                       pinned execution count (docs/CONCURRENCY.md)
#  11. ufs            — crash-consistency smoke: the journaled UFS must
#                       recover to the committed prefix from power loss
#                       (dropped and torn) at every device write of the
#                       smoke workload, and the study must be byte-
#                       identical on a same-seed re-run (docs/UFS.md;
#                       skipped with --fast)
#  12. bench          — perf-regression smoke: the pinned scenario's
#                       simulated results must match the committed
#                       results/BENCH_core.json byte-for-byte, host
#                       wall time must stay inside the tolerance band,
#                       and profiling on vs off must not change a
#                       result byte (docs/PROFILING.md; skipped with
#                       --fast)
#  13. tenants        — multi-tenant QoS smoke: the tenant-density
#                       sweep must be byte-identical run-to-run and
#                       match the committed results/BENCH_tenants.json
#                       byte-for-byte (docs/TENANCY.md; skipped with
#                       --fast)
#  14. hotpath ratchet — `simlint --json --baseline`: the versioned
#                       oocnvm.simlint/3 document (including the
#                       hot-path allocation inventory: per-crate
#                       per_event/per_run site counts from the
#                       interprocedural hotpath pass) must not grow
#                       versus results/simlint.baseline.json — any new
#                       per-event allocation on a hot path fails the
#                       gate (docs/STATIC_ANALYSIS.md)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *)
            echo "usage: scripts/check.sh [--fast]" >&2
            exit 2
            ;;
    esac
done

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace"
cargo clippy --workspace --quiet

step "simlint (simulator invariants + burn-down allowlist)"
cargo run --quiet -p simlint

step "cargo test --workspace"
cargo test --workspace --quiet

if [ "$fast" -eq 0 ]; then
    step "cargo build --release"
    cargo build --release --quiet

    step "reliability --smoke (fault-injection determinism)"
    cargo run --release --quiet --bin reliability -- --smoke

    step "obsreport --smoke (observer-effect freedom + trace export)"
    cargo run --release --quiet --bin obsreport -- --smoke --out target/obs_smoke.trace.json

    step "thread sweep (JSON byte-identical at 1 vs 8 threads)"
    for n in 1 8; do
        RAYON_NUM_THREADS=$n OOCNVM_TRACE_MIB=8 \
            cargo run --release --quiet -p oocnvm-bench --bin headline -- \
            --json "target/headline.t$n.json" > /dev/null
        RAYON_NUM_THREADS=$n \
            cargo run --release --quiet --bin reliability -- --smoke \
            --json "target/reliability.t$n.json" > /dev/null
        RAYON_NUM_THREADS=$n \
            cargo run --release --quiet --bin obsreport -- --smoke \
            --out "target/obsreport.t$n.trace.json" \
            --json "target/obsreport.t$n.json" > /dev/null
        RAYON_NUM_THREADS=$n \
            cargo run --release --quiet --bin tenants -- --smoke \
            --json "target/tenants.t$n.json" > /dev/null
    done
    for doc in headline reliability obsreport tenants; do
        cmp "target/$doc.t1.json" "target/$doc.t8.json" || {
            echo "check.sh: $doc JSON differs between 1 and 8 threads" >&2
            exit 1
        }
    done
    cmp target/obsreport.t1.trace.json target/obsreport.t8.trace.json || {
        echo "check.sh: obsreport trace JSON differs between 1 and 8 threads" >&2
        exit 1
    }
fi

step "simlint --baseline (findings ratchet vs committed baseline)"
cargo run --quiet -p simlint -- --baseline results/simlint.baseline.json

step "simcheck --smoke (pool-protocol model check + planted fixtures)"
cargo run --quiet -p simcheck -- --smoke

if [ "$fast" -eq 0 ]; then
    step "ufs --smoke (exhaustive crash-point recovery sweep)"
    cargo run --release --quiet --bin ufs -- --smoke

    step "bench --smoke (pinned perf baseline + profiler observer effect)"
    cargo run --release --quiet -p oocnvm-bench --bin bench -- --smoke

    step "tenants --smoke (multi-tenant QoS baseline, byte-identical)"
    cargo run --release --quiet --bin tenants -- --smoke
fi

step "simlint --json --baseline (hot-path allocation inventory ratchet)"
cargo run --quiet -p simlint -- --json --baseline results/simlint.baseline.json \
    > target/simlint.json

echo
echo "check.sh: all gates passed"
