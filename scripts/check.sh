#!/usr/bin/env bash
# Full local gate for the oocnvm workspace. Run from anywhere:
#
#   scripts/check.sh          # everything (what CI runs)
#   scripts/check.sh --fast   # skip the release build
#
# Stages, in dependency order:
#   1. rustfmt        — formatting is canonical (`cargo fmt --check`)
#   2. clippy         — workspace lint policy ([workspace.lints]: the
#                       unwrap/expect/panic deny set, unsafe_code)
#   3. simlint        — simulator invariants (determinism, unit-safety,
#                       no-panic, exhaustive matches; docs/INVARIANTS.md)
#   4. tests          — the whole workspace test suite
#   5. release build  — tier-1 artifact (skipped with --fast)
#   6. reliability    — fault-injection smoke: the seeded fault sweep
#                       must be byte-identical run-to-run and the zero
#                       plan identical to the fault-free driver
#                       (docs/FAULT_MODEL.md; skipped with --fast)
#   7. obsreport      — observability smoke: the traced run must match
#                       the untraced run byte-for-byte, the exported
#                       Chrome-trace JSON must parse and be replay-
#                       identical, and the latency attribution must sum
#                       exactly (docs/OBSERVABILITY.md; skipped with
#                       --fast)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *)
            echo "usage: scripts/check.sh [--fast]" >&2
            exit 2
            ;;
    esac
done

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace"
cargo clippy --workspace --quiet

step "simlint (simulator invariants + burn-down allowlist)"
cargo run --quiet -p simlint

step "cargo test --workspace"
cargo test --workspace --quiet

if [ "$fast" -eq 0 ]; then
    step "cargo build --release"
    cargo build --release --quiet

    step "reliability --smoke (fault-injection determinism)"
    cargo run --release --quiet --bin reliability -- --smoke

    step "obsreport --smoke (observer-effect freedom + trace export)"
    cargo run --release --quiet --bin obsreport -- --smoke --out target/obs_smoke.trace.json
fi

echo
echo "check.sh: all gates passed"
