// True negative: allocates in a loop, but nothing on a hot path calls
// it, so it is not hot-reachable.
// Expected: 0 findings, 0 inventory sites.
pub fn summarize(names: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for n in names {
        out.push(format!("{n}!"));
    }
    out
}
