// True negative: the buffer is allocated once outside the loop and
// reused via clear()/push() — amortised growth is not a site, and the
// hoisted allocation is per-run (inventory only, no finding).
// Expected: 0 findings, 1 per-run inventory site.
pub struct SsdDevice;

impl SsdDevice {
    pub fn run_observed(&self, n: u64) -> u64 {
        let mut buf: Vec<u64> = Vec::with_capacity(64);
        let mut total = 0;
        for i in 0..n {
            buf.clear();
            buf.push(i);
            total += buf.len() as u64;
        }
        total
    }
}
