// Planted bug: fresh allocations inside a loop of a hot root.
// Expected: 2 per-event findings (vec![] and collect).
pub struct SsdDevice;

impl SsdDevice {
    pub fn run_observed(&self, n: u64) -> u64 {
        let mut total = 0;
        for i in 0..n {
            let scratch = vec![0u8; 16];
            let ids: Vec<u64> = (0..i).collect();
            total += scratch.len() as u64 + ids.len() as u64;
        }
        total
    }
}
