// Planted bug: clone of a large struct in a helper that is only hot
// because it is called from inside the hot root's loop (tests
// interprocedural loop-context propagation).
// Expected: 1 per-event finding (clone).
pub struct Table {
    rows: Vec<u64>,
}

pub struct SsdDevice {
    table: Table,
}

impl SsdDevice {
    pub fn run_observed(&self, n: u64) -> u64 {
        let mut acc = 0;
        for _ in 0..n {
            acc += self.snapshot();
        }
        acc
    }

    fn snapshot(&self) -> u64 {
        let copy = self.table.clone();
        copy.rows.len() as u64
    }
}
