// Fixture: determinism + unit-safety violations in a simulator-state
// crate (`ssd`). Expected findings:
//   nondeterministic_collection x2 (HashMap, HashSet — one mention each)
//   bare_cast x2 (`as u64`, `as f64`)
//   lock_order x1 (`backward` closes the alpha/beta cycle opened in the
//   interconnect fixture — the graph is workspace-wide)
// `LinkedHashMap` must NOT fire (left word boundary), and the casts in
// the comment / string literal below must NOT fire (cleaned text).
// `admit` adds no findings of its own: it is the cross-crate callee the
// core fixture passes a bytes value to, proving the unit pass checks
// call arguments through the workspace symbol index. `respects_drop`
// and `safe_nest` must NOT fire: an explicit `drop` releases the guard
// before the second acquisition, and a consistently-ordered pair is
// acyclic.
pub type Map = std::collections::HashMap<u64, u64>;
pub type Set = std::collections::HashSet<u64>;

pub struct LinkedHashMapLike;

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn ratio(x: u32) -> f64 {
    x as f64
}

pub fn innocuous() -> &'static str {
    // not a cast: 1 as u64 inside a comment
    "also not a cast: 2 as u64"
}

pub fn admit(deadline_ns: u64) -> u64 {
    deadline_ns
}

use std::sync::Mutex;

pub fn backward(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let gb = beta.lock();
    let ga = alpha.lock();
    drop(ga);
    drop(gb);
}

pub fn respects_drop(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let gb = beta.lock();
    drop(gb);
    let ga = alpha.lock();
    drop(ga);
}

pub fn safe_nest(gamma: &Mutex<u32>, delta: &Mutex<u32>) {
    let gg = gamma.lock();
    let gd = delta.lock();
    drop(gd);
    drop(gg);
}

// Hot-path fixture: `SsdDevice::run_observed` is a declared hot root, so
// the `vec![]` inside its loop is a per-event `hotpath_alloc` finding
// (exactly one). The hoisted `scratch` reuse via `clear`/`push` must NOT
// fire — amortized growth of a pre-existing buffer is the clean idiom.
pub mod device {
    pub struct SsdDevice {
        pub scratch: Vec<u8>,
    }

    impl SsdDevice {
        pub fn run_observed(&mut self) -> usize {
            let mut total = 0;
            for i in 0..4usize {
                let frame = vec![0u8; 16];
                self.scratch.clear();
                self.scratch.push(0u8);
                total += frame.len() + self.scratch.len() + i;
            }
            total
        }
    }
}
