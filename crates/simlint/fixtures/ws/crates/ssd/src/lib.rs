// Fixture: determinism + unit-safety violations in a simulator-state
// crate (`ssd`). Expected findings:
//   nondeterministic_collection x2 (HashMap, HashSet — one mention each)
//   bare_cast x2 (`as u64`, `as f64`)
// `LinkedHashMap` must NOT fire (left word boundary), and the casts in
// the comment / string literal below must NOT fire (cleaned text).
// `admit` adds no findings of its own: it is the cross-crate callee the
// core fixture passes a bytes value to, proving the unit pass checks
// call arguments through the workspace symbol index.
pub type Map = std::collections::HashMap<u64, u64>;
pub type Set = std::collections::HashSet<u64>;

pub struct LinkedHashMapLike;

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn ratio(x: u32) -> f64 {
    x as f64
}

pub fn innocuous() -> &'static str {
    // not a cast: 1 as u64 inside a comment
    "also not a cast: 2 as u64"
}

pub fn admit(deadline_ns: u64) -> u64 {
    deadline_ns
}
