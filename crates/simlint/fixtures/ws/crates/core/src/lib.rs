// Fixture: violations only the AST engine and the semantic passes can
// see. Under the same rule scoping, the legacy per-line engine
// (`simlint::rules`, kept as the comparison baseline) finds NOTHING in
// this file — the selftest pins that gap. Expected findings:
//   no_panic x1       (an `.unwrap()` split across lines: no single
//                      line carries the `.unwrap()` token)
//   thread_spawn x1   (`spawn` called through a `use`-alias: the
//                      `thread::spawn(` token never appears)
//   nondet_taint x3   (SystemTime through a local into a pub return;
//                      an env::var read crossing a private fn into a
//                      pub return; a tainted value into `Tracer::emit`)
//   unit_mismatch x4  (ns + bytes addition; a `_ns` local initialised
//                      with a bytes value; a bytes value passed for the
//                      `deadline_ns` parameter of `admit` in the ssd
//                      fixture — cross-crate via the symbol index; a
//                      `_ns` struct field initialised in bytes)
// Negatives the passes must NOT flag: `EventKind::Instant` is an enum
// tag, not a clock source; `len_bytes * 8 / t_ns` changes dimension.
use std::thread::spawn as pool_escape;

pub fn hidden_unwrap(v: Option<u32>) -> u32 {
    v.unwrap
        ()
}

pub fn sneaky_worker() {
    let h = pool_escape(|| ());
    drop(h);
}

pub fn stamp_seed(epoch_ns: u64) -> u64 {
    let t = std::time::SystemTime::now();
    let skew = u64::from(t.elapsed().is_err());
    epoch_ns + skew
}

fn knob() -> usize {
    let raw = std::env::var("OOC_THREADS");
    raw.map(|v| v.len()).unwrap_or(1)
}

pub fn worker_count() -> usize {
    knob()
}

pub struct Tracer;

impl Tracer {
    pub fn emit(&mut self, value: u64) {
        let _sunk = value;
    }
}

pub fn log_latency(tracer: &mut Tracer) {
    let t = std::time::SystemTime::now();
    tracer.emit(t);
}

pub fn budget_left(t_ns: u64, len_bytes: u64) -> u64 {
    t_ns + len_bytes
}

pub fn deadline(len_bytes: u64) -> u64 {
    let deadline_ns = len_bytes;
    deadline_ns
}

pub fn submit(len_bytes: u64) -> u64 {
    ssd::admit(len_bytes)
}

pub struct Window {
    pub start_ns: u64,
}

pub fn window(len_bytes: u64) -> Window {
    Window {
        start_ns: len_bytes,
    }
}

pub enum EventKind {
    Instant,
    Span,
}

pub fn classify() -> EventKind {
    EventKind::Instant
}

pub fn bandwidth(len_bytes: u64, t_ns: u64) -> u64 {
    len_bytes * 8 / t_ns
}
