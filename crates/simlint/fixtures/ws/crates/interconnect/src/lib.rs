// Fixture: concurrency violations in a strict simulator crate
// (`interconnect`). Expected findings:
//   atomic_ordering x2 (the Relaxed publish in `publish_relaxed`, the
//   Relaxed consume in `consume_relaxed`)
//   lock_order x2 (the direct alpha->beta nesting in `forward` and the
//   interprocedural alpha->beta edge in `forward_via_helper`; the ssd
//   fixture's `backward` supplies the beta->alpha edge that closes the
//   cycle)
// The Release/Acquire pair in `publish_release`/`consume_acquire` and
// the write-free counter reset in `count_relaxed` must NOT fire.
// This file is never compiled; simlint reads it as text via `--root`.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

pub struct Slot {
    pub value: u64,
}

pub fn publish_relaxed(data: &mut Slot, ready: &AtomicBool) {
    data.value = 7;
    ready.store(true, Ordering::Relaxed);
}

pub fn consume_relaxed(ready: &AtomicBool, data: &Slot) -> u64 {
    if ready.load(Ordering::Relaxed) {
        data.value
    } else {
        0
    }
}

pub fn publish_release(data: &mut Slot, ready: &AtomicBool) {
    data.value = 7;
    ready.store(true, Ordering::Release);
}

pub fn consume_acquire(ready: &AtomicBool, data: &Slot) -> u64 {
    if ready.load(Ordering::Acquire) {
        data.value
    } else {
        0
    }
}

pub fn count_relaxed(hits: &AtomicUsize) {
    hits.store(0, Ordering::Relaxed);
}

pub fn forward(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let ga = alpha.lock();
    let gb = beta.lock();
    drop(gb);
    drop(ga);
}

fn grab_beta(beta: &Mutex<u32>) {
    let gb = beta.lock();
    drop(gb);
}

pub fn forward_via_helper(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let ga = alpha.lock();
    grab_beta(beta);
    drop(ga);
}
