// Fixture: violations in a STRICT crate (`flashsim`). Expected findings:
//   no_panic x3 (unwrap, expect, panic!)  — not allowlistable here
//   wall_clock x2 (Instant::now, SystemTime)
//   let_underscore_result x1 (the SystemTime discard) — not allowlistable
//   no_println_in_lib x2 (println!, eprintln!) — not allowlistable
// This file is never compiled; simlint reads it as text via `--root`.
use std::time::Instant;

pub fn wall_clock_read() -> Instant {
    Instant::now()
}

pub fn epoch_millis() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

pub fn panics(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

pub fn explodes() {
    panic!("fixture");
}

// One println and one eprintln in library code; the eprintln must count
// once (not also as a println). The commented and quoted forms below
// must not fire.
pub fn prints() {
    println!("fixture");
    eprintln!("fixture");
    // println!("comment, exempt")
    let _s = "eprintln!(\"string, exempt\")";
}

#[cfg(test)]
mod tests {
    // Test code is exempt: the unwrap, the discard, and the println.
    #[test]
    fn exempt() {
        Some(1u32).unwrap();
        let _ = Some(2u32);
        println!("test output is fine");
    }
}
