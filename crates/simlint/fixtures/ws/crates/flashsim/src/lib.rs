// Fixture: violations in a STRICT crate (`flashsim`). Expected findings:
//   no_panic x3 (unwrap, expect, panic!)  — not allowlistable here
//   wall_clock x2 (Instant::now, SystemTime)
//   let_underscore_result x1 (the SystemTime discard) — not allowlistable
// This file is never compiled; simlint reads it as text via `--root`.
use std::time::Instant;

pub fn wall_clock_read() -> Instant {
    Instant::now()
}

pub fn epoch_millis() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

pub fn panics(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

pub fn explodes() {
    panic!("fixture");
}

#[cfg(test)]
mod tests {
    // Test code is exempt: neither the unwrap nor the discard counts.
    #[test]
    fn exempt() {
        Some(1u32).unwrap();
        let _ = Some(2u32);
    }
}
