// Fixture: a no_panic violation in a PERMISSIVE crate (`ooc`) — this one
// IS allowlistable, unlike the ones in the flashsim fixture. Expected:
//   no_panic x1 (unwrap)
// bare_cast / wall_clock rules are out of scope for `ooc`, so the cast
// and clock below must NOT be counted.
use std::time::Instant;

pub fn permissive(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn unscoped_cast(x: u32) -> u64 {
    x as u64
}

pub fn unscoped_clock() -> Instant {
    Instant::now()
}
