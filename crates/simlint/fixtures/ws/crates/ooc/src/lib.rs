// Fixture: violations in a PERMISSIVE crate (`ooc`) — these ones ARE
// allowlistable, unlike the ones in the flashsim fixture. Expected:
//   no_panic x1 (unwrap)
//   let_underscore_result x1 (the send discard); the named `_guard`
//   binding and the typed `let _: u32` discard must NOT be counted.
//   thread_spawn x1 (the direct spawn); the scoped `s.spawn` must NOT
//   be counted.
// bare_cast / wall_clock rules are out of scope for `ooc`, so the cast
// and clock below must NOT be counted.
use std::time::Instant;

pub fn permissive(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn swallows(tx: &std::sync::mpsc::Sender<u32>) {
    let _ = tx.send(1);
    let _guard = tx.send(2);
    let _: u32 = 3;
}

pub fn unscoped_cast(x: u32) -> u64 {
    x as u64
}

pub fn unscoped_clock() -> Instant {
    Instant::now()
}

pub fn spawns_directly() {
    let h = std::thread::spawn(|| {});
    drop(h);
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
