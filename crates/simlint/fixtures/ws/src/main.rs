// Fixture: enum_wildcard violations in the root package. Expected:
//   enum_wildcard x2 — one match *on* a watched enum with a `_ =>` arm,
//   one match classifying *into* a watched enum via its arm bodies.
// The third match is over an unwatched enum and must NOT fire.
pub enum NvmKind {
    Slc,
    Mlc,
    Tlc,
    Pcm,
}

pub enum Unwatched {
    A,
    B,
}

pub fn bits_per_cell(k: NvmKind) -> u32 {
    match k {
        NvmKind::Slc => 1,
        NvmKind::Mlc => 2,
        _ => 3,
    }
}

pub fn classify(bits: u32) -> NvmKind {
    match bits {
        1 => NvmKind::Slc,
        2 => NvmKind::Mlc,
        _ => NvmKind::Tlc,
    }
}

pub fn unwatched(u: Unwatched) -> u32 {
    match u {
        Unwatched::A => 0,
        _ => 1,
    }
}

fn main() {
    // Binary entry points may print: no_println_in_lib must not fire here.
    println!("fixture binary output");
}
