//! Nondeterminism taint analysis.
//!
//! Sources (anything whose value differs between two runs of the same
//! input): wall clocks (`Instant::now`, `SystemTime`), OS entropy
//! (`thread_rng`, `from_entropy`, `RandomState`), default-hasher
//! map/set iteration (order is seeded per-process), pointer-to-integer
//! casts (ASLR), and environment reads (`std::env::var`; the one
//! sanctioned `RAYON_NUM_THREADS` site lives in `vendor/`, outside the
//! scanned scope, and the vendored pool's ordered-collect contract
//! keeps results thread-count-invariant).
//!
//! The pass tracks dataflow from those sources through local bindings
//! and call returns (a workspace-wide fixpoint over function
//! summaries), and reports when a tainted value:
//! * is returned from a `pub` function (it can feed results), or
//! * is passed to an observability sink (`Tracer` methods, `Event`
//!   construction, `json_report`).
//!
//! Precision notes: `simobs::EventKind::Instant` is a simulated-time
//! event tag, not `std::time::Instant` — sources key on the resolved
//! path *shape* (`Instant::now`, `env::var`, ...), not bare names.

use crate::ast::{Block, Expr, ExprKind, FnDef, Item, ItemKind, Stmt};
use crate::parser::Span;
use crate::resolve::{visit_fns_with_path, FileAst, Index};
use crate::rules::{Finding, Rule};
use crate::Located;
use std::collections::{BTreeMap, BTreeSet};

/// Hash-collection type names whose default iteration order is
/// nondeterministic.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that observe a hash collection in iteration order.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the pass over all parsed files. `in_scope` filters which files
/// the *findings* apply to; summaries are still computed workspace-wide
/// so taint crossing crate boundaries is seen.
pub fn run(files: &[FileAst], index: &Index, in_scope: &dyn Fn(&str) -> bool) -> Vec<Located> {
    // Fixpoint over "returns tainted" summaries.
    let mut summaries: BTreeSet<String> = BTreeSet::new();
    for _ in 0..8 {
        let mut changed = false;
        for file in files {
            let ctx = Ctx {
                file,
                index,
                summaries: &summaries,
                findings: Vec::new(),
                collect: false,
            };
            let mut tainted_fns = Vec::new();
            visit_fns_with_path(
                &file.ast.items,
                &file.module,
                file,
                &mut |fd, path, _, _| {
                    if fd.body.is_some() && ctx.fn_returns_tainted(fd) {
                        tainted_fns.push(path.clone());
                    }
                },
            );
            for path in tainted_fns {
                if summaries.insert(path) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass.
    let mut out = Vec::new();
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        let mut ctx = Ctx {
            file,
            index,
            summaries: &summaries,
            findings: Vec::new(),
            collect: true,
        };
        visit_fns_with_path(
            &file.ast.items,
            &file.module,
            file,
            &mut |fd, _, is_pub, span| {
                ctx.check_fn(fd, is_pub, span);
            },
        );
        let mut seen = BTreeSet::new();
        for finding in ctx.findings {
            if seen.insert((finding.line, finding.message.clone())) {
                out.push(Located {
                    path: file.path.clone(),
                    finding,
                });
            }
        }
    }
    out
}

struct Ctx<'a> {
    file: &'a FileAst,
    index: &'a Index,
    summaries: &'a BTreeSet<String>,
    findings: Vec<Finding>,
    collect: bool,
}

/// Per-function dataflow state.
#[derive(Default)]
struct Env {
    /// Tainted local names → source description.
    tainted: BTreeMap<String, String>,
    /// Locals known to be hash collections (for iteration-order taint).
    hash_locals: BTreeSet<String>,
}

impl<'a> Ctx<'a> {
    /// Does this fn's return value carry taint? (Summary computation.)
    fn fn_returns_tainted(&self, fd: &FnDef) -> bool {
        let Some(body) = &fd.body else {
            return false;
        };
        let env = self.flow_block(body, Env::default());
        self.block_return_taint(body, &env).is_some()
    }

    /// Reporting: emit findings for one fn.
    fn check_fn(&mut self, fd: &FnDef, is_pub: bool, span: Span) {
        let Some(body) = &fd.body else {
            return;
        };
        let env = self.flow_block(body, Env::default());
        self.scan_sinks_block(body, &env);
        if is_pub {
            if let Some(source) = self.block_return_taint(body, &env) {
                self.findings.push(Finding {
                    rule: Rule::NondetTaint,
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "nondeterministic value ({source}) flows into the return of `pub fn {}`; results must be bit-identical across runs — derive the value from simulated state or a seeded stream",
                        fd.name
                    ),
                });
            }
        }
    }

    /// Propagates taint through a block's statements (two passes so a
    /// later assignment feeding an earlier loop body is still seen).
    fn flow_block(&self, block: &Block, mut env: Env) -> Env {
        for _ in 0..2 {
            for stmt in &block.stmts {
                self.flow_stmt(stmt, &mut env);
            }
        }
        env
    }

    fn flow_stmt(&self, stmt: &Stmt, env: &mut Env) {
        match stmt {
            Stmt::Let { name, ty, init, .. } => {
                let hashy = ty.as_ref().is_some_and(|t| self.is_hash_ty(&t.base))
                    || init.as_ref().is_some_and(|e| self.inits_hash(e));
                if let (true, Some(n)) = (hashy, name.as_ref()) {
                    env.hash_locals.insert(n.clone());
                }
                if let (Some(n), Some(e)) = (name.as_ref(), init.as_ref()) {
                    if let Some(src) = self.expr_taint(e, env) {
                        env.tainted.insert(n.clone(), src);
                    }
                }
                // Nested control flow inside the initialiser.
                if let Some(e) = init {
                    self.flow_nested(e, env);
                }
            }
            Stmt::Expr { expr, .. } => {
                if let ExprKind::Assign { lhs, rhs, .. } = &expr.kind {
                    if let ExprKind::Path(segs) = &lhs.kind {
                        if let [name] = segs.as_slice() {
                            if let Some(src) = self.expr_taint(rhs, env) {
                                env.tainted.insert(name.clone(), src);
                            }
                        }
                    }
                }
                self.flow_nested(expr, env);
            }
            Stmt::Item(_) => {}
        }
    }

    /// Recurses into nested blocks (if/match/loops/closures) so their
    /// `let`s and assignments update the env too.
    fn flow_nested(&self, expr: &Expr, env: &mut Env) {
        match &expr.kind {
            ExprKind::If { cond, then, els } => {
                self.flow_nested(cond, env);
                for stmt in &then.stmts {
                    self.flow_stmt(stmt, env);
                }
                if let Some(e) = els {
                    self.flow_nested(e, env);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.flow_nested(scrutinee, env);
                for arm in arms {
                    self.flow_nested(&arm.body, env);
                }
            }
            ExprKind::While { cond, body } => {
                self.flow_nested(cond, env);
                for stmt in &body.stmts {
                    self.flow_stmt(stmt, env);
                }
            }
            ExprKind::For { iter, body, .. } => {
                self.flow_nested(iter, env);
                for stmt in &body.stmts {
                    self.flow_stmt(stmt, env);
                }
            }
            ExprKind::Loop { body } | ExprKind::Block(body) => {
                for stmt in &body.stmts {
                    self.flow_stmt(stmt, env);
                }
            }
            ExprKind::Closure { body, .. } => self.flow_nested(body, env),
            ExprKind::Call { callee, args } => {
                self.flow_nested(callee, env);
                for a in args {
                    self.flow_nested(a, env);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                self.flow_nested(recv, env);
                for a in args {
                    self.flow_nested(a, env);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.flow_nested(lhs, env);
                self.flow_nested(rhs, env);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
                self.flow_nested(operand, env);
            }
            ExprKind::Try(e) => self.flow_nested(e, env),
            ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => self.flow_nested(e, env),
            _ => {}
        }
    }

    /// The taint source reaching a fn's return value, if any.
    fn block_return_taint(&self, block: &Block, env: &Env) -> Option<String> {
        let mut found = None;
        // Explicit `return expr` anywhere.
        crate::ast::visit_exprs(block, &mut |e| {
            if found.is_some() {
                return;
            }
            if let ExprKind::Return(Some(v)) = &e.kind {
                found = self.expr_taint(v, env);
            }
        });
        if found.is_some() {
            return found;
        }
        // Trailing expression.
        match block.stmts.last() {
            Some(Stmt::Expr {
                expr,
                has_semi: false,
            }) => self.tail_taint(expr, env),
            _ => None,
        }
    }

    /// Taint of a value-producing tail expression (descends into
    /// if/match/block tails).
    fn tail_taint(&self, expr: &Expr, env: &Env) -> Option<String> {
        match &expr.kind {
            ExprKind::If { then, els, .. } => {
                if let Some(t) = self.block_tail_taint(then, env) {
                    return Some(t);
                }
                els.as_ref().and_then(|e| self.tail_taint(e, env))
            }
            ExprKind::Match { arms, .. } => {
                arms.iter().find_map(|arm| self.tail_taint(&arm.body, env))
            }
            ExprKind::Block(b) => self.block_tail_taint(b, env),
            _ => self.expr_taint(expr, env),
        }
    }

    fn block_tail_taint(&self, block: &Block, env: &Env) -> Option<String> {
        match block.stmts.last() {
            Some(Stmt::Expr {
                expr,
                has_semi: false,
            }) => self.tail_taint(expr, env),
            _ => None,
        }
    }

    /// Is the expression tainted? Returns the source description.
    fn expr_taint(&self, expr: &Expr, env: &Env) -> Option<String> {
        // Direct source at this node?
        if let Some(src) = self.node_source(expr, env) {
            return Some(src);
        }
        match &expr.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => env.tainted.get(name).cloned(),
                _ => None,
            },
            ExprKind::Lit(_) => None,
            ExprKind::Call { callee, args } => {
                // Calls into fns summarised as returning taint.
                if let ExprKind::Path(segs) = &callee.kind {
                    let resolved = self.file.resolve(segs);
                    if self.summaries.contains(&resolved.join("::")) {
                        return Some(format!(
                            "return of `{}`, which itself returns a nondeterministic value",
                            segs.join("::")
                        ));
                    }
                    if let Some(sig) = self.index.lookup(&resolved) {
                        if self.summaries.contains(&sig.path) {
                            return Some(format!(
                                "return of `{}`, which itself returns a nondeterministic value",
                                segs.join("::")
                            ));
                        }
                    }
                }
                args.iter().find_map(|a| self.expr_taint(a, env))
            }
            ExprKind::MethodCall { recv, args, .. } => self
                .expr_taint(recv, env)
                .or_else(|| args.iter().find_map(|a| self.expr_taint(a, env))),
            ExprKind::Field { base, .. } => self.expr_taint(base, env),
            ExprKind::Binary { lhs, rhs, .. } => self
                .expr_taint(lhs, env)
                .or_else(|| self.expr_taint(rhs, env)),
            ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
                self.expr_taint(operand, env)
            }
            ExprKind::Macro { args, .. } => args.iter().find_map(|a| self.expr_taint(a, env)),
            ExprKind::Match { scrutinee, arms } => self
                .expr_taint(scrutinee, env)
                .or_else(|| arms.iter().find_map(|a| self.expr_taint(&a.body, env))),
            ExprKind::If { cond, then, els } => self
                .expr_taint(cond, env)
                .or_else(|| self.block_tail_taint(then, env))
                .or_else(|| els.as_ref().and_then(|e| self.expr_taint(e, env))),
            ExprKind::Block(b) => self.block_tail_taint(b, env),
            ExprKind::Closure { body, .. } => self.expr_taint(body, env),
            ExprKind::Try(e) => self.expr_taint(e, env),
            ExprKind::Index { base, index } => self
                .expr_taint(base, env)
                .or_else(|| self.expr_taint(index, env)),
            ExprKind::Tuple(es) | ExprKind::Array(es) | ExprKind::Unknown(es) => {
                es.iter().find_map(|e| self.expr_taint(e, env))
            }
            ExprKind::StructLit { fields, .. } => {
                fields.iter().find_map(|(_, e)| self.expr_taint(e, env))
            }
            ExprKind::Range { lo, hi } => lo
                .as_ref()
                .and_then(|e| self.expr_taint(e, env))
                .or_else(|| hi.as_ref().and_then(|e| self.expr_taint(e, env))),
            _ => None,
        }
    }

    /// Is this node *itself* a nondeterminism source?
    fn node_source(&self, expr: &Expr, env: &Env) -> Option<String> {
        match &expr.kind {
            ExprKind::Path(segs) => self.path_source(segs),
            ExprKind::Call { callee, .. } => match &callee.kind {
                ExprKind::Path(segs) => self.path_source(segs),
                _ => None,
            },
            ExprKind::MethodCall { recv, method, .. } => {
                // Entropy constructors by method name.
                if method == "from_entropy" || method == "thread_rng" {
                    return Some("OS entropy".to_string());
                }
                // Hash-order iteration on a known hash collection.
                if HASH_ITER_METHODS.contains(&method.as_str()) && self.recv_is_hash(recv, env) {
                    return Some("hash-order iteration".to_string());
                }
                None
            }
            ExprKind::Cast { operand, ty } => {
                // Pointer-to-integer cast: the address space is
                // randomised per-process.
                let int_target = matches!(
                    ty.base.as_str(),
                    "usize" | "u64" | "u128" | "i64" | "i128" | "isize"
                );
                if int_target && expr_mentions_ptr(operand) {
                    return Some("pointer address".to_string());
                }
                None
            }
            ExprKind::For { iter, .. } => {
                // `for x in &map` over a hash collection.
                if self.recv_is_hash(iter, env) {
                    return Some("hash-order iteration".to_string());
                }
                None
            }
            _ => None,
        }
    }

    /// Sources recognisable from a (resolved) path shape.
    fn path_source(&self, segs: &[String]) -> Option<String> {
        let resolved = self.file.resolve(segs);
        let ends_with = |pair: [&str; 2]| {
            resolved.len() >= 2
                && resolved[resolved.len() - 2] == pair[0]
                && resolved[resolved.len() - 1] == pair[1]
        };
        if ends_with(["Instant", "now"]) {
            return Some("wall clock (`Instant::now`)".to_string());
        }
        if resolved.iter().any(|s| s == "SystemTime") {
            return Some("wall clock (`SystemTime`)".to_string());
        }
        if resolved.iter().any(|s| s == "RandomState") {
            return Some("OS entropy (`RandomState`)".to_string());
        }
        if resolved
            .last()
            .is_some_and(|s| s == "thread_rng" || s == "from_entropy")
        {
            return Some("OS entropy".to_string());
        }
        if ends_with(["env", "var"]) || ends_with(["env", "var_os"]) || ends_with(["env", "vars"]) {
            return Some("environment read (`env::var`)".to_string());
        }
        None
    }

    /// Is the receiver expression a known hash collection?
    fn recv_is_hash(&self, recv: &Expr, env: &Env) -> bool {
        match &recv.kind {
            ExprKind::Path(segs) => {
                matches!(segs.as_slice(), [name] if env.hash_locals.contains(name))
            }
            ExprKind::Field { name, .. } => self.struct_field_is_hash(name),
            ExprKind::Unary { op, operand } if op == "&" => self.recv_is_hash(operand, env),
            ExprKind::MethodCall { recv, method, .. }
                if method == "as_ref" || method == "as_mut" =>
            {
                self.recv_is_hash(recv, env)
            }
            _ => false,
        }
    }

    /// Does any struct in this file declare a field of this name with a
    /// hash-collection type? (Same-file approximation of field types.)
    fn struct_field_is_hash(&self, field: &str) -> bool {
        let mut hit = false;
        visit_structs(&self.file.ast.items, &mut |fields| {
            for f in fields {
                if f.name == field && self.is_hash_ty(&f.ty.base) {
                    hit = true;
                }
            }
        });
        hit
    }

    /// Is this type name (possibly a `use`-alias) a hash collection?
    fn is_hash_ty(&self, base: &str) -> bool {
        if HASH_TYPES.contains(&base) {
            return true;
        }
        self.file
            .uses
            .get(base)
            .and_then(|path| path.last())
            .is_some_and(|last| HASH_TYPES.contains(&last.as_str()))
    }

    /// Does the init expression construct a hash collection?
    fn inits_hash(&self, expr: &Expr) -> bool {
        let mut hit = false;
        crate::ast::visit_expr(expr, &mut |e| {
            if let ExprKind::Path(segs) = &e.kind {
                if segs.len() >= 2 && self.is_hash_ty(&segs[segs.len() - 2]) {
                    hit = true;
                }
            }
        });
        hit
    }

    // -- Sink detection ------------------------------------------------

    fn scan_sinks_block(&mut self, block: &Block, env: &Env) {
        let mut hits: Vec<(Span, String, String)> = Vec::new();
        crate::ast::visit_exprs(block, &mut |e| {
            if let Some((sink, src)) = self.sink_hit(e, env) {
                hits.push((e.span, sink, src));
            }
        });
        for (span, sink, src) in hits {
            if self.file.line_in_test(span.line) {
                continue;
            }
            if self.collect {
                self.findings.push(Finding {
                    rule: Rule::NondetTaint,
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "nondeterministic value ({src}) flows into {sink}; traces and reports must replay bit-identically — record simulated time / seeded values instead"
                    ),
                });
            }
        }
    }

    /// If `e` is a call into an observability sink with a tainted
    /// argument, returns (sink description, source description).
    fn sink_hit(&self, e: &Expr, env: &Env) -> Option<(String, String)> {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let resolved = self.file.resolve(segs);
                let sink = sink_name(&resolved)?;
                let src = args.iter().find_map(|a| self.expr_taint(a, env))?;
                Some((sink, src))
            }
            ExprKind::MethodCall { recv, method, args } => {
                let is_tracer_method = matches!(method.as_str(), "emit" | "event" | "record_event");
                let recv_is_tracer = expr_mentions_name(recv, &["tracer", "Tracer"]);
                if !(is_tracer_method && recv_is_tracer) {
                    return None;
                }
                let src = args.iter().find_map(|a| self.expr_taint(a, env))?;
                Some((format!("`Tracer::{method}`"), src))
            }
            _ => None,
        }
    }
}

/// Sink description for a resolved callee path, if it is one.
fn sink_name(resolved: &[String]) -> Option<String> {
    if resolved.last().is_some_and(|s| s == "json_report") {
        return Some("a `--json` report (`json_report`)".to_string());
    }
    if resolved.len() >= 2
        && resolved[resolved.len() - 2] == "json"
        && resolved[resolved.len() - 1] == "report"
    {
        return Some("a `--json` report (`json::report`)".to_string());
    }
    if resolved.iter().any(|s| s == "Tracer") {
        return Some("a `Tracer` call".to_string());
    }
    if resolved.len() >= 2 && resolved[resolved.len() - 2] == "Event" {
        return Some("an `Event` constructor".to_string());
    }
    None
}

/// Does the expression mention `as_ptr`-style pointer producers?
fn expr_mentions_ptr(expr: &Expr) -> bool {
    let mut hit = false;
    crate::ast::visit_expr(expr, &mut |e| match &e.kind {
        ExprKind::MethodCall { method, .. } if method == "as_ptr" || method == "as_mut_ptr" => {
            hit = true;
        }
        ExprKind::Cast { ty, .. } if ty.text.starts_with('*') => hit = true,
        _ => {}
    });
    hit
}

/// Does the expression mention one of these identifiers (path segment
/// or field name)?
fn expr_mentions_name(expr: &Expr, names: &[&str]) -> bool {
    let mut hit = false;
    crate::ast::visit_expr(expr, &mut |e| match &e.kind {
        ExprKind::Path(segs) => {
            if segs.iter().any(|s| names.contains(&s.as_str())) {
                hit = true;
            }
        }
        ExprKind::Field { name, .. } => {
            if names.contains(&name.as_str()) {
                hit = true;
            }
        }
        _ => {}
    });
    hit
}

fn visit_structs(items: &[Item], f: &mut impl FnMut(&[crate::ast::Param])) {
    for item in items {
        match &item.kind {
            ItemKind::Struct { fields, .. } => f(fields),
            ItemKind::Mod { items, .. } => visit_structs(items, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    fn scan(src: &str) -> Vec<Located> {
        let file = FileAst::parse("crates/fs/src/x.rs", "fs", &clean_source(src));
        let files = vec![file];
        let index = Index::build(&files);
        run(&files, &index, &|_| true)
    }

    #[test]
    fn wall_clock_into_pub_return_is_flagged() {
        let hits = scan(
            "use std::time::Instant;\npub fn elapsed_ns() -> u64 {\n  let t = Instant::now();\n  t.elapsed().as_nanos() as u64\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("wall clock"));
        assert_eq!(hits[0].finding.line, 2);
    }

    #[test]
    fn env_read_through_locals_is_tracked() {
        let hits = scan(
            "pub fn knob() -> usize {\n  let raw = std::env::var(\"X\");\n  let n = raw.map(|v| v.len()).unwrap_or(0);\n  n\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("environment read"));
    }

    #[test]
    fn event_kind_instant_is_not_a_source() {
        let hits = scan(
            "pub enum EventKind { Instant, Span }\npub fn classify() -> EventKind { EventKind::Instant }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn hash_iteration_into_return_is_flagged() {
        let hits = scan(
            "use std::collections::HashMap;\npub fn first_key(m: &HashMap<u32, u32>) -> Option<u32> {\n  let map = HashMap::new();\n  let k = map.keys().next().copied();\n  k\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("hash-order"));
    }

    #[test]
    fn interprocedural_taint_crosses_fns() {
        let hits = scan(
            "fn stamp() -> u64 {\n  std::time::SystemTime::now().elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)\n}\npub fn result_ns() -> u64 {\n  stamp()\n}\n",
        );
        // Both the private fn's caller (pub) gets flagged; the private
        // one is not pub so only one finding.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("stamp"));
    }

    #[test]
    fn sink_flow_is_flagged_without_pub_return() {
        let hits = scan(
            "fn log(tracer: &mut Tracer) {\n  let t = std::time::SystemTime::now();\n  tracer.emit(t);\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("Tracer"));
    }

    #[test]
    fn clean_simulated_time_passes() {
        let hits =
            scan("pub fn advance(now_ns: u64, step_ns: u64) -> u64 {\n  now_ns + step_ns\n}\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn btree_iteration_is_fine() {
        let hits = scan(
            "use std::collections::BTreeMap;\npub fn first(m: &BTreeMap<u32, u32>) -> Option<u32> {\n  let map: BTreeMap<u32, u32> = BTreeMap::new();\n  map.keys().next().copied()\n}\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
