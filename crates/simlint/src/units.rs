//! Unit-of-measure checking.
//!
//! The simulator mixes three quantities everywhere: simulated time in
//! nanoseconds, sizes in bytes, and interconnect widths in lanes. All
//! three are bare `u64`s at the type level, so nothing stops
//! `latency_ns + len_bytes` from compiling. This pass seeds unit tags
//! from the `nvmtypes` vocabulary (`Nanos`, `KIB`/`MIB`/`GIB`,
//! `US`/`MS`/`SEC`) and the workspace naming convention (`_ns`,
//! `_bytes`, `_lanes` suffixes), propagates them through locals and
//! call sites via the symbol index, and reports:
//!
//! * additive/comparison arithmetic across different units,
//! * `let` bindings whose annotation disagrees with the initialiser,
//! * call arguments whose unit disagrees with the parameter.
//!
//! Multiplication and division legitimately change dimension
//! (bytes/ns is a bandwidth), so `*` and `/` results are untagged.

use crate::ast::{Block, Expr, ExprKind, FnDef, Item, ItemKind, Param, Stmt, TyInfo};
use crate::resolve::{FileAst, Index};
use crate::rules::{Finding, Rule};
use crate::Located;
use std::collections::BTreeMap;
use std::fmt;

/// A physical unit tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Simulated time in nanoseconds.
    Ns,
    /// A size or offset in bytes.
    Bytes,
    /// An interconnect width in lanes.
    Lanes,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unit::Ns => "ns",
            Unit::Bytes => "bytes",
            Unit::Lanes => "lanes",
        })
    }
}

/// Unit implied by an identifier's trailing `_`-segment. Split on `_`
/// deliberately: `lanes.ends_with("ns")` is true, suffix matching on
/// raw strings would mislabel it.
fn ident_unit(name: &str) -> Option<Unit> {
    match name.rsplit('_').next()? {
        "ns" | "nanos" => Some(Unit::Ns),
        "bytes" => Some(Unit::Bytes),
        "lanes" => Some(Unit::Lanes),
        _ => None,
    }
}

/// Unit implied by a declared type.
fn ty_unit(ty: &TyInfo) -> Option<Unit> {
    match ty.base.as_str() {
        "Nanos" => Some(Unit::Ns),
        _ => None,
    }
}

/// Unit of a well-known scale constant.
fn const_unit(name: &str) -> Option<Unit> {
    match name {
        "KIB" | "MIB" | "GIB" => Some(Unit::Bytes),
        "US" | "MS" | "SEC" => Some(Unit::Ns),
        _ => ident_unit(name),
    }
}

/// Unit of a parameter: declared type first, then naming convention.
fn param_unit(p: &Param) -> Option<Unit> {
    ty_unit(&p.ty).or_else(|| ident_unit(&p.name))
}

/// Operators whose operands must share a unit.
const ADDITIVE_OPS: [&str; 9] = ["+", "-", "%", "<", "<=", ">", ">=", "==", "!="];

/// Runs the pass. `in_scope` filters which files findings apply to.
pub fn run(files: &[FileAst], index: &Index, in_scope: &dyn Fn(&str) -> bool) -> Vec<Located> {
    let consts = collect_consts(files);
    let mut out = Vec::new();
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        let mut ctx = Ctx {
            index,
            consts: &consts,
            findings: Vec::new(),
        };
        visit_fns(&file.ast.items, file, &mut ctx);
        for finding in ctx.findings {
            if file.line_in_test(finding.line) {
                continue;
            }
            out.push(Located {
                path: file.path.clone(),
                finding,
            });
        }
    }
    out
}

/// Workspace-wide `const` unit seeds (by bare name; names that appear
/// with conflicting units are dropped).
fn collect_consts(files: &[FileAst]) -> BTreeMap<String, Unit> {
    let mut seen: BTreeMap<String, Option<Unit>> = BTreeMap::new();
    for file in files {
        walk_consts(&file.ast.items, &mut |name, ty| {
            let unit = ty_unit(ty).or_else(|| const_unit(name));
            match seen.get(name) {
                None => {
                    seen.insert(name.to_string(), unit);
                }
                Some(prev) if *prev != unit => {
                    seen.insert(name.to_string(), None);
                }
                Some(_) => {}
            }
        });
    }
    seen.into_iter()
        .filter_map(|(k, v)| v.map(|u| (k, u)))
        .collect()
}

fn walk_consts(items: &[Item], f: &mut impl FnMut(&str, &TyInfo)) {
    for item in items {
        match &item.kind {
            ItemKind::Const { name, ty } => f(name, ty),
            ItemKind::Mod { items, .. }
            | ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. } => walk_consts(items, f),
            _ => {}
        }
    }
}

fn visit_fns(items: &[Item], file: &FileAst, ctx: &mut Ctx) {
    for item in items {
        if item.cfg_test || file.line_in_test(item.span.line) {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(fd) => ctx.check_fn(fd, file),
            ItemKind::Mod { items, .. }
            | ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. } => visit_fns(items, file, ctx),
            _ => {}
        }
    }
}

struct Ctx<'a> {
    index: &'a Index,
    consts: &'a BTreeMap<String, Unit>,
    findings: Vec<Finding>,
}

/// Local name → unit environment for one function.
type Env = BTreeMap<String, Unit>;

impl Ctx<'_> {
    fn check_fn(&mut self, fd: &FnDef, file: &FileAst) {
        let Some(body) = &fd.body else {
            return;
        };
        let mut env = Env::new();
        for p in &fd.params {
            if let (false, Some(u)) = (p.name.is_empty(), param_unit(p)) {
                env.insert(p.name.clone(), u);
            }
        }
        self.check_block(body, &mut env, file);
    }

    fn check_block(&mut self, block: &Block, env: &mut Env, file: &FileAst) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    name,
                    ty,
                    init,
                    span,
                } => {
                    let ann = ty
                        .as_ref()
                        .and_then(ty_unit)
                        .or_else(|| name.as_deref().and_then(ident_unit));
                    let init_unit = init.as_ref().and_then(|e| {
                        self.check_expr(e, env, file);
                        self.expr_unit(e, env, file)
                    });
                    if let (Some(a), Some(b)) = (ann, init_unit) {
                        if a != b {
                            self.findings.push(Finding {
                                rule: Rule::UnitMismatch,
                                line: span.line,
                                col: span.col,
                                message: format!(
                                    "unit mismatch: `{}` is declared in {a} but initialised with a value in {b}",
                                    name.as_deref().unwrap_or("_"),
                                ),
                            });
                        }
                    }
                    if let (Some(n), Some(u)) = (name.as_ref(), ann.or(init_unit)) {
                        env.insert(n.clone(), u);
                    }
                }
                Stmt::Expr { expr, .. } => self.check_expr(expr, env, file),
                Stmt::Item(_) => {}
            }
        }
    }

    /// Recursively checks one expression for unit violations.
    fn check_expr(&mut self, expr: &Expr, env: &mut Env, file: &FileAst) {
        match &expr.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                self.check_expr(lhs, env, file);
                self.check_expr(rhs, env, file);
                if ADDITIVE_OPS.contains(&op.as_str()) {
                    let (a, b) = (
                        self.expr_unit(lhs, env, file),
                        self.expr_unit(rhs, env, file),
                    );
                    if let (Some(a), Some(b)) = (a, b) {
                        if a != b {
                            self.findings.push(Finding {
                                rule: Rule::UnitMismatch,
                                line: expr.span.line,
                                col: expr.span.col,
                                message: format!(
                                    "unit mismatch: `{op}` combines a value in {a} with a value in {b}"
                                ),
                            });
                        }
                    }
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.check_expr(lhs, env, file);
                self.check_expr(rhs, env, file);
                // `x_ns += y_bytes` and `x_ns = y_bytes` are mismatches;
                // `*=`/`/=` rescale, so only additive compounds checked.
                let additive = matches!(op.as_str(), "=" | "+=" | "-=" | "%=");
                if additive {
                    let (a, b) = (
                        self.expr_unit(lhs, env, file),
                        self.expr_unit(rhs, env, file),
                    );
                    if let (Some(a), Some(b)) = (a, b) {
                        if a != b {
                            self.findings.push(Finding {
                                rule: Rule::UnitMismatch,
                                line: expr.span.line,
                                col: expr.span.col,
                                message: format!(
                                    "unit mismatch: assignment stores a value in {b} into a place in {a}"
                                ),
                            });
                        }
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.check_expr(a, env, file);
                }
                self.check_call_args(callee, None, args, env, file);
            }
            ExprKind::MethodCall { recv, method, args } => {
                self.check_expr(recv, env, file);
                for a in args {
                    self.check_expr(a, env, file);
                }
                self.check_method_args(recv, method, args, env, file);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
                self.check_expr(operand, env, file)
            }
            ExprKind::Try(e) => self.check_expr(e, env, file),
            ExprKind::Field { base, .. } => self.check_expr(base, env, file),
            ExprKind::Macro { args, .. } => {
                for a in args {
                    self.check_expr(a, env, file);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.check_expr(scrutinee, env, file);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.check_expr(g, env, file);
                    }
                    self.check_expr(&arm.body, env, file);
                }
            }
            ExprKind::If { cond, then, els } => {
                self.check_expr(cond, env, file);
                self.check_block(then, &mut env.clone(), file);
                if let Some(e) = els {
                    self.check_expr(e, env, file);
                }
            }
            ExprKind::While { cond, body } => {
                self.check_expr(cond, env, file);
                self.check_block(body, &mut env.clone(), file);
            }
            ExprKind::For { pat, iter, body } => {
                self.check_expr(iter, env, file);
                let mut inner = env.clone();
                // `for t_ns in spans` binds a fresh name: seed it from
                // its own suffix.
                if let Some(p) = pat {
                    if let Some(u) = ident_unit(p) {
                        inner.insert(p.clone(), u);
                    }
                }
                self.check_block(body, &mut inner, file);
            }
            ExprKind::Loop { body } | ExprKind::Block(body) => {
                self.check_block(body, &mut env.clone(), file);
            }
            ExprKind::Closure { body, .. } => self.check_expr(body, env, file),
            ExprKind::Index { base, index } => {
                self.check_expr(base, env, file);
                self.check_expr(index, env, file);
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) | ExprKind::Unknown(es) => {
                for e in es {
                    self.check_expr(e, env, file);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                // Struct-literal fields carry their own convention:
                // `Foo { latency_ns: len_bytes }` is a mismatch.
                for (name, e) in fields {
                    self.check_expr(e, env, file);
                    if let (Some(want), Some(got)) =
                        (ident_unit(name), self.expr_unit(e, env, file))
                    {
                        if want != got {
                            self.findings.push(Finding {
                                rule: Rule::UnitMismatch,
                                line: e.span.line,
                                col: e.span.col,
                                message: format!(
                                    "unit mismatch: field `{name}` expects {want} but is initialised with a value in {got}"
                                ),
                            });
                        }
                    }
                }
            }
            ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => {
                self.check_expr(e, env, file);
            }
            ExprKind::Range { lo, hi } => {
                if let Some(e) = lo {
                    self.check_expr(e, env, file);
                }
                if let Some(e) = hi {
                    self.check_expr(e, env, file);
                }
            }
            _ => {}
        }
    }

    /// Checks call arguments against the callee's parameter units.
    fn check_call_args(
        &mut self,
        callee: &Expr,
        self_ty_hint: Option<&str>,
        args: &[Expr],
        env: &Env,
        file: &FileAst,
    ) {
        let ExprKind::Path(segs) = &callee.kind else {
            return;
        };
        let mut resolved = file.resolve(segs);
        if let Some(ty) = self_ty_hint {
            resolved.insert(resolved.len().saturating_sub(1), ty.to_string());
        }
        let Some(sig) = self.index.lookup(&resolved) else {
            return;
        };
        // Skip any leading `self` receiver in the signature.
        let params: Vec<&Param> = sig.params.iter().filter(|p| p.name != "self").collect();
        if params.len() != args.len() {
            return; // arity mismatch: wrong overload/shadow, stay quiet
        }
        for (p, a) in params.iter().zip(args) {
            if let (Some(want), Some(got)) = (param_unit(p), self.expr_unit(a, env, file)) {
                if want != got {
                    self.findings.push(Finding {
                        rule: Rule::UnitMismatch,
                        line: a.span.line,
                        col: a.span.col,
                        message: format!(
                            "unit mismatch: argument `{}` of `{}` expects {want} but the caller passes a value in {got}",
                            p.name, sig.name
                        ),
                    });
                }
            }
        }
    }

    /// Checks method-call arguments when the method resolves uniquely.
    fn check_method_args(
        &mut self,
        recv: &Expr,
        method: &str,
        args: &[Expr],
        env: &Env,
        file: &FileAst,
    ) {
        // min/max keep the receiver's unit contract: both sides must
        // agree, same as `+`.
        if matches!(method, "min" | "max") && args.len() == 1 {
            if let (Some(a), Some(b)) = (
                self.expr_unit(recv, env, file),
                self.expr_unit(&args[0], env, file),
            ) {
                if a != b {
                    self.findings.push(Finding {
                        rule: Rule::UnitMismatch,
                        line: args[0].span.line,
                        col: args[0].span.col,
                        message: format!(
                            "unit mismatch: `{method}` compares a value in {a} with a value in {b}"
                        ),
                    });
                }
            }
            return;
        }
        // A uniquely-named workspace method: check its parameter units.
        let resolved = [method.to_string()];
        if let Some(sig) = self.index.lookup(&resolved) {
            let params: Vec<&Param> = sig.params.iter().filter(|p| p.name != "self").collect();
            if params.len() != args.len() {
                return;
            }
            for (p, a) in params.iter().zip(args) {
                if let (Some(want), Some(got)) = (param_unit(p), self.expr_unit(a, env, file)) {
                    if want != got {
                        self.findings.push(Finding {
                            rule: Rule::UnitMismatch,
                            line: a.span.line,
                            col: a.span.col,
                            message: format!(
                                "unit mismatch: argument `{}` of `{}` expects {want} but the caller passes a value in {got}",
                                p.name, sig.name
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Infers the unit of an expression, if known.
    fn expr_unit(&self, expr: &Expr, env: &Env, file: &FileAst) -> Option<Unit> {
        match &expr.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => env
                    .get(name)
                    .copied()
                    .or_else(|| self.consts.get(name).copied())
                    .or_else(|| const_unit(name)),
                [.., last] => self.consts.get(last).copied().or_else(|| const_unit(last)),
                [] => None,
            },
            ExprKind::Lit(_) => None,
            ExprKind::Binary { op, lhs, rhs } => match op.as_str() {
                // Same-unit additive result keeps the unit; `*`/`/`
                // change dimension; comparisons yield bool.
                "+" | "-" | "%" => {
                    let (a, b) = (
                        self.expr_unit(lhs, env, file),
                        self.expr_unit(rhs, env, file),
                    );
                    match (a, b) {
                        (Some(a), Some(b)) if a == b => Some(a),
                        (Some(a), None) => Some(a),
                        (None, Some(b)) => Some(b),
                        _ => None,
                    }
                }
                _ => None,
            },
            ExprKind::Cast { operand, .. } => self.expr_unit(operand, env, file),
            ExprKind::Unary { operand, .. } => self.expr_unit(operand, env, file),
            ExprKind::Field { name, .. } => ident_unit(name),
            ExprKind::MethodCall { recv, method, .. } => match method.as_str() {
                // Unit-preserving combinators.
                "min" | "max" | "saturating_add" | "saturating_sub" | "wrapping_add"
                | "wrapping_sub" | "clamp" | "clone" | "copied" | "abs" => {
                    self.expr_unit(recv, env, file)
                }
                _ => ident_unit(method),
            },
            ExprKind::Call { callee, .. } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let resolved = file.resolve(segs);
                if let Some(sig) = self.index.lookup(&resolved) {
                    if let Some(u) = sig.ret.as_ref().and_then(ty_unit) {
                        return Some(u);
                    }
                    return ident_unit(&sig.name);
                }
                segs.last().and_then(|n| ident_unit(n))
            }
            ExprKind::Try(e) => self.expr_unit(e, env, file),
            ExprKind::Block(b) => match b.stmts.last() {
                Some(Stmt::Expr {
                    expr,
                    has_semi: false,
                }) => self.expr_unit(expr, env, file),
                _ => None,
            },
            ExprKind::Tuple(es) => match es.as_slice() {
                [only] => self.expr_unit(only, env, file),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    fn scan(src: &str) -> Vec<Located> {
        scan2(src, None)
    }

    fn scan2(src: &str, extra: Option<(&str, &str)>) -> Vec<Located> {
        let mut files = vec![FileAst::parse(
            "crates/ssd/src/x.rs",
            "ssd",
            &clean_source(src),
        )];
        if let Some((path, other)) = extra {
            let krate = path.split('/').nth(1).unwrap_or("fs").to_string();
            files.push(FileAst::parse(path, &krate, &clean_source(other)));
        }
        let index = Index::build(&files);
        run(&files, &index, &|p| p == "crates/ssd/src/x.rs")
    }

    #[test]
    fn cross_unit_addition_is_flagged() {
        let hits = scan("pub fn f(t_ns: u64, len_bytes: u64) -> u64 { t_ns + len_bytes }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("`+` combines"));
        assert!(hits[0].finding.message.contains("ns"));
        assert!(hits[0].finding.message.contains("bytes"));
    }

    #[test]
    fn same_unit_addition_passes() {
        let hits = scan("pub fn f(a_ns: u64, b_ns: u64) -> u64 { a_ns + b_ns }\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn multiplication_changes_dimension_quietly() {
        let hits =
            scan("pub fn bw(len_bytes: u64, t_ns: u64) -> u64 { len_bytes * 1_000 / t_ns }\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn lanes_suffix_is_not_ns() {
        // `lanes`.ends_with("ns") — the split-on-underscore rule must
        // not fall into that trap.
        let hits = scan("pub fn f(width_lanes: u64, t_ns: u64) -> bool { width_lanes == t_ns }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("lanes"));
    }

    #[test]
    fn propagation_through_locals() {
        let hits = scan(
            "pub fn f(t_ns: u64, len_bytes: u64) -> u64 {\n  let budget = t_ns;\n  let used = len_bytes;\n  budget - used\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("`-` combines"));
    }

    #[test]
    fn let_annotation_conflict_is_flagged() {
        let hits = scan("pub fn f(len_bytes: u64) {\n  let deadline_ns = len_bytes;\n}\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0]
            .finding
            .message
            .contains("`deadline_ns` is declared in ns"));
    }

    #[test]
    fn nanos_type_seeds_ns() {
        let hits = scan("pub fn f(t: Nanos, len_bytes: u64) -> bool { t < len_bytes }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("`<` combines"));
    }

    #[test]
    fn scale_consts_are_seeded() {
        let hits = scan(
            "pub fn f(t_ns: u64) -> bool { t_ns > GIB }\npub fn g(t_ns: u64) -> bool { t_ns > MS }\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("bytes"));
    }

    #[test]
    fn call_argument_units_cross_crates() {
        let hits = scan2(
            "use oocfs::plan;\npub fn f(len_bytes: u64) -> u64 { plan::admit(len_bytes) }\n",
            Some((
                "crates/fs/src/plan.rs",
                "pub fn admit(deadline_ns: u64) -> u64 { deadline_ns }\n",
            )),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0]
            .finding
            .message
            .contains("argument `deadline_ns` of `admit` expects ns"));
    }

    #[test]
    fn struct_field_units_checked() {
        let hits = scan("pub fn f(len_bytes: u64) -> Op {\n  Op { latency_ns: len_bytes }\n}\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("field `latency_ns`"));
    }

    #[test]
    fn min_max_cross_units_flagged() {
        let hits = scan("pub fn f(t_ns: u64, len_bytes: u64) -> u64 { t_ns.min(len_bytes) }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].finding.message.contains("`min` compares"));
    }

    #[test]
    fn test_code_is_exempt() {
        let hits = scan(
            "#[cfg(test)]\nmod tests {\n  pub fn f(t_ns: u64, len_bytes: u64) -> u64 { t_ns + len_bytes }\n}\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
