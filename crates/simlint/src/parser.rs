//! Token and token-tree layer over the cleaned source.
//!
//! [`crate::lexer::clean_source`] blanks comments and literal contents
//! but leaves the code's shape intact; this module turns that cleaned
//! text into a stream of spanned tokens and then into *token trees*
//! (nested `()`/`[]`/`{}` groups), the substrate for the AST layer and
//! the token-level rule ports.
//!
//! Design notes:
//! * Spans are 1-based `(line, col)` into the cleaned text. Columns are
//!   best-effort (the cleaner can shift bytes within a line); lines are
//!   exact, which is what the allowlist and diagnostics key on.
//! * Only unambiguous multi-char operators are fused at the token level
//!   (`::`, `->`, `=>`, `..`, `..=`, `...`, `&&`, `||`, `==`, `!=`).
//!   `<`/`>` always stay single so `Vec<Vec<u8>>` never lexes a shift;
//!   the expression parser re-joins adjacent puncts (`<=`, `+=`, `<<`)
//!   positionally when it actually is parsing an operator.
//! * `r#ident` raw identifiers lex as plain identifiers (the `r#` is
//!   consumed); cleaned string literals (`""`), raw strings (already
//!   reduced to `""` by the cleaner) and char literals (`''`) become
//!   single [`Tok::Str`]/[`Tok::Char`] tokens.

use crate::lexer::CleanFile;

/// A 1-based source position in the cleaned text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number (exact w.r.t. the original source).
    pub line: usize,
    /// 1-based column in the cleaned line (best-effort).
    pub col: usize,
}

impl Span {
    /// A span pointing nowhere (used for synthesized nodes).
    pub const NONE: Span = Span { line: 0, col: 0 };
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword; `r#ident` arrives with the `r#` stripped.
    Ident(String),
    /// Lifetime such as `'a` (name without the quote).
    Lifetime(String),
    /// Numeric literal, verbatim (`0xFF`, `1.5e-3`, `42u64`).
    Num(String),
    /// A (blanked) string literal.
    Str,
    /// A (blanked) char or byte literal.
    Char,
    /// Punctuation; fused multi-char operators are listed above.
    Punct(String),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when this token is the punct `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(s) if s == p)
    }
}

/// A spanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Multi-char operators fused during lexing, longest first. Everything
/// else (notably `<`, `>`, `<=`, compound assignment) stays single-char
/// and is re-joined by consumers via span adjacency.
const FUSED: [&str; 10] = ["..=", "...", "::", "->", "=>", "..", "&&", "||", "==", "!="];

/// Tokenizes a cleaned file into a flat spanned token stream.
pub fn tokenize(clean: &CleanFile) -> Vec<Token> {
    let mut out = Vec::new();
    // A string literal opened but not closed on its line (multi-line
    // literal): skip following lines until the closing quote.
    let mut in_str = false;
    for (line_idx, line) in clean.lines.iter().enumerate() {
        let chars: Vec<char> = line.text.chars().collect();
        let mut i = 0usize;
        let line_no = line_idx + 1;
        if in_str {
            match chars.iter().position(|&c| c == '"') {
                Some(pos) => {
                    in_str = false;
                    i = pos + 1;
                }
                None => continue,
            }
        }
        while i < chars.len() {
            let c = chars[i];
            let span = Span {
                line: line_no,
                col: i + 1,
            };
            if c.is_whitespace() {
                i += 1;
            } else if c == '"' {
                // Cleaned strings are `"..."` with blanked contents; the
                // closing quote may sit on a later line.
                out.push(Token {
                    tok: Tok::Str,
                    span,
                });
                match chars[i + 1..].iter().position(|&c| c == '"') {
                    Some(rel) => i += rel + 2,
                    None => {
                        in_str = true;
                        i = chars.len();
                    }
                }
            } else if c == '\'' {
                // `''` (cleaned char literal) vs `'a` (lifetime).
                if chars.get(i + 1) == Some(&'\'') {
                    out.push(Token {
                        tok: Tok::Char,
                        span,
                    });
                    i += 2;
                } else if chars
                    .get(i + 1)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    let start = i + 1;
                    let mut j = start;
                    while chars
                        .get(j)
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    {
                        j += 1;
                    }
                    out.push(Token {
                        tok: Tok::Lifetime(chars[start..j].iter().collect()),
                        span,
                    });
                    i = j;
                } else {
                    // Stray quote (should not occur in cleaned text).
                    out.push(Token {
                        tok: Tok::Punct("'".to_string()),
                        span,
                    });
                    i += 1;
                }
            } else if c.is_alphabetic() || c == '_' {
                let mut j = i;
                while chars
                    .get(j)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    j += 1;
                }
                let mut name: String = chars[i..j].iter().collect();
                // `r#ident` raw identifier: the cleaner leaves it verbatim.
                if name == "r"
                    && chars.get(j) == Some(&'#')
                    && chars
                        .get(j + 1)
                        .is_some_and(|c| c.is_alphabetic() || *c == '_')
                {
                    let start = j + 1;
                    let mut k = start;
                    while chars
                        .get(k)
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    {
                        k += 1;
                    }
                    name = chars[start..k].iter().collect();
                    j = k;
                }
                out.push(Token {
                    tok: Tok::Ident(name),
                    span,
                });
                i = j;
            } else if c.is_ascii_digit() {
                let mut j = i;
                let hex = chars.get(i) == Some(&'0')
                    && matches!(
                        chars.get(i + 1),
                        Some('x') | Some('X') | Some('o') | Some('b')
                    );
                let mut seen_dot = false;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && !hex
                        && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        // `1.5` continues the literal; `1..n` and
                        // `1.max(2)` do not.
                        seen_dot = true;
                        j += 1;
                    } else if (d == '+' || d == '-')
                        && !hex
                        && j > i
                        && matches!(chars.get(j - 1), Some('e') | Some('E'))
                    {
                        // Exponent sign: `1e-3`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Num(chars[i..j].iter().collect()),
                    span,
                });
                i = j;
            } else {
                // Punctuation: try the fused operators first.
                let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
                let fused = FUSED.iter().find(|op| rest.starts_with(**op));
                match fused {
                    Some(op) => {
                        out.push(Token {
                            tok: Tok::Punct((*op).to_string()),
                            span,
                        });
                        i += op.len();
                    }
                    None => {
                        out.push(Token {
                            tok: Tok::Punct(c.to_string()),
                            span,
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// A token tree: a leaf token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single token.
    Leaf(Token),
    /// A `(..)`, `[..]` or `{..}` group.
    Group(Group),
}

/// A delimited token-tree group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// Span of the opening delimiter.
    pub open: Span,
    /// Span of the closing delimiter (or the last token, if unclosed).
    pub close: Span,
    /// The trees between the delimiters.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The span where this tree starts.
    pub fn span(&self) -> Span {
        match self {
            Tree::Leaf(t) => t.span,
            Tree::Group(g) => g.open,
        }
    }

    /// The leaf token, if this tree is one.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            _ => None,
        }
    }

    /// The identifier text, if this tree is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        self.leaf().and_then(|t| t.tok.ident())
    }

    /// `true` when this tree is the punct `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.leaf().is_some_and(|t| t.tok.is_punct(p))
    }

    /// The group, if this tree is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            _ => None,
        }
    }

    /// The group, if this tree is one with the given delimiter.
    pub fn group_of(&self, delim: char) -> Option<&Group> {
        self.group().filter(|g| g.delim == delim)
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds nested token trees from a flat stream. Unbalanced closers are
/// dropped; unclosed groups close at end of input (the cleaner only ever
/// sees real Rust, so in practice files balance).
pub fn build_trees(tokens: Vec<Token>) -> Vec<Tree> {
    // Stack of (delimiter, open span, children under construction).
    let mut stack: Vec<(char, Span, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for token in tokens {
        let punct = match &token.tok {
            Tok::Punct(p) if p.len() == 1 => p.chars().next(),
            _ => None,
        };
        match punct {
            Some(open @ ('(' | '[' | '{')) => {
                stack.push((open, token.span, Vec::new()));
            }
            Some(close @ (')' | ']' | '}')) => {
                match stack.last() {
                    Some((open, _, _)) if closer(*open) == close => {
                        let (delim, open_span, children) =
                            stack.pop().unwrap_or(('(', Span::NONE, Vec::new()));
                        let group = Tree::Group(Group {
                            delim,
                            open: open_span,
                            close: token.span,
                            children,
                        });
                        match stack.last_mut() {
                            Some((_, _, siblings)) => siblings.push(group),
                            None => top.push(group),
                        }
                    }
                    _ => {} // unbalanced closer: drop
                }
            }
            _ => match stack.last_mut() {
                Some((_, _, siblings)) => siblings.push(Tree::Leaf(token)),
                None => top.push(Tree::Leaf(token)),
            },
        }
    }
    // Unclosed groups: fold them shut from the innermost out.
    while let Some((delim, open_span, children)) = stack.pop() {
        let close = children.last().map_or(open_span, Tree::span);
        let group = Tree::Group(Group {
            delim,
            open: open_span,
            close,
            children,
        });
        match stack.last_mut() {
            Some((_, _, siblings)) => siblings.push(group),
            None => top.push(group),
        }
    }
    top
}

/// Convenience: cleaned file → token trees.
pub fn parse_trees(clean: &CleanFile) -> Vec<Tree> {
    build_trees(tokenize(clean))
}

/// Walks every group's child list (including the top level), calling
/// `f` with each sibling slice. Token-sequence rules match on sibling
/// slices so `.unwrap()` split across lines is still three adjacent
/// trees.
pub fn walk_sibling_slices(trees: &[Tree], f: &mut impl FnMut(&[Tree])) {
    f(trees);
    for tree in trees {
        if let Tree::Group(g) = tree {
            walk_sibling_slices(&g.children, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&clean_source(src))
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn idents_nums_and_puncts() {
        let t = toks("let x = 42u64 + 0xFF;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct("=".into()),
                Tok::Num("42u64".into()),
                Tok::Punct("+".into()),
                Tok::Num("0xFF".into()),
                Tok::Punct(";".into()),
            ]
        );
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(
            toks("1.5e-3 0..n 1.max(2)"),
            vec![
                Tok::Num("1.5e-3".into()),
                Tok::Num("0".into()),
                Tok::Punct("..".into()),
                Tok::Ident("n".into()),
                Tok::Num("1".into()),
                Tok::Punct(".".into()),
                Tok::Ident("max".into()),
                Tok::Punct("(".into()),
                Tok::Num("2".into()),
                Tok::Punct(")".into()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_plain() {
        assert_eq!(
            toks("let r#match = r#fn;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("match".into()),
                Tok::Punct("=".into()),
                Tok::Ident("fn".into()),
                Tok::Punct(";".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            toks("fn f<'a>(x: &'a str) { let c = 'q'; }"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::Punct("<".into()),
                Tok::Lifetime("a".into()),
                Tok::Punct(">".into()),
                Tok::Punct("(".into()),
                Tok::Ident("x".into()),
                Tok::Punct(":".into()),
                Tok::Punct("&".into()),
                Tok::Lifetime("a".into()),
                Tok::Ident("str".into()),
                Tok::Punct(")".into()),
                Tok::Punct("{".into()),
                Tok::Ident("let".into()),
                Tok::Ident("c".into()),
                Tok::Punct("=".into()),
                Tok::Char,
                Tok::Punct(";".into()),
                Tok::Punct("}".into()),
            ]
        );
    }

    #[test]
    fn nested_generics_never_fuse_into_shift() {
        let t = toks("Vec<Vec<u8>>");
        assert_eq!(
            t,
            vec![
                Tok::Ident("Vec".into()),
                Tok::Punct("<".into()),
                Tok::Ident("Vec".into()),
                Tok::Punct("<".into()),
                Tok::Ident("u8".into()),
                Tok::Punct(">".into()),
                Tok::Punct(">".into()),
            ]
        );
    }

    #[test]
    fn fused_operators() {
        assert_eq!(
            toks("a::b -> c => d..=e && f || g == h != i"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("::".into()),
                Tok::Ident("b".into()),
                Tok::Punct("->".into()),
                Tok::Ident("c".into()),
                Tok::Punct("=>".into()),
                Tok::Ident("d".into()),
                Tok::Punct("..=".into()),
                Tok::Ident("e".into()),
                Tok::Punct("&&".into()),
                Tok::Ident("f".into()),
                Tok::Punct("||".into()),
                Tok::Ident("g".into()),
                Tok::Punct("==".into()),
                Tok::Ident("h".into()),
                Tok::Punct("!=".into()),
                Tok::Ident("i".into()),
            ]
        );
    }

    #[test]
    fn multiline_and_raw_strings_become_one_token() {
        let t = toks("let a = \"one\ntwo\nthree\"; let b = r#\"raw \"x\" body\"#; done();");
        let strs = t.iter().filter(|t| matches!(t, Tok::Str)).count();
        assert_eq!(strs, 2);
        assert!(t.contains(&Tok::Ident("done".into())));
    }

    #[test]
    fn trees_nest_and_span_lines() {
        let clean = clean_source("fn f() {\n    g(\n        1,\n    );\n}\n");
        let trees = parse_trees(&clean);
        // fn f () { ... }
        assert_eq!(trees.len(), 4);
        let body = trees[3].group_of('{').expect("body group");
        let call_args = body.children[1].group_of('(').expect("args");
        assert_eq!(call_args.open.line, 2);
        assert_eq!(call_args.close.line, 4);
        assert_eq!(call_args.children.len(), 2); // `1` `,`
    }

    #[test]
    fn unbalanced_closers_do_not_panic() {
        let clean = clean_source("fn f) } { (\n");
        let trees = parse_trees(&clean);
        assert!(!trees.is_empty());
    }
}
