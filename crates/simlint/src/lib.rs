//! `simlint` — workspace-specific static analysis for the NVM simulator.
//!
//! The paper's headline comparisons (CNL vs ION bandwidth, ~10.3x
//! end-to-end speedup) rest on a cycle-accurate simulator whose runs must
//! be *bit-identical* given the same inputs. This tool enforces the
//! source-level invariants that keep it that way:
//!
//! * **no-panic** — hot paths return typed errors instead of panicking;
//! * **determinism** — no `HashMap`/`HashSet` in simulator state, no
//!   wall-clock or OS entropy inside the simulators;
//! * **unit-safety** — nanosecond/byte/energy arithmetic uses checked
//!   conversions from `nvmtypes`, not bare `as` casts;
//! * **exhaustiveness** — `match`es over media/filesystem enums list
//!   every variant, so adding a PCM mode is a compile error, not a
//!   silent fall-through;
//! * **error visibility** — no `let _ =` wildcard discards in non-test
//!   code: a swallowed `Result` is how an injected fault disappears
//!   from the reliability report;
//! * **pool discipline** — no direct `thread::spawn`: parallelism goes
//!   through the vendored work-sharing pool so `RAYON_NUM_THREADS` and
//!   the determinism contract apply (docs/PARALLELISM.md);
//! * **concurrency safety** — no `Relaxed` atomics publishing or
//!   consuming cross-thread data, and no cycles in the workspace
//!   lock-acquisition graph; proven protocols live in
//!   simcheck-verified modules (docs/CONCURRENCY.md).
//!
//! Existing violations are enumerated in `simlint.allow` and may only
//! ratchet down (see [`allow`]). Run via `cargo run -p simlint`; see
//! `docs/INVARIANTS.md` for the rule catalogue and how to extend it.

#![forbid(unsafe_code)]

pub mod allow;
pub mod ast;
pub mod astrules;
pub mod concurrency;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod taint;
pub mod units;

use allow::Allowlist;
use rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose `src/` must stay entirely panic-free: the simulator
/// pipeline itself, and the observability layer riding on it.
/// `no_panic` findings here are *not* allowlistable.
pub const STRICT_NO_PANIC_CRATES: [&str; 8] = [
    "flashsim",
    "ssd",
    "interconnect",
    "fs",
    "ufs",
    "nvmtypes",
    "simobs",
    "simprof",
];

/// Crates where a silently-discarded `Result` (`let _ = ..`) is *not*
/// allowlistable: fault injection and recovery live here, and a swallowed
/// error is exactly how a fault vanishes from the report.
pub const STRICT_LET_UNDERSCORE_CRATES: [&str; 7] = [
    "flashsim",
    "ssd",
    "interconnect",
    "ufs",
    "core",
    "simobs",
    "simprof",
];

/// Crates where library-code printing (`println!`/`eprintln!`) is *not*
/// allowlistable: the simulator pipeline and the tracer must stay
/// silent — console output is the binaries' job.
pub const STRICT_NO_PRINTLN_CRATES: [&str; 9] = [
    "flashsim",
    "ssd",
    "interconnect",
    "fs",
    "ufs",
    "ooc",
    "core",
    "simobs",
    "simprof",
];

/// Crates whose state must iterate deterministically.
const DETERMINISM_CRATES: [&str; 10] = [
    "flashsim",
    "ssd",
    "interconnect",
    "fs",
    "ufs",
    "nvmtypes",
    "core",
    "trace",
    "simobs",
    "simprof",
];

/// Crates forbidden from consulting wall clocks or OS entropy.
const SIMULATED_TIME_CRATES: [&str; 5] = ["flashsim", "ssd", "interconnect", "simobs", "simprof"];

/// Crates doing ns/bytes/energy arithmetic, where bare `as` casts are
/// tracked and burned down.
const UNIT_MATH_CRATES: [&str; 7] = [
    "flashsim",
    "ssd",
    "interconnect",
    "fs",
    "nvmtypes",
    "simobs",
    "simprof",
];

/// A finding bound to the file it occurred in.
#[derive(Debug, Clone)]
pub struct Located {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The underlying finding.
    pub finding: Finding,
}

/// Result of scanning the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, sorted by path then line.
    pub findings: Vec<Located>,
    /// Per-`(rule, path)` counts.
    pub counts: BTreeMap<(Rule, String), usize>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Hot-path allocation-site inventory (both severities), from the
    /// interprocedural hotpath pass.
    pub hot_sites: Vec<hotpath::Site>,
    /// Number of hot-reachable functions in the call graph.
    pub hot_fns: usize,
}

impl Report {
    /// Total findings for one rule.
    pub fn total(&self, rule: Rule) -> usize {
        self.counts
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, c)| c)
            .sum()
    }
}

/// Outcome of checking a [`Report`] against an [`Allowlist`].
#[derive(Debug, Default)]
pub struct Verdict {
    /// Findings exceeding their allowance, with the excess count.
    pub violations: Vec<String>,
    /// Allowlist entries exceeding reality (must ratchet down).
    pub stale: Vec<String>,
    /// Allowlist entries that are not allowlistable (strict scopes).
    pub forbidden: Vec<String>,
}

impl Verdict {
    /// `true` when the workspace is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty() && self.forbidden.is_empty()
    }
}

/// Whether a workspace-relative path is *library* code: anything under
/// `src/` that is not a binary entry point (`src/bin/**` or
/// `src/main.rs`). Binaries are where printing belongs.
pub fn is_lib_path(path: &str) -> bool {
    !path.contains("/src/bin/") && !path.starts_with("src/bin/") && !path.ends_with("src/main.rs")
}

/// Which rules apply to a workspace-relative file path.
pub fn rules_for(path: &str) -> Vec<Rule> {
    let Some(krate) = source_crate(path) else {
        return Vec::new();
    };
    let mut rules = vec![
        Rule::NoPanic,
        Rule::EnumWildcard,
        Rule::LetUnderscoreResult,
        Rule::ThreadSpawn,
    ];
    if is_lib_path(path) {
        rules.push(Rule::NoPrintlnInLib);
    }
    if DETERMINISM_CRATES.contains(&krate) {
        rules.push(Rule::NondeterministicCollection);
    }
    if SIMULATED_TIME_CRATES.contains(&krate) {
        rules.push(Rule::WallClock);
    }
    if UNIT_MATH_CRATES.contains(&krate) {
        rules.push(Rule::BareCast);
    }
    // Semantic passes (computed in `scan_workspace`, which has the
    // cross-crate index). Taint covers every crate whose output feeds
    // results or traces; `bench` is exempt — env knobs and wall-clock
    // stamps are sanctioned in the harness. Units cover everything
    // doing ns/bytes/lanes arithmetic, including the out-of-core
    // algorithms that consume simulator timings.
    if DETERMINISM_CRATES.contains(&krate) || krate == "ooc" {
        rules.push(Rule::NondetTaint);
    }
    if UNIT_MATH_CRATES.contains(&krate) || matches!(krate, "core" | "trace" | "ooc") {
        rules.push(Rule::UnitMismatch);
    }
    // The concurrency passes apply everywhere: any crate can misuse an
    // atomic or invert a lock order, and the lock graph is one
    // workspace-wide artifact.
    rules.push(Rule::AtomicOrdering);
    rules.push(Rule::LockOrder);
    // The hotpath pass reports on the crates hosting the simulator's
    // event loops and everything they call (same scope as taint: the
    // determinism crates plus the out-of-core algorithms).
    if DETERMINISM_CRATES.contains(&krate) || krate == "ooc" {
        rules.push(Rule::HotPathAlloc);
    }
    rules
}

/// Extracts the crate name for an in-scope production source path:
/// `crates/<name>/src/**.rs` or the root package's `src/**.rs` (as
/// `"oocnvm"`). Everything else — vendor shims, tests, benches,
/// fixtures, examples — is out of scope.
pub fn source_crate(path: &str) -> Option<&str> {
    if !path.ends_with(".rs") {
        return None;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        let (krate, tail) = rest.split_once('/')?;
        if krate == "simlint" {
            // The linter lints itself, but not its violation fixtures.
            return if tail.starts_with("src/") {
                Some("simlint")
            } else {
                None
            };
        }
        return if tail.starts_with("src/") {
            Some(krate)
        } else {
            None
        };
    }
    if path.starts_with("src/") {
        return Some("oocnvm");
    }
    None
}

/// Scans one file's source text under the rules for its path. Rules run
/// over the token trees/AST (see [`astrules`]); the legacy per-line
/// engine in [`rules`] is kept as a comparison baseline for selftests.
pub fn scan_source(path: &str, source: &str) -> Vec<Located> {
    let clean = lexer::clean_source(source);
    let trees = parser::parse_trees(&clean);
    let file = ast::parse_file(&trees);
    let mut out = Vec::new();
    for rule in rules_for(path) {
        let findings = match rule {
            Rule::NoPanic => astrules::no_panic(&clean, &trees),
            Rule::NondeterministicCollection => {
                astrules::nondeterministic_collection(&clean, &trees)
            }
            Rule::WallClock => astrules::wall_clock(&clean, &trees),
            Rule::BareCast => astrules::bare_cast(&clean, &trees),
            Rule::EnumWildcard => astrules::enum_wildcard(&clean, &file),
            Rule::LetUnderscoreResult => astrules::let_underscore_result(&clean, &trees),
            Rule::NoPrintlnInLib => astrules::no_println_in_lib(&clean, &trees),
            Rule::ThreadSpawn => astrules::thread_spawn(&clean, &trees, &file),
            // Semantic passes need the cross-file index; they run in
            // `scan_workspace`, not per-file.
            Rule::NondetTaint
            | Rule::UnitMismatch
            | Rule::AtomicOrdering
            | Rule::LockOrder
            | Rule::HotPathAlloc => Vec::new(),
        };
        out.extend(findings.into_iter().map(|finding| Located {
            path: path.to_string(),
            finding,
        }));
    }
    out.sort_by(|a, b| a.finding.line.cmp(&b.finding.line));
    out
}

/// Walks the workspace and scans every in-scope file.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    let mut file_asts = Vec::new();
    for rel in files {
        if rules_for(&rel).is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        for located in scan_source(&rel, &source) {
            *report
                .counts
                .entry((located.finding.rule, located.path.clone()))
                .or_insert(0) += 1;
            report.findings.push(located);
        }
        if let Some(krate) = source_crate(&rel) {
            let clean = lexer::clean_source(&source);
            file_asts.push(resolve::FileAst::parse(&rel, krate, &clean));
        }
    }
    // Semantic passes: workspace-wide dataflow over the symbol index.
    let index = resolve::Index::build(&file_asts);
    let taint_scope = |p: &str| rules_for(p).contains(&Rule::NondetTaint);
    let unit_scope = |p: &str| rules_for(p).contains(&Rule::UnitMismatch);
    let atomic_scope = |p: &str| rules_for(p).contains(&Rule::AtomicOrdering);
    let lock_scope = |p: &str| rules_for(p).contains(&Rule::LockOrder);
    let hot_scope = |p: &str| rules_for(p).contains(&Rule::HotPathAlloc);
    let hot = hotpath::run(&file_asts, &index, &hot_scope);
    report.hot_sites = hot.sites;
    report.hot_fns = hot.hot_fns;
    for located in taint::run(&file_asts, &index, &taint_scope)
        .into_iter()
        .chain(units::run(&file_asts, &index, &unit_scope))
        .chain(concurrency::run(
            &file_asts,
            &index,
            &atomic_scope,
            &lock_scope,
        ))
        .chain(hot.findings)
    {
        *report
            .counts
            .entry((located.finding.rule, located.path.clone()))
            .or_insert(0) += 1;
        report.findings.push(located);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.finding.line).cmp(&(&b.path, b.finding.line)));
    Ok(report)
}

/// Recursively collects workspace-relative `.rs` paths, skipping
/// directories that are never in scope.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Checks a report against the allowlist, applying strict-scope policy.
pub fn check(report: &Report, allow: &Allowlist) -> Verdict {
    let mut verdict = Verdict::default();
    // Forbidden allowlist entries: rules with a strict scope cannot be
    // excused inside it.
    for (rule, path, count) in allow.iter() {
        // The semantic passes are never allowlistable anywhere: a
        // nondeterministic result, a cross-unit sum, an unsynchronized
        // publication, or a lock-order cycle is a bug, not debt to be
        // tracked.
        if matches!(
            rule,
            Rule::NondetTaint | Rule::UnitMismatch | Rule::AtomicOrdering | Rule::LockOrder
        ) {
            verdict.forbidden.push(format!(
                "{path}: `{}` is never allowlistable ({count} entries)",
                rule.id()
            ));
        }
        let strict_scope: &[&str] = match rule {
            Rule::NoPanic => &STRICT_NO_PANIC_CRATES,
            Rule::LetUnderscoreResult => &STRICT_LET_UNDERSCORE_CRATES,
            Rule::NoPrintlnInLib => &STRICT_NO_PRINTLN_CRATES,
            _ => &[],
        };
        if let Some(krate) = source_crate(path) {
            if strict_scope.contains(&krate) {
                verdict.forbidden.push(format!(
                    "{path}: `{}` is not allowlistable in strict crate `{krate}` ({count} entries)",
                    rule.id()
                ));
            }
        }
        // Stale: allowance exceeds reality (including files now clean).
        let actual = report
            .counts
            .get(&(rule, path.to_string()))
            .copied()
            .unwrap_or(0);
        if count > actual {
            verdict.stale.push(format!(
                "{path}: allowlist grants {count} `{}` but only {actual} remain — ratchet it down",
                rule.id()
            ));
        }
    }
    // Violations: reality exceeds allowance.
    for ((rule, path), &actual) in &report.counts {
        let allowed = allow.allowed(*rule, path);
        if actual > allowed {
            let detail: Vec<String> = report
                .findings
                .iter()
                .filter(|l| l.finding.rule == *rule && &l.path == path)
                .map(|l| format!("  {}:{}: {}", l.path, l.finding.line, l.finding.message))
                .collect();
            verdict.violations.push(format!(
                "{path}: {actual} `{}` finding(s), {allowed} allowed:\n{}",
                rule.id(),
                detail.join("\n")
            ));
        }
    }
    verdict
}

/// Locates the workspace root from the simlint crate's own manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| String::from("."));
    let p = PathBuf::from(manifest);
    // crates/simlint -> workspace root.
    p.parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert_eq!(
            source_crate("crates/flashsim/src/engine.rs"),
            Some("flashsim")
        );
        assert_eq!(source_crate("crates/ssd/tests/ftl_props.rs"), None);
        assert_eq!(source_crate("crates/simlint/fixtures/bad.rs"), None);
        assert_eq!(source_crate("crates/simlint/src/lib.rs"), Some("simlint"));
        assert_eq!(source_crate("src/main.rs"), Some("oocnvm"));
        assert_eq!(source_crate("vendor/rand/src/lib.rs"), None);
        assert_eq!(source_crate("tests/extensions.rs"), None);
    }

    #[test]
    fn rule_scoping_follows_crate_role() {
        let fs = rules_for("crates/flashsim/src/engine.rs");
        assert!(fs.contains(&Rule::WallClock) && fs.contains(&Rule::BareCast));
        let ooc = rules_for("crates/ooc/src/lobpcg.rs");
        assert!(ooc.contains(&Rule::NoPanic) && !ooc.contains(&Rule::WallClock));
        assert!(!ooc.contains(&Rule::BareCast));
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        // Printing: library code is covered, binary entry points are not.
        assert!(fs.contains(&Rule::NoPrintlnInLib));
        assert!(ooc.contains(&Rule::NoPrintlnInLib));
        let bin = rules_for("crates/bench/src/bin/headline.rs");
        assert!(bin.contains(&Rule::NoPanic) && !bin.contains(&Rule::NoPrintlnInLib));
        assert!(!rules_for("src/bin/obsreport.rs").contains(&Rule::NoPrintlnInLib));
        assert!(!rules_for("src/main.rs").contains(&Rule::NoPrintlnInLib));
        assert!(!rules_for("crates/simlint/src/main.rs").contains(&Rule::NoPrintlnInLib));
    }

    #[test]
    fn check_flags_violation_stale_and_forbidden() {
        let mut report = Report::default();
        report
            .counts
            .insert((Rule::BareCast, "crates/ssd/src/ftl.rs".into()), 2);
        let allow = Allowlist::parse(
            "bare_cast crates/ssd/src/ftl.rs 5\nno_panic crates/flashsim/src/engine.rs 1\n",
        )
        .expect("parses");
        let v = check(&report, &allow);
        assert_eq!(v.stale.len(), 2, "over-granted cast + clean no_panic file");
        assert_eq!(v.forbidden.len(), 1, "strict-crate no_panic entry");
        assert!(v.violations.is_empty());
        assert!(!v.ok());
    }
}
