//! A lightweight Rust AST parsed from token trees.
//!
//! This is not a full Rust parser: it recognises the item structure
//! (functions, impls, use trees, structs, mods), function signatures,
//! and a practical expression grammar (calls, method chains, casts,
//! binary operators, `match` arms, closures, blocks). Anything it does
//! not understand degrades to [`ExprKind::Unknown`] carrying harvested
//! sub-expressions, so downstream passes stay *conservative*: they may
//! lose precision on exotic syntax, never soundness on the constructs
//! the rules care about.

use crate::parser::{Group, Span, Tok, Tree};

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item, with visibility and test-gating noted.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Where it starts (the keyword token).
    pub span: Span,
    /// `pub` (any form: `pub`, `pub(crate)`, ...).
    pub is_pub: bool,
    /// Carried a `#[cfg(test)]` attribute.
    pub cfg_test: bool,
}

/// Item kinds the analyses consume; everything else is `Other`.
#[derive(Debug)]
pub enum ItemKind {
    /// `fn` definition or trait-method signature.
    Fn(FnDef),
    /// `use` declaration, flattened to `(path, binding-name)` pairs.
    Use(Vec<UseEntry>),
    /// Inline module with its items (`mod m;` has no items).
    Mod {
        /// Module name.
        name: String,
        /// Items inside an inline `mod m { .. }` body.
        items: Vec<Item>,
    },
    /// `impl` block (inherent or trait).
    Impl {
        /// The `Self` type's base name (`Foo` for `impl<T> Foo<T>`).
        self_ty: String,
        /// Associated items.
        items: Vec<Item>,
    },
    /// `struct` with any named fields captured.
    Struct {
        /// Type name.
        name: String,
        /// Named fields (tuple structs yield none).
        fields: Vec<Param>,
    },
    /// `enum` declaration (variants are not modelled).
    Enum {
        /// Type name.
        name: String,
    },
    /// `trait` with its associated items.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items (method signatures/defaults).
        items: Vec<Item>,
    },
    /// `const`/`static` with its declared type.
    Const {
        /// Constant name.
        name: String,
        /// Declared type.
        ty: TyInfo,
    },
    /// Anything else (`type`, `extern`, macros, ...).
    Other,
}

/// One flattened `use` binding: `use a::b::{c as d};` yields
/// `path = [a, b, c]`, `alias = d`.
#[derive(Debug, Clone)]
pub struct UseEntry {
    /// Full path segments.
    pub path: Vec<String>,
    /// The name this binding introduces in scope.
    pub alias: String,
}

/// A function definition or signature.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters in order (`self` appears as a param named `self`).
    pub params: Vec<Param>,
    /// Return type, if not `()`.
    pub ret: Option<TyInfo>,
    /// Body, absent for trait-method signatures.
    pub body: Option<Block>,
}

/// A named, typed slot: fn parameter or struct field.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding/field name (empty when the pattern is complex).
    pub name: String,
    /// Declared type.
    pub ty: TyInfo,
}

/// A type reference reduced to what the passes need.
#[derive(Debug, Clone, Default)]
pub struct TyInfo {
    /// Base path ident after stripping `&`/`mut`/`dyn`/`impl` and
    /// taking the last segment: `&'a nvmtypes::Nanos` → `Nanos`,
    /// `Vec<Nanos>` → `Vec`. Empty for tuple/slice/fn types.
    pub base: String,
    /// Rendered source-ish text, for diagnostics.
    pub text: String,
}

/// A `{ .. }` block of statements.
#[derive(Debug)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span of the opening brace.
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let` binding.
    Let {
        /// Bound name for simple patterns (`let x`, `let mut x`);
        /// `None` for destructuring patterns.
        name: Option<String>,
        /// Declared type annotation.
        ty: Option<TyInfo>,
        /// Initialiser.
        init: Option<Expr>,
        /// Span of the `let` keyword.
        span: Span,
    },
    /// Expression statement.
    Expr {
        /// The expression.
        expr: Expr,
        /// Terminated by `;` (a trailing expression is the fn result).
        has_semi: bool,
    },
    /// Nested item (fn-in-fn, use-in-fn, ...).
    Item(Item),
}

/// A spanned expression.
#[derive(Debug)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Where it starts.
    pub span: Span,
}

/// Expression shapes, reduced to what the passes consume.
#[derive(Debug)]
pub enum ExprKind {
    /// `a`, `a::b::c` (turbofish args dropped).
    Path(Vec<String>),
    /// Literal (number text, or blanked string/char).
    Lit(String),
    /// `callee(args)`.
    Call {
        /// Called expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base.field` / `base.0`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name or tuple index.
        name: String,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator text (`+`, `==`, `<<`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `op operand` (`-`, `!`, `*`, `&`).
    Unary {
        /// Operator text.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `operand as Ty`.
    Cast {
        /// Value being cast.
        operand: Box<Expr>,
        /// Target type.
        ty: TyInfo,
    },
    /// `path!(args)` (args parsed best-effort).
    Macro {
        /// Macro path.
        path: Vec<String>,
        /// Comma-split argument expressions.
        args: Vec<Expr>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
    },
    /// `if cond { then } else ..` (covers `if let`: `cond` is the
    /// scrutinee).
    If {
        /// Condition or `if let` scrutinee.
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else branch (block or nested `if`).
        els: Option<Box<Expr>>,
    },
    /// `while`/`while let` loop.
    While {
        /// Condition or scrutinee.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for pat in iter { body }`.
    For {
        /// Bound name for simple patterns.
        pat: Option<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Block,
    },
    /// Block expression (incl. `unsafe`/labelled blocks).
    Block(Block),
    /// Closure.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `(a, b, ..)` — a 1-tuple of parse is just the inner expr.
    Tuple(Vec<Expr>),
    /// `[a, b, ..]` / `[x; n]`.
    Array(Vec<Expr>),
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Struct path.
        path: Vec<String>,
        /// Field initialisers (shorthand `x` yields `(x, Path[x])`).
        fields: Vec<(String, Expr)>,
    },
    /// `lhs = rhs` and compound forms.
    Assign {
        /// `=`, `+=`, `<<=`, ...
        op: String,
        /// Assignee.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `return expr?`.
    Return(Option<Box<Expr>>),
    /// `break expr?` / `continue`.
    Break(Option<Box<Expr>>),
    /// `lo..hi` (either side optional).
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// Unparsed construct with harvested path/ident sub-expressions,
    /// so dataflow passes stay conservative.
    Unknown(Vec<Expr>),
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// `true` when the pattern is exactly `_`.
    pub is_wild: bool,
    /// Paths named in the pattern (`IoOp::Read` → `[IoOp, Read]`).
    pub pat_paths: Vec<Vec<String>>,
    /// Guard expression (`pat if guard =>`).
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// Span of the pattern start.
    pub span: Span,
}

/// Parses a file's token trees into items.
pub fn parse_file(trees: &[Tree]) -> File {
    let mut cur = Cursor { trees, pos: 0 };
    File {
        items: parse_items(&mut cur),
    }
}

/// Item keywords that start an item inside a block.
const ITEM_KEYWORDS: [&str; 11] = [
    "fn",
    "use",
    "mod",
    "impl",
    "struct",
    "enum",
    "trait",
    "type",
    "const",
    "static",
    "macro_rules",
];

struct Cursor<'a> {
    trees: &'a [Tree],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Tree> {
        self.trees.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Tree> {
        self.trees.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&'a Tree> {
        let t = self.trees.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.trees.len()
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.peek().and_then(Tree::ident) == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn span(&self) -> Span {
        self.peek().map_or(Span::NONE, Tree::span)
    }

    /// Skips a balanced `<..>` region starting at the current `<`.
    fn skip_angles(&mut self) {
        if !self.eat_punct("<") {
            return;
        }
        let mut depth = 1i64;
        while depth > 0 {
            match self.bump() {
                Some(t) if t.is_punct("<") => depth += 1,
                Some(t) if t.is_punct(">") => depth -= 1,
                Some(_) => {}
                None => break,
            }
        }
    }

    /// Consumes trees until a top-level `;` (consumed) or end.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.bump() {
            if t.is_punct(";") {
                break;
            }
        }
    }
}

/// Attribute prefix: consumes `#[..]` / `#![..]` runs, reporting
/// whether any was `#[cfg(test)]`-like.
fn eat_attrs(cur: &mut Cursor) -> bool {
    let mut cfg_test = false;
    loop {
        if !cur.peek().is_some_and(|t| t.is_punct("#")) {
            return cfg_test;
        }
        // `#` [`!`] `[..]`
        let mut ahead = 1;
        if cur.peek_at(ahead).is_some_and(|t| t.is_punct("!")) {
            ahead += 1;
        }
        let Some(group) = cur.peek_at(ahead).and_then(|t| t.group_of('[')) else {
            return cfg_test;
        };
        if attr_is_cfg_test(group) {
            cfg_test = true;
        }
        cur.pos += ahead + 1;
    }
}

fn attr_is_cfg_test(group: &Group) -> bool {
    let mut saw_cfg = false;
    let mut saw_test = false;
    visit_idents(&group.children, &mut |name| {
        if name == "cfg" {
            saw_cfg = true;
        }
        if name == "test" {
            saw_test = true;
        }
    });
    saw_cfg && saw_test
}

fn visit_idents(trees: &[Tree], f: &mut impl FnMut(&str)) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if let Tok::Ident(name) = &tok.tok {
                    f(name);
                }
            }
            Tree::Group(g) => visit_idents(&g.children, f),
        }
    }
}

fn parse_items(cur: &mut Cursor) -> Vec<Item> {
    let mut items = Vec::new();
    while !cur.at_end() {
        match parse_item(cur) {
            Some(item) => items.push(item),
            None => {
                cur.bump(); // recovery: drop one tree and continue
            }
        }
    }
    items
}

/// Parses one item at the cursor; `None` if this is not an item start.
fn parse_item(cur: &mut Cursor) -> Option<Item> {
    let cfg_test = eat_attrs(cur);
    let span = cur.span();
    let mut is_pub = false;
    if cur.eat_ident("pub") {
        is_pub = true;
        // `pub(crate)` / `pub(in path)`.
        if cur.peek().is_some_and(|t| t.group_of('(').is_some()) {
            cur.bump();
        }
    }
    // Fn qualifiers.
    loop {
        if cur.eat_ident("default") || cur.eat_ident("async") || cur.eat_ident("unsafe") {
            continue;
        }
        if cur.peek().and_then(Tree::ident) == Some("const")
            && cur.peek_at(1).and_then(Tree::ident) == Some("fn")
        {
            cur.bump();
            continue;
        }
        if cur.eat_ident("extern") {
            if cur
                .peek()
                .is_some_and(|t| matches!(t.leaf().map(|l| &l.tok), Some(Tok::Str)))
            {
                cur.bump();
            }
            continue;
        }
        break;
    }
    let kw = cur.peek().and_then(Tree::ident)?;
    let kind = match kw {
        "fn" => {
            cur.bump();
            ItemKind::Fn(parse_fn(cur)?)
        }
        "use" => {
            cur.bump();
            let entries = parse_use(cur);
            ItemKind::Use(entries)
        }
        "mod" => {
            cur.bump();
            let name = cur.bump().and_then(Tree::ident)?.to_string();
            if cur.eat_punct(";") {
                ItemKind::Mod {
                    name,
                    items: Vec::new(),
                }
            } else {
                let body = cur.bump().and_then(|t| t.group_of('{'))?;
                let mut inner = Cursor {
                    trees: &body.children,
                    pos: 0,
                };
                ItemKind::Mod {
                    name,
                    items: parse_items(&mut inner),
                }
            }
        }
        "impl" => {
            cur.bump();
            if cur.peek().is_some_and(|t| t.is_punct("<")) {
                cur.skip_angles();
            }
            // Type up to `for`/`where`/body; if `for` appears, the
            // second type is Self.
            let mut self_ty = String::new();
            loop {
                match cur.peek() {
                    None => break,
                    Some(t) if t.group_of('{').is_some() => break,
                    Some(t) if t.ident() == Some("where") => {
                        skip_where(cur);
                        break;
                    }
                    Some(t) if t.ident() == Some("for") => {
                        cur.bump();
                        self_ty.clear();
                    }
                    Some(t) => {
                        if t.is_punct("<") {
                            cur.skip_angles();
                            continue;
                        }
                        if let Some(name) = t.ident() {
                            self_ty = name.to_string();
                        }
                        cur.bump();
                    }
                }
            }
            let body = cur.bump().and_then(|t| t.group_of('{'))?;
            let mut inner = Cursor {
                trees: &body.children,
                pos: 0,
            };
            ItemKind::Impl {
                self_ty,
                items: parse_items(&mut inner),
            }
        }
        "struct" => {
            cur.bump();
            let name = cur.bump().and_then(Tree::ident)?.to_string();
            if cur.peek().is_some_and(|t| t.is_punct("<")) {
                cur.skip_angles();
            }
            if cur.peek().is_some_and(|t| t.ident() == Some("where")) {
                skip_where(cur);
            }
            let fields = match cur.peek() {
                Some(t) if t.group_of('{').is_some() => {
                    let g = cur.bump().and_then(|t| t.group_of('{'))?;
                    parse_fields(g)
                }
                Some(t) if t.group_of('(').is_some() => {
                    cur.bump();
                    cur.eat_punct(";");
                    Vec::new()
                }
                _ => {
                    cur.eat_punct(";");
                    Vec::new()
                }
            };
            ItemKind::Struct { name, fields }
        }
        "enum" => {
            cur.bump();
            let name = cur.bump().and_then(Tree::ident)?.to_string();
            while let Some(t) = cur.peek() {
                if t.group_of('{').is_some() {
                    cur.bump();
                    break;
                }
                if t.is_punct("<") {
                    cur.skip_angles();
                } else {
                    cur.bump();
                }
            }
            ItemKind::Enum { name }
        }
        "trait" => {
            cur.bump();
            let name = cur.bump().and_then(Tree::ident)?.to_string();
            while let Some(t) = cur.peek() {
                if t.group_of('{').is_some() {
                    break;
                }
                if t.is_punct("<") {
                    cur.skip_angles();
                } else {
                    cur.bump();
                }
            }
            let body = cur.bump().and_then(|t| t.group_of('{'))?;
            let mut inner = Cursor {
                trees: &body.children,
                pos: 0,
            };
            ItemKind::Trait {
                name,
                items: parse_items(&mut inner),
            }
        }
        "const" | "static" => {
            cur.bump();
            cur.eat_ident("mut");
            let name = cur.bump().and_then(Tree::ident).unwrap_or("").to_string();
            let mut ty = TyInfo::default();
            if cur.eat_punct(":") {
                let ty_trees = collect_until(cur, &["="], &[";"]);
                ty = ty_from_trees(&ty_trees);
            }
            cur.skip_to_semi();
            ItemKind::Const { name, ty }
        }
        "type" => {
            cur.bump();
            cur.skip_to_semi();
            ItemKind::Other
        }
        "macro_rules" => {
            cur.bump();
            cur.eat_punct("!");
            cur.bump(); // name
            cur.bump(); // body group
            ItemKind::Other
        }
        _ => return None,
    };
    Some(Item {
        kind,
        span,
        is_pub,
        cfg_test,
    })
}

fn skip_where(cur: &mut Cursor) {
    cur.eat_ident("where");
    while let Some(t) = cur.peek() {
        if t.group_of('{').is_some() || t.is_punct(";") {
            break;
        }
        if t.is_punct("<") {
            cur.skip_angles();
        } else {
            cur.bump();
        }
    }
}

fn parse_fn(cur: &mut Cursor) -> Option<FnDef> {
    let name = cur.bump().and_then(Tree::ident)?.to_string();
    if cur.peek().is_some_and(|t| t.is_punct("<")) {
        cur.skip_angles();
    }
    let params_group = cur.bump().and_then(|t| t.group_of('('))?;
    let params = parse_params(params_group);
    let mut ret = None;
    if cur.eat_punct("->") {
        let ty_trees = collect_ret_type(cur);
        ret = Some(ty_from_trees(&ty_trees));
    }
    if cur.peek().is_some_and(|t| t.ident() == Some("where")) {
        skip_where(cur);
    }
    let body = match cur.peek() {
        Some(t) if t.group_of('{').is_some() => {
            let g = cur.bump().and_then(|t| t.group_of('{'))?;
            Some(parse_block(g))
        }
        _ => {
            cur.eat_punct(";");
            None
        }
    };
    Some(FnDef {
        name,
        params,
        ret,
        body,
    })
}

/// Collects the return-type trees: everything up to `where`, the body
/// block, or `;` (angle-bracket regions skipped wholesale).
fn collect_ret_type<'a>(cur: &mut Cursor<'a>) -> Vec<&'a Tree> {
    let mut out = Vec::new();
    while let Some(t) = cur.peek() {
        if t.ident() == Some("where") || t.is_punct(";") {
            break;
        }
        if t.group_of('{').is_some() {
            // `-> Foo { .. }`: the block is the fn body, unless the type
            // was `impl Fn..`-ish, which this workspace does not return.
            break;
        }
        if t.is_punct("<") {
            let start = cur.pos;
            cur.skip_angles();
            out.extend(&cur.trees[start..cur.pos]);
            continue;
        }
        out.push(t);
        cur.bump();
    }
    out
}

/// Collects trees until a top-level punct in `stop` (consumed) or in
/// `halt` (not consumed); angle regions are skipped wholesale. A `"{"`
/// in `halt` matches a brace *group* (blocks are groups, not puncts).
fn collect_until<'a>(cur: &mut Cursor<'a>, stop: &[&str], halt: &[&str]) -> Vec<&'a Tree> {
    let mut out = Vec::new();
    while let Some(t) = cur.peek() {
        if halt.contains(&"{") && t.group_of('{').is_some() {
            return out;
        }
        if let Some(tok) = t.leaf() {
            if let Tok::Punct(p) = &tok.tok {
                if stop.contains(&p.as_str()) {
                    cur.bump();
                    return out;
                }
                if halt.contains(&p.as_str()) {
                    return out;
                }
                if p == "<" {
                    let start = cur.pos;
                    cur.skip_angles();
                    out.extend(&cur.trees[start..cur.pos]);
                    continue;
                }
            }
        }
        out.push(t);
        cur.bump();
    }
    out
}

fn parse_params(group: &Group) -> Vec<Param> {
    split_top(&group.children, ",")
        .into_iter()
        .filter(|part| !part.is_empty())
        .filter_map(|part| parse_param(&part))
        .collect()
}

fn parse_param(trees: &[&Tree]) -> Option<Param> {
    // Locate the top-level `:` separating pattern from type.
    let colon = trees.iter().position(|t| t.is_punct(":"));
    let (pat, ty) = match colon {
        Some(i) => (&trees[..i], ty_from_trees(&trees[i + 1..])),
        None => {
            // `self` receivers: `self`, `&self`, `&mut self`, `&'a self`.
            if trees.iter().any(|t| t.ident() == Some("self")) {
                return Some(Param {
                    name: "self".to_string(),
                    ty: TyInfo::default(),
                });
            }
            (trees, TyInfo::default())
        }
    };
    let name = pat
        .iter()
        .filter_map(|t| t.ident())
        .find(|n| *n != "mut" && *n != "ref")
        .unwrap_or("")
        .to_string();
    Some(Param { name, ty })
}

fn parse_fields(group: &Group) -> Vec<Param> {
    split_top(&group.children, ",")
        .into_iter()
        .filter_map(|part| {
            // Strip attributes and `pub`.
            let mut idx = 0;
            while idx < part.len() {
                if part[idx].is_punct("#") {
                    idx += 1;
                    if part.get(idx).is_some_and(|t| t.group_of('[').is_some()) {
                        idx += 1;
                    }
                } else if part[idx].ident() == Some("pub") {
                    idx += 1;
                    if part.get(idx).is_some_and(|t| t.group_of('(').is_some()) {
                        idx += 1;
                    }
                } else {
                    break;
                }
            }
            let rest = &part[idx..];
            let colon = rest.iter().position(|t| t.is_punct(":"))?;
            let name = rest.first().and_then(|t| t.ident())?.to_string();
            Some(Param {
                name,
                ty: ty_from_trees(&rest[colon + 1..]),
            })
        })
        .collect()
}

/// Splits a sibling slice at top-level occurrences of `sep`.
fn split_top<'a>(trees: &'a [Tree], sep: &str) -> Vec<Vec<&'a Tree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i64;
    for t in trees {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct(sep) {
            parts.push(Vec::new());
            continue;
        }
        if let Some(last) = parts.last_mut() {
            last.push(t);
        }
    }
    parts
}

/// Reduces a type's trees to [`TyInfo`].
fn ty_from_trees<T: AsTree>(trees: &[T]) -> TyInfo {
    let mut text = String::new();
    for t in trees {
        let t = t.as_tree();
        if !text.is_empty() {
            text.push(' ');
        }
        render_tree(t, &mut text);
    }
    // Base: last segment of the leading path, skipping refs/qualifiers.
    let mut base = String::new();
    let mut angle = 0i64;
    for t in trees {
        let t = t.as_tree();
        if t.is_punct("<") {
            angle += 1;
            continue;
        }
        if t.is_punct(">") {
            angle = (angle - 1).max(0);
            continue;
        }
        if angle > 0 {
            continue;
        }
        match t.ident() {
            Some("mut") | Some("dyn") | Some("impl") => continue,
            Some(name) => {
                base = name.to_string();
                // Stop at the first non-path continuation.
            }
            None => {
                if t.is_punct("&")
                    || t.is_punct("::")
                    || matches!(t.leaf().map(|l| &l.tok), Some(Tok::Lifetime(_)))
                {
                    continue;
                }
                break;
            }
        }
    }
    TyInfo { base, text }
}

/// Both `&Tree` and `&&Tree` slices feed [`ty_from_trees`].
trait AsTree {
    fn as_tree(&self) -> &Tree;
}

impl AsTree for Tree {
    fn as_tree(&self) -> &Tree {
        self
    }
}

impl AsTree for &Tree {
    fn as_tree(&self) -> &Tree {
        self
    }
}

fn render_tree(t: &Tree, out: &mut String) {
    match t {
        Tree::Leaf(tok) => match &tok.tok {
            Tok::Ident(s) | Tok::Num(s) => out.push_str(s),
            Tok::Lifetime(l) => {
                out.push('\'');
                out.push_str(l);
            }
            Tok::Str => out.push_str("\"..\""),
            Tok::Char => out.push_str("'..'"),
            Tok::Punct(p) => out.push_str(p),
        },
        Tree::Group(g) => {
            out.push(g.delim);
            for (i, c) in g.children.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                render_tree(c, out);
            }
            out.push(match g.delim {
                '(' => ')',
                '[' => ']',
                _ => '}',
            });
        }
    }
}

/// Parses a `{..}` group as a statement block.
pub fn parse_block(group: &Group) -> Block {
    let mut cur = Cursor {
        trees: &group.children,
        pos: 0,
    };
    let mut stmts = Vec::new();
    while !cur.at_end() {
        if cur.eat_punct(";") {
            continue;
        }
        let before = cur.pos;
        if let Some(stmt) = parse_stmt(&mut cur) {
            stmts.push(stmt);
        }
        if cur.pos == before {
            cur.bump(); // safety: always advance
        }
    }
    Block {
        stmts,
        span: group.open,
    }
}

fn parse_stmt(cur: &mut Cursor) -> Option<Stmt> {
    let cfg_test = eat_attrs(cur);
    let span = cur.span();
    let head = cur.peek().and_then(Tree::ident);
    if head == Some("let") {
        cur.bump();
        // Pattern: up to top-level `:` or `=` (fused `==` can't appear
        // in a pattern position, so a bare `=` ends it).
        let pat_trees = collect_until(cur, &[], &[":", "=", ";"]);
        let name = simple_pat_name(&pat_trees);
        let mut ty = None;
        if cur.eat_punct(":") {
            let ty_trees = collect_until(cur, &[], &["=", ";"]);
            ty = Some(ty_from_trees(&ty_trees));
        }
        let mut init = None;
        if cur.eat_punct("=") {
            init = Some(parse_expr(cur, false));
            // let-else: `let P = e else { .. };`
            if cur.eat_ident("else") {
                cur.bump(); // the else block
            }
        }
        cur.eat_punct(";");
        return Some(Stmt::Let {
            name,
            ty,
            init,
            span,
        });
    }
    if let Some(kw) = head {
        if ITEM_KEYWORDS.contains(&kw) || kw == "pub" {
            // Don't treat expression keywords as items.
            if kw != "use" || cur.peek_at(1).and_then(Tree::ident).is_some() {
                if let Some(mut item) = parse_item(cur) {
                    item.cfg_test |= cfg_test;
                    return Some(Stmt::Item(item));
                }
            }
        }
    }
    let expr = parse_expr(cur, false);
    let has_semi = cur.eat_punct(";");
    Some(Stmt::Expr { expr, has_semi })
}

/// Name of a simple `let` pattern (`x`, `mut x`); `None` otherwise.
fn simple_pat_name(trees: &[&Tree]) -> Option<String> {
    let names: Vec<&str> = trees.iter().filter_map(|t| t.ident()).collect();
    match names.as_slice() {
        [name] => Some((*name).to_string()),
        ["mut", name] => Some((*name).to_string()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Expression parsing (Pratt over token trees).
// ---------------------------------------------------------------------

/// Parses one expression. `no_struct` suppresses struct-literal
/// interpretation of `Path { .. }` (scrutinee/condition position).
fn parse_expr(cur: &mut Cursor, no_struct: bool) -> Expr {
    parse_bp(cur, 0, no_struct)
}

/// Operator → (left bp, right bp). Higher binds tighter.
fn infix_bp(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => (2, 1),
        ".." | "..=" => (3, 4),
        "||" => (5, 6),
        "&&" => (7, 8),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (9, 10),
        "|" => (11, 12),
        "^" => (13, 14),
        "&" => (15, 16),
        "<<" | ">>" => (17, 18),
        "+" | "-" => (19, 20),
        "*" | "/" | "%" => (21, 22),
        _ => return None,
    })
}

/// Reads the operator at the cursor, re-joining adjacent single-char
/// puncts (`<`+`<` → `<<`, `+`+`=` → `+=`) by span adjacency.
fn peek_op(cur: &Cursor) -> Option<(String, usize)> {
    let first = cur.peek()?.leaf()?;
    let Tok::Punct(a) = &first.tok else {
        return None;
    };
    let joined = |b: &str, n: usize| -> Option<(String, usize)> {
        let next = cur.peek_at(n - 1)?.leaf()?;
        let Tok::Punct(p) = &next.tok else {
            return None;
        };
        if p == b && next.span.line == first.span.line && next.span.col == first.span.col + (n - 1)
        {
            return Some((format!("{a}{}", b), n));
        }
        None
    };
    match a.as_str() {
        "<" | ">" => {
            // `<<` `>>` `<=` `>=` (and `<<=`/`>>=` as shift-assign).
            if let Some((op, n)) = joined(a.as_str(), 2) {
                if let Some(eq) = cur.peek_at(2).and_then(Tree::leaf) {
                    if eq.tok.is_punct("=")
                        && eq.span.line == first.span.line
                        && eq.span.col == first.span.col + 2
                    {
                        return Some((format!("{op}="), 3));
                    }
                }
                return Some((op, n));
            }
            if let Some(hit) = joined("=", 2) {
                return Some(hit);
            }
            Some((a.clone(), 1))
        }
        "+" | "-" | "*" | "/" | "%" | "^" => {
            if let Some(hit) = joined("=", 2) {
                return Some(hit);
            }
            Some((a.clone(), 1))
        }
        "&" | "|" => {
            if let Some(hit) = joined("=", 2) {
                return Some(hit);
            }
            Some((a.clone(), 1))
        }
        _ => Some((a.clone(), 1)),
    }
}

fn parse_bp(cur: &mut Cursor, min_bp: u8, no_struct: bool) -> Expr {
    let mut lhs = parse_prefix(cur, no_struct);
    loop {
        lhs = parse_postfix(cur, lhs, no_struct);
        let Some((op, ntrees)) = peek_op(cur) else {
            break;
        };
        let Some((lbp, rbp)) = infix_bp(&op) else {
            break;
        };
        if lbp < min_bp {
            break;
        }
        for _ in 0..ntrees {
            cur.bump();
        }
        if op == ".." || op == "..=" {
            // Open-ended `lo..`: stop if no expression follows.
            let hi = if range_continues(cur) {
                Some(Box::new(parse_bp(cur, rbp, no_struct)))
            } else {
                None
            };
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                },
                span,
            };
            continue;
        }
        let rhs = parse_bp(cur, rbp, no_struct);
        let span = lhs.span;
        let kind = if op == "=" || op.ends_with('=') && infix_bp(&op).is_some_and(|(l, _)| l == 2) {
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        } else {
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        };
        lhs = Expr { kind, span };
    }
    lhs
}

/// Does an expression follow (for open ranges)?
fn range_continues(cur: &Cursor) -> bool {
    match cur.peek() {
        None => false,
        Some(t) => {
            if let Some(tok) = t.leaf() {
                match &tok.tok {
                    Tok::Punct(p) => matches!(p.as_str(), "(" | "-" | "!" | "*" | "&"),
                    Tok::Ident(name) => !matches!(name.as_str(), "else"),
                    _ => true,
                }
            } else {
                // `{` body of `for x in 0.. {` is handled by groups:
                // a brace group does not continue a range.
                t.group_of('{').is_none()
            }
        }
    }
}

fn parse_prefix(cur: &mut Cursor, no_struct: bool) -> Expr {
    let span = cur.span();
    // Leading `..`/`..=` range.
    if cur
        .peek()
        .is_some_and(|t| t.is_punct("..") || t.is_punct("..="))
    {
        cur.bump();
        let hi = if range_continues(cur) {
            Some(Box::new(parse_bp(cur, 4, no_struct)))
        } else {
            None
        };
        return Expr {
            kind: ExprKind::Range { lo: None, hi },
            span,
        };
    }
    for op in ["-", "!", "*"] {
        if cur.peek().is_some_and(|t| t.is_punct(op)) {
            cur.bump();
            let operand = parse_bp(cur, 23, no_struct);
            return Expr {
                kind: ExprKind::Unary {
                    op: op.to_string(),
                    operand: Box::new(operand),
                },
                span,
            };
        }
    }
    if cur
        .peek()
        .is_some_and(|t| t.is_punct("&") || t.is_punct("&&"))
    {
        cur.bump();
        cur.eat_ident("mut");
        let operand = parse_bp(cur, 23, no_struct);
        return Expr {
            kind: ExprKind::Unary {
                op: "&".to_string(),
                operand: Box::new(operand),
            },
            span,
        };
    }
    // Closures: `|..| body`, `||  body`, `move |..| body`.
    let moved = cur.peek().is_some_and(|t| t.ident() == Some("move"))
        && cur
            .peek_at(1)
            .is_some_and(|t| t.is_punct("|") || t.is_punct("||"));
    if moved {
        cur.bump();
    }
    if cur.peek().is_some_and(|t| t.is_punct("||")) {
        cur.bump();
        if cur.eat_punct("->") {
            drop(collect_until(cur, &[], &["{"]));
        }
        let body = parse_bp(cur, 3, false);
        return Expr {
            kind: ExprKind::Closure {
                params: Vec::new(),
                body: Box::new(body),
            },
            span,
        };
    }
    if cur.peek().is_some_and(|t| t.is_punct("|")) {
        cur.bump();
        let param_trees = collect_until(cur, &["|"], &[]);
        let params = split_top_refs(&param_trees, ",")
            .into_iter()
            .filter_map(|p| simple_pat_name(&p).or_else(|| pat_first_ident(&p)))
            .collect();
        if cur.eat_punct("->") {
            drop(collect_until(cur, &[], &["{"]));
        }
        let body = parse_bp(cur, 3, false);
        return Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            span,
        };
    }
    parse_atom(cur, no_struct)
}

fn pat_first_ident(trees: &[&Tree]) -> Option<String> {
    trees
        .iter()
        .filter_map(|t| t.ident())
        .find(|n| !matches!(*n, "mut" | "ref"))
        .map(str::to_string)
}

fn split_top_refs<'a>(trees: &[&'a Tree], sep: &str) -> Vec<Vec<&'a Tree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i64;
    for t in trees {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct(sep) {
            parts.push(Vec::new());
            continue;
        }
        if let Some(last) = parts.last_mut() {
            last.push(*t);
        }
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_atom(cur: &mut Cursor, no_struct: bool) -> Expr {
    let span = cur.span();
    let Some(tree) = cur.peek() else {
        return Expr {
            kind: ExprKind::Unknown(Vec::new()),
            span,
        };
    };
    match tree {
        Tree::Group(g) => {
            cur.bump();
            match g.delim {
                '(' => {
                    let parts = split_top(&g.children, ",");
                    let exprs: Vec<Expr> = parts
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| parse_subtrees(&p))
                        .collect();
                    match exprs.len() {
                        1 if !ends_with_comma(&g.children) => {
                            let mut it = exprs;
                            match it.pop() {
                                Some(e) => e,
                                None => Expr {
                                    kind: ExprKind::Tuple(Vec::new()),
                                    span,
                                },
                            }
                        }
                        _ => Expr {
                            kind: ExprKind::Tuple(exprs),
                            span,
                        },
                    }
                }
                '[' => {
                    let parts = split_top(&g.children, ",");
                    let exprs = parts
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| parse_subtrees(&p))
                        .collect();
                    Expr {
                        kind: ExprKind::Array(exprs),
                        span,
                    }
                }
                _ => Expr {
                    kind: ExprKind::Block(parse_block(g)),
                    span,
                },
            }
        }
        Tree::Leaf(tok) => match &tok.tok {
            Tok::Num(n) => {
                cur.bump();
                Expr {
                    kind: ExprKind::Lit(n.clone()),
                    span,
                }
            }
            Tok::Str => {
                cur.bump();
                Expr {
                    kind: ExprKind::Lit("\"\"".to_string()),
                    span,
                }
            }
            Tok::Char => {
                cur.bump();
                Expr {
                    kind: ExprKind::Lit("''".to_string()),
                    span,
                }
            }
            Tok::Lifetime(_) => {
                // Labelled block/loop: `'l: loop { .. }`.
                cur.bump();
                cur.eat_punct(":");
                parse_atom(cur, no_struct)
            }
            Tok::Ident(name) => parse_ident_atom(cur, name.clone(), span, no_struct),
            Tok::Punct(_) => {
                // Unparseable start: consume one tree, harvest it.
                let t = cur.bump();
                Expr {
                    kind: ExprKind::Unknown(t.map(harvest_tree).unwrap_or_default()),
                    span,
                }
            }
        },
    }
}

fn ends_with_comma(children: &[Tree]) -> bool {
    children.last().is_some_and(|t| t.is_punct(","))
}

fn parse_subtrees(trees: &[&Tree]) -> Expr {
    // Re-own the slice into a cursor-compatible form.
    let owned: Vec<Tree> = trees.iter().map(|t| (*t).clone()).collect();
    let mut cur = Cursor {
        trees: &owned,
        pos: 0,
    };
    let expr = parse_expr(&mut cur, false);
    if cur.at_end() {
        expr
    } else {
        // Trailing unparsed trees: keep both sides visible.
        let mut harvested = vec![expr];
        while let Some(t) = cur.bump() {
            harvested.extend(harvest_tree(t));
        }
        Expr {
            kind: ExprKind::Unknown(harvested),
            span: owned.first().map_or(Span::NONE, Tree::span),
        }
    }
}

fn parse_ident_atom(cur: &mut Cursor, name: String, span: Span, no_struct: bool) -> Expr {
    match name.as_str() {
        "if" => {
            cur.bump();
            let cond = if cur.eat_ident("let") {
                let _pat = collect_until(cur, &["="], &["{"]);
                parse_bp(cur, 3, true)
            } else {
                parse_bp(cur, 3, true)
            };
            let then = match cur.peek().and_then(|t| t.group_of('{')) {
                Some(g) => {
                    cur.bump();
                    parse_block(g)
                }
                None => Block {
                    stmts: Vec::new(),
                    span,
                },
            };
            let els = if cur.eat_ident("else") {
                Some(Box::new(parse_atom(cur, no_struct)))
            } else {
                None
            };
            Expr {
                kind: ExprKind::If {
                    cond: Box::new(cond),
                    then,
                    els,
                },
                span,
            }
        }
        "match" => {
            cur.bump();
            let scrutinee = parse_bp(cur, 3, true);
            let arms = match cur.peek().and_then(|t| t.group_of('{')) {
                Some(g) => {
                    cur.bump();
                    parse_arms(g)
                }
                None => Vec::new(),
            };
            Expr {
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                },
                span,
            }
        }
        "while" => {
            cur.bump();
            let cond = if cur.eat_ident("let") {
                let _pat = collect_until(cur, &["="], &["{"]);
                parse_bp(cur, 3, true)
            } else {
                parse_bp(cur, 3, true)
            };
            let body = eat_block(cur, span);
            Expr {
                kind: ExprKind::While {
                    cond: Box::new(cond),
                    body,
                },
                span,
            }
        }
        "for" => {
            cur.bump();
            let pat_trees = collect_until(cur, &[], &["{"]);
            // Pattern runs until the top-level `in`.
            let in_pos = pat_trees.iter().position(|t| t.ident() == Some("in"));
            let (pat, iter) = match in_pos {
                Some(i) => {
                    let pat = simple_pat_name(&pat_trees[..i]);
                    (pat, parse_subtrees(&pat_trees[i + 1..]))
                }
                None => (
                    None,
                    Expr {
                        kind: ExprKind::Unknown(
                            pat_trees.iter().flat_map(|t| harvest_tree(t)).collect(),
                        ),
                        span,
                    },
                ),
            };
            let body = eat_block(cur, span);
            Expr {
                kind: ExprKind::For {
                    pat,
                    iter: Box::new(iter),
                    body,
                },
                span,
            }
        }
        "loop" => {
            cur.bump();
            let body = eat_block(cur, span);
            Expr {
                kind: ExprKind::Loop { body },
                span,
            }
        }
        "unsafe" => {
            cur.bump();
            let body = eat_block(cur, span);
            Expr {
                kind: ExprKind::Block(body),
                span,
            }
        }
        "return" => {
            cur.bump();
            let value = if expr_follows(cur) {
                Some(Box::new(parse_bp(cur, 3, no_struct)))
            } else {
                None
            };
            Expr {
                kind: ExprKind::Return(value),
                span,
            }
        }
        "break" => {
            cur.bump();
            let value = if expr_follows(cur) {
                Some(Box::new(parse_bp(cur, 3, no_struct)))
            } else {
                None
            };
            Expr {
                kind: ExprKind::Break(value),
                span,
            }
        }
        "continue" => {
            cur.bump();
            Expr {
                kind: ExprKind::Break(None),
                span,
            }
        }
        "true" | "false" => {
            cur.bump();
            Expr {
                kind: ExprKind::Lit(name),
                span,
            }
        }
        _ => {
            // Path (with optional turbofish), then macro / struct-lit /
            // call resolution in postfix position.
            let mut segs = vec![name];
            cur.bump();
            loop {
                if cur.peek().is_some_and(|t| t.is_punct("::")) {
                    match cur.peek_at(1) {
                        Some(t2) if t2.is_punct("<") => {
                            cur.bump();
                            cur.skip_angles();
                        }
                        Some(t2) if t2.ident().is_some() => {
                            cur.bump();
                            if let Some(seg) = cur.bump().and_then(Tree::ident) {
                                segs.push(seg.to_string());
                            }
                        }
                        _ => break,
                    }
                } else {
                    break;
                }
            }
            // Macro call: `path!(..)` / `path![..]` / `path!{..}`.
            if cur.peek().is_some_and(|t| t.is_punct("!")) {
                if let Some(g) = cur.peek_at(1).and_then(Tree::group) {
                    cur.bump();
                    cur.bump();
                    let args = split_top(&g.children, ",")
                        .into_iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| parse_subtrees(&p))
                        .collect();
                    return Expr {
                        kind: ExprKind::Macro { path: segs, args },
                        span,
                    };
                }
            }
            // Struct literal.
            if !no_struct {
                if let Some(g) = cur.peek().and_then(|t| t.group_of('{')) {
                    if looks_like_struct_lit(g) {
                        cur.bump();
                        let fields = parse_struct_lit_fields(g);
                        return Expr {
                            kind: ExprKind::StructLit { path: segs, fields },
                            span,
                        };
                    }
                }
            }
            Expr {
                kind: ExprKind::Path(segs),
                span,
            }
        }
    }
}

fn eat_block(cur: &mut Cursor, fallback: Span) -> Block {
    match cur.peek().and_then(|t| t.group_of('{')) {
        Some(g) => {
            cur.bump();
            parse_block(g)
        }
        None => Block {
            stmts: Vec::new(),
            span: fallback,
        },
    }
}

fn expr_follows(cur: &Cursor) -> bool {
    match cur.peek() {
        None => false,
        Some(t) => !(t.is_punct(";") || t.is_punct(",")),
    }
}

/// `Path { .. }` is a struct literal when the body looks like field
/// initialisers (`ident:`, shorthand `ident,`, `..base`) — not like
/// statements.
fn looks_like_struct_lit(g: &Group) -> bool {
    if g.children.is_empty() {
        return true;
    }
    let parts = split_top(&g.children, ",");
    parts
        .iter()
        .filter(|p| !p.is_empty())
        .all(|part| match part.as_slice() {
            [one] => one.ident().is_some() || one.is_punct(".."),
            [first, second, ..] => {
                (first.ident().is_some() && second.is_punct(":")) || first.is_punct("..")
            }
            [] => true,
        })
}

fn parse_struct_lit_fields(g: &Group) -> Vec<(String, Expr)> {
    split_top(&g.children, ",")
        .into_iter()
        .filter(|p| !p.is_empty())
        .filter_map(|part| {
            if part.first().is_some_and(|t| t.is_punct("..")) {
                // `..base`: keep the base expr under an empty name.
                return Some((String::new(), parse_subtrees(&part[1..])));
            }
            let name = part.first().and_then(|t| t.ident())?.to_string();
            if part.get(1).is_some_and(|t| t.is_punct(":")) {
                Some((name, parse_subtrees(&part[2..])))
            } else {
                // Shorthand `x`.
                let span = part.first().map_or(Span::NONE, |t| t.span());
                Some((
                    name.clone(),
                    Expr {
                        kind: ExprKind::Path(vec![name]),
                        span,
                    },
                ))
            }
        })
        .collect()
}

fn parse_arms(g: &Group) -> Vec<Arm> {
    let mut cur = Cursor {
        trees: &g.children,
        pos: 0,
    };
    let mut arms = Vec::new();
    while !cur.at_end() {
        eat_attrs(&mut cur);
        if cur.eat_punct(",") {
            continue;
        }
        let span = cur.span();
        let pat_trees = collect_until(&mut cur, &["=>"], &[]);
        if pat_trees.is_empty() && cur.at_end() {
            break;
        }
        // Split off a guard: top-level `if` in the pattern region.
        let guard_pos = pat_trees.iter().position(|t| t.ident() == Some("if"));
        let (pat, guard) = match guard_pos {
            Some(i) => (&pat_trees[..i], Some(parse_subtrees(&pat_trees[i + 1..]))),
            None => (&pat_trees[..], None),
        };
        let is_wild = matches!(pat, [one] if one.ident() == Some("_"));
        let pat_paths = collect_pat_paths(pat);
        let before = cur.pos;
        let body = parse_expr(&mut cur, false);
        if cur.pos == before {
            cur.bump();
        }
        cur.eat_punct(",");
        arms.push(Arm {
            is_wild,
            pat_paths,
            guard,
            body,
            span,
        });
    }
    arms
}

/// Collects `A::B`-style paths appearing anywhere in a pattern.
fn collect_pat_paths(trees: &[&Tree]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    collect_paths_rec(trees.iter().map(|t| *t), &mut out);
    out
}

fn collect_paths_rec<'a>(trees: impl Iterator<Item = &'a Tree>, out: &mut Vec<Vec<String>>) {
    let trees: Vec<&Tree> = trees.collect();
    let mut i = 0;
    while i < trees.len() {
        if let Some(name) = trees[i].ident() {
            let mut segs = vec![name.to_string()];
            let mut j = i + 1;
            while j + 1 < trees.len() && trees[j].is_punct("::") && trees[j + 1].ident().is_some() {
                if let Some(seg) = trees[j + 1].ident() {
                    segs.push(seg.to_string());
                }
                j += 2;
            }
            if segs.len() > 1 {
                out.push(segs);
            }
            i = j;
        } else {
            if let Some(g) = trees[i].group() {
                collect_paths_rec(g.children.iter(), out);
            }
            i += 1;
        }
    }
}

fn parse_postfix(cur: &mut Cursor, mut lhs: Expr, _no_struct: bool) -> Expr {
    loop {
        // `.` member access / method call / await.
        if cur.peek().is_some_and(|t| t.is_punct(".")) {
            let Some(next) = cur.peek_at(1) else {
                cur.bump();
                break;
            };
            match next.leaf().map(|l| &l.tok) {
                Some(Tok::Ident(name)) => {
                    let name = name.clone();
                    cur.bump();
                    cur.bump();
                    // Optional turbofish.
                    if cur.peek().is_some_and(|t| t.is_punct("::")) {
                        if cur.peek_at(1).is_some_and(|t| t.is_punct("<")) {
                            cur.bump();
                            cur.skip_angles();
                        }
                    }
                    if let Some(g) = cur.peek().and_then(|t| t.group_of('(')) {
                        cur.bump();
                        let args = split_top(&g.children, ",")
                            .into_iter()
                            .filter(|p| !p.is_empty())
                            .map(|p| parse_subtrees(&p))
                            .collect();
                        let span = lhs.span;
                        lhs = Expr {
                            kind: ExprKind::MethodCall {
                                recv: Box::new(lhs),
                                method: name,
                                args,
                            },
                            span,
                        };
                    } else {
                        let span = lhs.span;
                        lhs = Expr {
                            kind: ExprKind::Field {
                                base: Box::new(lhs),
                                name,
                            },
                            span,
                        };
                    }
                    continue;
                }
                Some(Tok::Num(n)) => {
                    let name = n.clone();
                    cur.bump();
                    cur.bump();
                    let span = lhs.span;
                    lhs = Expr {
                        kind: ExprKind::Field {
                            base: Box::new(lhs),
                            name,
                        },
                        span,
                    };
                    continue;
                }
                _ => break,
            }
        }
        // `?`
        if cur.peek().is_some_and(|t| t.is_punct("?")) {
            cur.bump();
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Try(Box::new(lhs)),
                span,
            };
            continue;
        }
        // Call on a non-path atom chain: `f()()`, `(x.f)()`.
        if matches!(
            lhs.kind,
            ExprKind::Path(_)
                | ExprKind::Call { .. }
                | ExprKind::MethodCall { .. }
                | ExprKind::Field { .. }
                | ExprKind::Index { .. }
                | ExprKind::Try(_)
        ) {
            if let Some(g) = cur.peek().and_then(|t| t.group_of('(')) {
                cur.bump();
                let args = split_top(&g.children, ",")
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| parse_subtrees(&p))
                    .collect();
                let span = lhs.span;
                lhs = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(lhs),
                        args,
                    },
                    span,
                };
                continue;
            }
            if let Some(g) = cur.peek().and_then(|t| t.group_of('[')) {
                cur.bump();
                let index = parse_subtrees(&g.children.iter().collect::<Vec<_>>());
                let span = lhs.span;
                lhs = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                    },
                    span,
                };
                continue;
            }
        }
        // `as Type`.
        if cur.peek().is_some_and(|t| t.ident() == Some("as")) {
            cur.bump();
            let ty_trees = collect_cast_type(cur);
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Cast {
                    operand: Box::new(lhs),
                    ty: ty_from_trees(&ty_trees),
                },
                span,
            };
            continue;
        }
        // `.await` handled as Field("await") above — fine.
        break;
    }
    lhs
}

/// Collects the type after `as`: a path with optional generics,
/// refs, or pointer sigils. Stops at any operator/terminator.
fn collect_cast_type<'a>(cur: &mut Cursor<'a>) -> Vec<&'a Tree> {
    let mut out = Vec::new();
    // Leading sigils.
    while let Some(t) = cur.peek() {
        if t.is_punct("*") || t.is_punct("&") {
            out.push(t);
            cur.bump();
            cur.eat_ident("mut");
            cur.eat_ident("const");
        } else {
            break;
        }
    }
    // Path segments.
    loop {
        match cur.peek() {
            Some(t) if t.ident().is_some() => {
                out.push(t);
                cur.bump();
            }
            _ => break,
        }
        if let Some(t) = cur.peek() {
            if t.is_punct("::") {
                out.push(t);
                cur.bump();
                continue;
            }
        }
        if cur.peek().is_some_and(|t| t.is_punct("<")) {
            let start = cur.pos;
            cur.skip_angles();
            out.extend(&cur.trees[start..cur.pos]);
        }
        break;
    }
    out
}

/// Harvests conservative sub-expressions (paths and calls) from an
/// arbitrary token tree, for [`ExprKind::Unknown`].
pub fn harvest_tree(tree: &Tree) -> Vec<Expr> {
    let mut out = Vec::new();
    harvest_rec(std::slice::from_ref(tree), &mut out);
    out
}

fn harvest_rec(trees: &[Tree], out: &mut Vec<Expr>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(name) = trees[i].ident() {
            let span = trees[i].span();
            let mut segs = vec![name.to_string()];
            let mut j = i + 1;
            while j + 1 < trees.len() && trees[j].is_punct("::") && trees[j + 1].ident().is_some() {
                if let Some(seg) = trees[j + 1].ident() {
                    segs.push(seg.to_string());
                }
                j += 2;
            }
            out.push(Expr {
                kind: ExprKind::Path(segs),
                span,
            });
            i = j;
        } else {
            if let Some(g) = trees[i].group() {
                harvest_rec(&g.children, out);
            }
            i += 1;
        }
    }
}

fn parse_use(cur: &mut Cursor) -> Vec<UseEntry> {
    let trees = collect_until(cur, &[";"], &[]);
    let mut entries = Vec::new();
    expand_use(&trees, &[], &mut entries);
    entries
}

/// Expands a use tree into flat `(path, alias)` entries.
fn expand_use(trees: &[&Tree], prefix: &[String], entries: &mut Vec<UseEntry>) {
    let mut path = prefix.to_vec();
    let mut i = 0;
    while i < trees.len() {
        let t = trees[i];
        if let Some(name) = t.ident() {
            if name == "as" {
                // `.. as alias`
                if let Some(alias) = trees.get(i + 1).and_then(|t| t.ident()) {
                    entries.push(UseEntry {
                        path: path.clone(),
                        alias: alias.to_string(),
                    });
                    return;
                }
                i += 1;
            } else if name == "self" && !path.is_empty() {
                // `{self, ..}`: binds the prefix's last segment.
                if let Some(last) = path.last() {
                    entries.push(UseEntry {
                        path: path.clone(),
                        alias: last.clone(),
                    });
                }
                return;
            } else {
                path.push(name.to_string());
                i += 1;
            }
        } else if t.is_punct("::") {
            i += 1;
        } else if t.is_punct("*") {
            // Glob: record with empty alias (consumers treat globs
            // conservatively).
            entries.push(UseEntry {
                path: path.clone(),
                alias: String::new(),
            });
            return;
        } else if let Some(g) = t.group_of('{') {
            for part in split_top(&g.children, ",") {
                if part.is_empty() {
                    continue;
                }
                expand_use(&part, &path, entries);
            }
            return;
        } else {
            i += 1;
        }
    }
    if let Some(last) = path.last() {
        if path.len() > prefix.len() {
            entries.push(UseEntry {
                path: path.clone(),
                alias: last.clone(),
            });
        }
    }
}

/// Walks every expression in a block, depth-first.
pub fn visit_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    visit_expr(e, f);
                }
            }
            Stmt::Expr { expr, .. } => visit_expr(expr, f),
            Stmt::Item(item) => {
                if let ItemKind::Fn(fd) = &item.kind {
                    if let Some(b) = &fd.body {
                        visit_exprs(b, f);
                    }
                }
            }
        }
    }
}

/// Walks one expression tree, depth-first, calling `f` on every node.
pub fn visit_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Path(_) | ExprKind::Lit(_) => {}
        ExprKind::Call { callee, args } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            visit_expr(recv, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Field { base, .. } => visit_expr(base, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
            visit_expr(operand, f);
        }
        ExprKind::Macro { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            visit_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    visit_expr(g, f);
                }
                visit_expr(&arm.body, f);
            }
        }
        ExprKind::If { cond, then, els } => {
            visit_expr(cond, f);
            visit_exprs(then, f);
            if let Some(e) = els {
                visit_expr(e, f);
            }
        }
        ExprKind::While { cond, body } => {
            visit_expr(cond, f);
            visit_exprs(body, f);
        }
        ExprKind::For { iter, body, .. } => {
            visit_expr(iter, f);
            visit_exprs(body, f);
        }
        ExprKind::Loop { body } | ExprKind::Block(body) => visit_exprs(body, f),
        ExprKind::Closure { body, .. } => visit_expr(body, f),
        ExprKind::Try(e) => visit_expr(e, f),
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) | ExprKind::Unknown(es) => {
            for e in es {
                visit_expr(e, f);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, e) in fields {
                visit_expr(e, f);
            }
        }
        ExprKind::Return(e) | ExprKind::Break(e) => {
            if let Some(e) = e {
                visit_expr(e, f);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                visit_expr(e, f);
            }
            if let Some(e) = hi {
                visit_expr(e, f);
            }
        }
    }
}

/// Walks every fn item (with its enclosing-module test flag OR-ed in),
/// calling `f(fn, is_pub, cfg_test, span)`.
pub fn visit_fns<'a>(
    items: &'a [Item],
    in_test: bool,
    f: &mut impl FnMut(&'a FnDef, bool, bool, Span),
) {
    for item in items {
        let test = in_test || item.cfg_test;
        match &item.kind {
            ItemKind::Fn(fd) => f(fd, item.is_pub, test, item.span),
            ItemKind::Mod { items, .. }
            | ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. } => visit_fns(items, test, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;
    use crate::parser::parse_trees;

    fn file(src: &str) -> File {
        parse_file(&parse_trees(&clean_source(src)))
    }

    fn first_fn(f: &File) -> &FnDef {
        for item in &f.items {
            if let ItemKind::Fn(fd) = &item.kind {
                return fd;
            }
        }
        unreachable!("no fn in test fixture")
    }

    #[test]
    fn fn_signature_parses() {
        let f = file("pub fn f(a_ns: u64, buf: &[u8]) -> Nanos { a_ns }");
        let fd = first_fn(&f);
        assert_eq!(fd.name, "f");
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[0].name, "a_ns");
        assert_eq!(fd.params[0].ty.base, "u64");
        assert_eq!(fd.ret.as_ref().map(|t| t.base.as_str()), Some("Nanos"));
        assert!(fd.body.is_some());
    }

    #[test]
    fn generics_in_signature_do_not_confuse() {
        let f = file("fn g<T: Ord, const N: usize>(xs: Vec<Vec<T>>) -> Option<Vec<T>> { None }");
        let fd = first_fn(&f);
        assert_eq!(fd.name, "g");
        assert_eq!(fd.params.len(), 1);
        assert_eq!(fd.params[0].ty.base, "Vec");
        assert_eq!(fd.ret.as_ref().map(|t| t.base.as_str()), Some("Option"));
    }

    #[test]
    fn use_trees_flatten() {
        let f = file("use std::collections::{HashMap, BTreeMap as Sorted};\nuse a::b::c;\n");
        let mut entries = Vec::new();
        for item in &f.items {
            if let ItemKind::Use(es) = &item.kind {
                entries.extend(es.iter().cloned());
            }
        }
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].alias, "HashMap");
        assert_eq!(entries[0].path, vec!["std", "collections", "HashMap"]);
        assert_eq!(entries[1].alias, "Sorted");
        assert_eq!(entries[1].path, vec!["std", "collections", "BTreeMap"]);
        assert_eq!(entries[2].alias, "c");
    }

    #[test]
    fn method_chains_and_casts() {
        let f = file("fn f(x: u64) -> u64 { x.wrapping_mul(3).min(10) as u64 }");
        let fd = first_fn(&f);
        let body = fd
            .body
            .as_ref()
            .map(|b| &b.stmts)
            .into_iter()
            .flatten()
            .next();
        let Some(Stmt::Expr { expr, has_semi }) = body else {
            unreachable!("trailing expr expected")
        };
        assert!(!has_semi);
        let ExprKind::Cast { operand, ty } = &expr.kind else {
            unreachable!("cast expected, got {:?}", expr.kind)
        };
        assert_eq!(ty.base, "u64");
        let ExprKind::MethodCall { method, .. } = &operand.kind else {
            unreachable!("method chain expected")
        };
        assert_eq!(method, "min");
    }

    #[test]
    fn match_arms_with_guards_and_paths() {
        let f = file(
            "fn f(k: IoOp, n: u8) -> u32 {\n match (k, n) {\n  (IoOp::Read, x) if x > 3 => 1,\n  (IoOp::Write, _) => 2,\n  _ => 3,\n }\n}\n",
        );
        let fd = first_fn(&f);
        let Some(Stmt::Expr { expr, .. }) = fd.body.as_ref().and_then(|b| b.stmts.first()) else {
            unreachable!("match stmt expected")
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            unreachable!("match expected")
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[0].guard.is_some());
        assert!(!arms[0].is_wild);
        assert_eq!(
            arms[0].pat_paths,
            vec![vec!["IoOp".to_string(), "Read".to_string()]]
        );
        assert!(arms[2].is_wild);
        assert_eq!(arms[2].span.line, 5);
    }

    #[test]
    fn shift_vs_generics() {
        let f = file("fn f(x: u64) -> u64 { let m: Vec<Vec<u8>> = Vec::new(); x << 2 }");
        let fd = first_fn(&f);
        let stmts = fd
            .body
            .as_ref()
            .map(|b| &b.stmts)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>();
        assert_eq!(stmts.len(), 2);
        let Stmt::Let { ty, .. } = stmts[0] else {
            unreachable!("let expected")
        };
        assert_eq!(ty.as_ref().map(|t| t.base.as_str()), Some("Vec"));
        let Stmt::Expr { expr, .. } = stmts[1] else {
            unreachable!("shift expr expected")
        };
        let ExprKind::Binary { op, .. } = &expr.kind else {
            unreachable!("binary expected, got {:?}", expr.kind)
        };
        assert_eq!(op, "<<");
    }

    #[test]
    fn closures_and_struct_literals() {
        let f =
            file("fn f() -> Foo { let g = |a, b| a + b; let _x = g(1, 2); Foo { bar: 1, baz } }");
        let fd = first_fn(&f);
        let stmts: Vec<_> = fd
            .body
            .as_ref()
            .map(|b| &b.stmts)
            .into_iter()
            .flatten()
            .collect();
        let Stmt::Let { init: Some(e), .. } = stmts[0] else {
            unreachable!("closure let")
        };
        let ExprKind::Closure { params, .. } = &e.kind else {
            unreachable!("closure expected, got {:?}", e.kind)
        };
        assert_eq!(params, &["a".to_string(), "b".to_string()]);
        let Stmt::Expr { expr, .. } = stmts[2] else {
            unreachable!("struct lit")
        };
        let ExprKind::StructLit { path, fields } = &expr.kind else {
            unreachable!("struct literal expected, got {:?}", expr.kind)
        };
        assert_eq!(path, &["Foo".to_string()]);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].0, "baz");
    }

    #[test]
    fn impl_blocks_and_nested_mods() {
        let f = file(
            "mod inner {\n  pub struct S { pub t_ns: u64 }\n  impl S {\n    pub fn t(&self) -> u64 { self.t_ns }\n  }\n}\n",
        );
        let ItemKind::Mod { items, .. } = &f.items[0].kind else {
            unreachable!("mod expected")
        };
        let ItemKind::Struct { name, fields } = &items[0].kind else {
            unreachable!("struct expected")
        };
        assert_eq!(name, "S");
        assert_eq!(fields[0].name, "t_ns");
        let ItemKind::Impl { self_ty, items } = &items[1].kind else {
            unreachable!("impl expected")
        };
        assert_eq!(self_ty, "S");
        let ItemKind::Fn(fd) = &items[0].kind else {
            unreachable!("method expected")
        };
        assert_eq!(fd.params[0].name, "self");
    }

    #[test]
    fn cfg_test_items_are_flagged() {
        let f = file("#[cfg(test)]\nmod tests { fn t() {} }\nfn prod() {}\n");
        assert!(f.items[0].cfg_test);
        assert!(!f.items[1].cfg_test);
    }

    #[test]
    fn macro_bodies_yield_args() {
        let f = file("fn f(x: u64) { assert_eq!(x + 1, compute(x), \"mismatch\"); }");
        let fd = first_fn(&f);
        let Some(Stmt::Expr { expr, .. }) = fd.body.as_ref().and_then(|b| b.stmts.first()) else {
            unreachable!("macro stmt")
        };
        let ExprKind::Macro { path, args } = &expr.kind else {
            unreachable!("macro expected, got {:?}", expr.kind)
        };
        assert_eq!(path, &["assert_eq".to_string()]);
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn unknown_constructs_harvest_paths() {
        // A weird construct the grammar doesn't model (half-open
        // pattern binding in expression position) must still surface
        // the paths it mentions.
        let f = file("fn f() { let q = yield_thing spooky::path(arg); }");
        let fd = first_fn(&f);
        let mut paths = Vec::new();
        if let Some(b) = &fd.body {
            visit_exprs(b, &mut |e| {
                if let ExprKind::Path(p) = &e.kind {
                    paths.push(p.join("::"));
                }
            });
        }
        assert!(paths
            .iter()
            .any(|p| p.contains("spooky::path") || p == "arg"));
    }

    #[test]
    fn let_else_parses() {
        let f = file("fn f(v: Option<u32>) -> u32 { let Some(x) = v else { return 0; }; x }");
        let fd = first_fn(&f);
        assert!(fd.body.as_ref().is_some_and(|b| b.stmts.len() == 2));
    }

    #[test]
    fn if_let_and_while_let() {
        let f = file(
            "fn f(v: Option<u32>) {\n  if let Some(x) = v { g(x); }\n  while let Some(y) = h() { i(y); }\n}\n",
        );
        let fd = first_fn(&f);
        let stmts: Vec<_> = fd
            .body
            .as_ref()
            .map(|b| &b.stmts)
            .into_iter()
            .flatten()
            .collect();
        assert!(matches!(
            stmts[0],
            Stmt::Expr {
                expr: Expr {
                    kind: ExprKind::If { .. },
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            stmts[1],
            Stmt::Expr {
                expr: Expr {
                    kind: ExprKind::While { .. },
                    ..
                },
                ..
            }
        ));
    }
}
