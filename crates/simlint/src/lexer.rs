//! A lightweight Rust source "cleaner": strips comments and string
//! literals so rule patterns never fire inside them, and marks
//! `#[cfg(test)]` regions so test-only code is exempt from production
//! rules.
//!
//! This is a line/character scanner, not a parser. It understands just
//! enough of Rust's lexical grammar to be trustworthy for pattern rules:
//! line comments, nested block comments, string/char/byte literals, raw
//! strings with `#` fences, and lifetimes vs. char literals.

/// One cleaned source line.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// Line text with comments and literal contents blanked to spaces.
    /// Byte length may differ from the original; column positions are
    /// not preserved exactly, line numbers are.
    pub text: String,
    /// `true` when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A cleaned file: per-line view plus the concatenated text for
/// multi-line (match-block) scanning.
#[derive(Debug)]
pub struct CleanFile {
    /// Cleaned lines, 0-indexed (line `i` is source line `i + 1`).
    pub lines: Vec<CleanLine>,
    /// All cleaned lines joined with `\n`, test regions *included*
    /// (callers needing test-exclusion consult [`CleanFile::lines`]).
    pub text: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { fence: u32 },
    CharLit,
}

/// Cleans Rust source: blanks comments and literal contents, tags
/// `#[cfg(test)]` regions.
pub fn clean_source(src: &str) -> CleanFile {
    let mut state = State::Code;
    let mut lines: Vec<CleanLine> = Vec::new();
    let mut cleaned_all = String::with_capacity(src.len());

    // cfg(test) region tracking over the cleaned stream.
    let mut brace_depth: i64 = 0;
    // `Some(depth)` = inside a test item that opened at `depth`.
    let mut test_region: Option<i64> = None;
    // A `#[cfg(test)]` was seen and we await the item's `{` (or a `;`
    // ending a braceless item).
    let mut pending_test = false;

    for raw_line in src.split('\n') {
        let mut out = String::with_capacity(raw_line.len());
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        // Line comments never span lines.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Code => {
                    match c {
                        '/' if next == Some('/') => {
                            state = State::LineComment;
                            break;
                        }
                        '/' if next == Some('*') => {
                            state = State::BlockComment { depth: 1 };
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                            continue;
                        }
                        '"' => {
                            state = State::Str;
                            out.push('"');
                        }
                        'r' | 'b' if !prev_is_ident(&bytes, i) => {
                            // Possible raw/byte string prefix: r", r#",
                            // br", b", b'.
                            if let Some((fence, consumed, raw)) = string_prefix(&bytes, i) {
                                for _ in 0..consumed {
                                    out.push(' ');
                                }
                                out.push('"');
                                state = if raw {
                                    State::RawStr { fence }
                                } else {
                                    State::Str
                                };
                                i += consumed + 1;
                                continue;
                            }
                            if c == 'b' && next == Some('\'') {
                                out.push(' ');
                                out.push('\'');
                                state = State::CharLit;
                                i += 2;
                                continue;
                            }
                            out.push(c);
                        }
                        '\'' => {
                            // Char literal vs lifetime.
                            if is_char_literal(&bytes, i) {
                                out.push('\'');
                                state = State::CharLit;
                            } else {
                                out.push('\'');
                            }
                        }
                        '{' => {
                            // A gate attribute may sit earlier on this
                            // same line (`#[cfg(test)] mod t { ... }`).
                            let gated_on_line = test_region.is_none()
                                && out.replace(' ', "").contains("#[cfg(test)]");
                            out.push('{');
                            if pending_test || gated_on_line {
                                test_region = Some(brace_depth);
                                pending_test = false;
                            }
                            brace_depth += 1;
                        }
                        '}' => {
                            out.push('}');
                            brace_depth -= 1;
                            if test_region.is_some_and(|d| brace_depth <= d) {
                                test_region = None;
                            }
                        }
                        ';' => {
                            out.push(';');
                            if pending_test {
                                // Braceless item (e.g. `#[cfg(test)] use x;`).
                                pending_test = false;
                            }
                        }
                        _ => out.push(c),
                    }
                    i += 1;
                }
                State::LineComment => break,
                State::BlockComment { depth } => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment { depth: depth - 1 };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment { depth: depth + 1 };
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    match c {
                        '\\' => {
                            // Skip the escaped char (may be the closing
                            // quote or a line continuation).
                            i += 2;
                            continue;
                        }
                        '"' => {
                            out.push('"');
                            state = State::Code;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                State::RawStr { fence } => {
                    if c == '"' && raw_fence_closes(&bytes, i, fence) {
                        out.push('"');
                        state = State::Code;
                        i += 1 + fence as usize;
                    } else {
                        i += 1;
                    }
                }
                State::CharLit => {
                    match c {
                        '\\' => {
                            i += 2;
                            continue;
                        }
                        '\'' => {
                            out.push('\'');
                            state = State::Code;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
        }

        // Tag the line, then check for a test-gate attribute on it (the
        // attribute line itself counts as test code only if already in a
        // region).
        let in_test = test_region.is_some();
        if state == State::Code || state == State::LineComment {
            let t = out.replace(' ', "");
            if t.contains("#[cfg(test)]") || t.contains("#[cfg(all(test") {
                pending_test = true;
            }
        }
        cleaned_all.push_str(&out);
        cleaned_all.push('\n');
        lines.push(CleanLine { text: out, in_test });
    }

    CleanFile {
        lines,
        text: cleaned_all,
    }
}

/// Is the char before `i` part of an identifier (so `r`/`b` is a suffix
/// of a name, not a literal prefix)?
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Recognises raw/byte-string prefixes starting at `i` (`r"`, `r#...#"`,
/// `br"`, `b"`). Returns `(fence_hashes, chars_before_quote, is_raw)`.
fn string_prefix(bytes: &[char], i: usize) -> Option<(u32, usize, bool)> {
    let mut j = i;
    let mut raw = false;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
    } else if bytes[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut fence = 0u32;
    while bytes.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        // Plain `b"` is an ordinary (escaped) string; `r`-forms are raw.
        if !raw && fence > 0 {
            return None;
        }
        if !raw && j == i {
            return None;
        }
        Some((fence, j - i, raw))
    } else {
        None
    }
}

/// Does the `"` at `i` close a raw string with `fence` trailing `#`s?
fn raw_fence_closes(bytes: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Is the `'` at `i` the start of a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => {
            // 'x' is a char literal only when a closing quote follows
            // immediately; 'static / 'a (lifetimes) have none.
            bytes.get(i + 2) == Some(&'\'')
        }
        Some(_) => true, // e.g. '(' — punctuation chars close immediately
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let f = clean_source("let x = 1; // unwrap()\n/* panic!() */ let y = 2;");
        assert!(f.lines[0].text.contains("let x = 1;"));
        assert!(!f.text.contains("unwrap"));
        assert!(!f.text.contains("panic"));
        assert!(f.lines[1].text.contains("let y = 2;"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let f = clean_source("a /* x /* y */ z */ b");
        assert!(f.text.contains('a') && f.text.contains('b'));
        assert!(!f.text.contains('y') && !f.text.contains('z'));
    }

    #[test]
    fn blanks_string_contents() {
        let f = clean_source(r#"let s = "call .unwrap() now"; s.len();"#);
        assert!(!f.text.contains("unwrap"));
        assert!(f.text.contains("s.len()"));
    }

    #[test]
    fn blanks_raw_strings_with_fences() {
        let f = clean_source(r###"let s = r#"has "quotes" and panic!()"#; x();"###);
        assert!(!f.text.contains("panic"));
        assert!(f.text.contains("x()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = clean_source("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(x) }");
        assert!(f.text.contains("fn f<'a>"));
        assert!(f.text.contains("g(x)"));
        // The quote inside the char literal must not open a string.
        assert!(f.text.contains("let n ="));
    }

    #[test]
    fn cfg_test_regions_are_tagged() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = clean_source(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside test mod");
        assert!(!f.lines[5].in_test, "after test mod");
    }

    #[test]
    fn multiline_strings_stay_closed() {
        let src = "let s = \"line one\nstill string .unwrap()\nend\"; code();";
        let f = clean_source(src);
        assert!(!f.text.contains("unwrap"));
        assert!(f.text.contains("code()"));
    }
}
