//! Hot-path allocation/copy analysis.
//!
//! ROADMAP item 4 wants the simulator core ~10x faster; the first step
//! is knowing where the event loop spends allocator time. This pass
//! builds a workspace call graph, computes reachability from the
//! declared *hot roots* (the engine service loop, the device request
//! path, the QoS shared loop, the experiment body the vendored pool's
//! chunk loop runs, and the UFS trace replay reached through `dyn
//! FileSystemModel`), and flags allocation/copy sites inside
//! hot-reachable functions:
//!
//! * **per-event** — the site executes once per simulated event: it
//!   sits inside a loop in a hot function, or its whole function is
//!   called from inside a hot loop (the loop context propagates along
//!   call edges). These become [`Rule::HotPathAlloc`] findings and
//!   ratchet via the committed baseline.
//! * **per-run** — the site is hot-reachable but executes once per
//!   run (setup/teardown). Inventory only: recorded in the JSON
//!   export's `hotpath` section, never a finding.
//!
//! The escape model is conservative by construction: only *fresh
//! allocation* expressions are sites (`Vec::new`, `vec![]`,
//! `with_capacity`, `Box::new`, `collect`, `clone`/`cloned`,
//! `to_vec`/`to_owned`/`to_string`, `format!`, `String::from`).
//! Amortised growth on a pre-existing buffer (`push`, `resize`,
//! `extend`, `reserve`, `clear` + reuse) is never a site, so the
//! canonical fix — hoist the buffer out of the loop (or into per-run
//! engine state) and reuse it — is clean. Error paths are cold:
//! closures passed to lazy error adaptors (`ok_or_else`, `map_err`,
//! `unwrap_or_else`, ...), arguments of `Err(..)` / `SomeError::ctor(..)`
//! calls (the message `format!` only runs when the request already
//! failed), and the bodies of functions returning an `*Error` type.

use crate::ast::{Block, Expr, ExprKind, Item, ItemKind, Stmt};
use crate::parser::Span;
use crate::resolve::{visit_fns_with_path, FileAst, Index};
use crate::rules::{Finding, Rule};
use crate::Located;
use std::collections::BTreeMap;

/// Canonical paths of the declared hot roots. A root is the entry of a
/// code region that runs once per *event stream*: everything it calls
/// from inside a loop runs once per event.
pub const HOT_ROOTS: [&str; 7] = [
    // The media service loop: every die-op goes through here.
    "flashsim::engine::MediaSim::execute",
    "flashsim::engine::MediaSim::execute_traced",
    // The device request path (single-trace closed loop + shared code).
    "ssd::device::SsdDevice::run_observed",
    "ssd::device::EngineState::service_one",
    // The multi-tenant shared-fleet loop.
    "ssd::qos::SsdDevice::run_shared",
    // The body the vendored pool's chunk loop executes per experiment
    // (`vendor/` itself is outside the scanned scope).
    "core::experiment::ExperimentSpec::run",
    // The UFS replay is dispatched through `dyn FileSystemModel`, which
    // the static call graph cannot see through; it is the dominant
    // trace transform, so it is declared hot explicitly.
    "ufs::replay::JournaledUfs::transform_with_stats",
];

/// How often a hot-reachable allocation site executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Once per simulated event (request, record, die-op): findings.
    PerEvent,
    /// Once per run (setup/teardown): inventory only.
    PerRun,
}

impl Severity {
    /// Stable identifier used in the JSON export.
    pub fn id(self) -> &'static str {
        match self {
            Severity::PerEvent => "per_event",
            Severity::PerRun => "per_run",
        }
    }
}

/// One allocation/copy site in a hot-reachable function.
#[derive(Debug, Clone)]
pub struct Site {
    /// Workspace-relative file path.
    pub path: String,
    /// Crate directory name.
    pub krate: String,
    /// Canonical path of the containing function.
    pub fn_path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (0 when unknown).
    pub col: usize,
    /// What allocates: `vec![]`, `clone`, `collect`, ...
    pub kind: &'static str,
    /// Execution frequency class.
    pub severity: Severity,
}

/// The pass output: ratcheted findings plus the full site inventory.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Per-event sites as findings (rule [`Rule::HotPathAlloc`]).
    pub findings: Vec<Located>,
    /// Every hot-reachable site, both severities, sorted by path/line.
    pub sites: Vec<Site>,
    /// Number of hot-reachable functions.
    pub hot_fns: usize,
}

/// Runs the pass with the default [`HOT_ROOTS`]. `in_scope` filters
/// which files findings and inventory apply to; call-graph summaries
/// are computed workspace-wide so hotness crosses crate boundaries.
pub fn run(files: &[FileAst], index: &Index, in_scope: &dyn Fn(&str) -> bool) -> Analysis {
    run_with_roots(files, index, in_scope, &HOT_ROOTS)
}

/// [`run`] with explicit roots (fixtures/selftests).
pub fn run_with_roots(
    files: &[FileAst],
    index: &Index,
    in_scope: &dyn Fn(&str) -> bool,
    roots: &[&str],
) -> Analysis {
    // Pass 1: one summary per function — outgoing call edges (with
    // "call site is inside a loop") and allocation sites.
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    for file in files {
        let ctx = Ctx::new(file, index);
        visit_fns_with_path(
            &file.ast.items,
            &file.module,
            file,
            &mut |fd, path, _, _| {
                if let Some(body) = &fd.body {
                    let mut summary = FnSummary::default();
                    let mut st = Walk {
                        in_loop: false,
                        cold: false,
                        locals: BTreeMap::new(),
                    };
                    ctx.walk_block(body, &mut st, path, &mut summary);
                    summaries.insert(path.clone(), summary);
                }
            },
        );
    }

    // Pass 2: reachability fixpoint. `hot[f] = true` means f is called
    // from inside a hot loop (its body runs per event); `false` means
    // hot-reachable but only once per run. Loop context only upgrades
    // (false -> true), so the iteration is monotone and terminates.
    let mut hot: BTreeMap<String, bool> = BTreeMap::new();
    for root in roots {
        if summaries.contains_key(*root) {
            hot.insert((*root).to_string(), false);
        }
    }
    loop {
        let mut changed = false;
        let frontier: Vec<(String, bool)> = hot.iter().map(|(k, &v)| (k.clone(), v)).collect();
        for (fn_path, ctx_in_loop) in frontier {
            let Some(summary) = summaries.get(&fn_path) else {
                continue;
            };
            for (callee, call_in_loop) in &summary.calls {
                let callee_ctx = ctx_in_loop || *call_in_loop;
                match hot.get_mut(callee) {
                    Some(existing) => {
                        if callee_ctx && !*existing {
                            *existing = true;
                            changed = true;
                        }
                    }
                    None => {
                        if summaries.contains_key(callee) {
                            hot.insert(callee.clone(), callee_ctx);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: report. Per-event sites in in-scope files become
    // findings; everything hot-reachable lands in the inventory.
    let mut out = Analysis {
        hot_fns: hot.len(),
        ..Analysis::default()
    };
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        visit_fns_with_path(
            &file.ast.items,
            &file.module,
            file,
            &mut |fd, path, _, _| {
                let Some(&ctx_in_loop) = hot.get(path) else {
                    return;
                };
                let Some(summary) = summaries.get(path) else {
                    return;
                };
                // Error constructors (`fn .. -> SimError`) only run when a
                // request already failed: cold by definition.
                if fd.ret.as_ref().is_some_and(|t| t.base.ends_with("Error")) {
                    return;
                }
                for site in &summary.sites {
                    if file.line_in_test(site.span.line) {
                        continue;
                    }
                    let severity = if site.in_loop || ctx_in_loop {
                        Severity::PerEvent
                    } else {
                        Severity::PerRun
                    };
                    out.sites.push(Site {
                        path: file.path.clone(),
                        krate: file.krate.clone(),
                        fn_path: path.clone(),
                        line: site.span.line,
                        col: site.span.col,
                        kind: site.kind,
                        severity,
                    });
                    if severity == Severity::PerEvent {
                        let how = if site.in_loop {
                            "inside a loop of the hot function"
                        } else {
                            "the whole function is called from a hot loop"
                        };
                        out.findings.push(Located {
                        path: file.path.clone(),
                        finding: Finding {
                            rule: Rule::HotPathAlloc,
                            line: site.span.line,
                            col: site.span.col,
                            message: format!(
                                "hot-path allocation: `{}` runs per event in `{path}` ({how}); hoist the buffer into reusable per-run state or pre-size it outside the loop (docs/STATIC_ANALYSIS.md)",
                                site.kind
                            ),
                        },
                    });
                    }
                }
            },
        );
    }
    out.sites
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    out.findings
        .sort_by(|a, b| (&a.path, a.finding.line).cmp(&(&b.path, b.finding.line)));
    out
}

/// Iterator adaptors that execute a closure argument once per element:
/// the closure body inherits loop context.
const PER_ELEMENT_METHODS: [&str; 14] = [
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "retain",
    "inspect",
    "scan",
    "take_while",
    "skip_while",
    "find_map",
    "position",
    "sort_by",
    "sort_by_key",
];

/// Adaptors whose closure is a lazily-evaluated error/default path:
/// allocation there is cold — no sites, no call edges.
const LAZY_COLD_METHODS: [&str; 8] = [
    "ok_or_else",
    "unwrap_or_else",
    "map_err",
    "or_else",
    "get_or_insert_with",
    "map_or_else",
    "unwrap_or_default",
    "err",
];

/// Ubiquitous std method names excluded from *bare-name* call-edge
/// resolution (a workspace fn of the same name must not receive edges
/// from every `Vec::len` call). Typed resolution (`self.x.m()`, locals
/// with known constructors) is exact and bypasses this list.
const STD_METHODS: [&str; 48] = [
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "cloned",
    "copied",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "map",
    "filter",
    "sum",
    "min",
    "max",
    "count",
    "clear",
    "resize",
    "extend",
    "contains",
    "contains_key",
    "entry",
    "sort",
    "drain",
    "take",
    "last",
    "first",
    "any",
    "all",
    "find",
    "fold",
    "rev",
    "zip",
    "enumerate",
    "parse",
    "split",
    "join",
    "run",
    "new",
];

/// One function's call edges and allocation sites.
#[derive(Debug, Default)]
struct FnSummary {
    /// `(callee canonical path, call site is inside a loop)`.
    calls: Vec<(String, bool)>,
    /// Allocation/copy sites with their local loop attribution.
    sites: Vec<RawSite>,
}

#[derive(Debug)]
struct RawSite {
    span: Span,
    kind: &'static str,
    in_loop: bool,
}

/// Walker state threaded through one function body.
#[derive(Clone)]
struct Walk {
    /// Inside a `for`/`while`/`loop` body or a per-element closure.
    in_loop: bool,
    /// Inside a lazy error-path closure: suppress sites and edges.
    cold: bool,
    /// Local name -> canonical type prefix (`ufs::fs::Ufs`), learned
    /// from constructor-style initialisers.
    locals: BTreeMap<String, String>,
}

struct Ctx<'a> {
    file: &'a FileAst,
    index: &'a Index,
    /// Same-file struct fields: name -> declared type base.
    field_types: BTreeMap<String, String>,
}

impl<'a> Ctx<'a> {
    fn new(file: &'a FileAst, index: &'a Index) -> Ctx<'a> {
        let mut field_types = BTreeMap::new();
        collect_struct_fields(&file.ast.items, &mut field_types);
        Ctx {
            file,
            index,
            field_types,
        }
    }

    fn walk_block(&self, block: &Block, st: &mut Walk, fn_path: &str, out: &mut FnSummary) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { name, init, .. } => {
                    if let Some(init) = init {
                        self.walk_expr(init, st, fn_path, out);
                        if let (Some(n), Some(prefix)) = (name, self.constructed_type(init)) {
                            st.locals.insert(n.clone(), prefix);
                        }
                    }
                }
                Stmt::Expr { expr, .. } => self.walk_expr(expr, st, fn_path, out),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(&self, expr: &Expr, st: &mut Walk, fn_path: &str, out: &mut FnSummary) {
        if !st.cold {
            if let Some(kind) = self.alloc_kind(expr) {
                out.sites.push(RawSite {
                    span: expr.span,
                    kind,
                    in_loop: st.in_loop,
                });
            }
            if let Some(callee) = self.call_target(expr, st, fn_path) {
                out.calls.push((callee, st.in_loop));
            }
        }
        match &expr.kind {
            ExprKind::For { iter, body, .. } => {
                self.walk_expr(iter, st, fn_path, out);
                let mut inner = st.clone();
                inner.in_loop = true;
                self.walk_block(body, &mut inner, fn_path, out);
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond, st, fn_path, out);
                let mut inner = st.clone();
                inner.in_loop = true;
                self.walk_block(body, &mut inner, fn_path, out);
            }
            ExprKind::Loop { body } => {
                let mut inner = st.clone();
                inner.in_loop = true;
                self.walk_block(body, &mut inner, fn_path, out);
            }
            ExprKind::MethodCall { recv, method, args } => {
                self.walk_expr(recv, st, fn_path, out);
                for arg in args {
                    if let ExprKind::Closure { body, .. } = &arg.kind {
                        let mut inner = st.clone();
                        if PER_ELEMENT_METHODS.contains(&method.as_str()) {
                            inner.in_loop = true;
                        } else if LAZY_COLD_METHODS.contains(&method.as_str()) {
                            inner.cold = true;
                        }
                        self.walk_expr(body, &mut inner, fn_path, out);
                    } else {
                        self.walk_expr(arg, st, fn_path, out);
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                self.walk_expr(callee, st, fn_path, out);
                // Error construction is cold: the `format!` feeding
                // `Err(SimError::invalid_config(..))` only runs once the
                // request has already failed.
                let mut inner = st.clone();
                if let ExprKind::Path(segs) = &callee.kind {
                    if is_error_construction(segs) {
                        inner.cold = true;
                    }
                }
                for arg in args {
                    self.walk_expr(arg, &mut inner, fn_path, out);
                }
            }
            ExprKind::If { cond, then, els } => {
                self.walk_expr(cond, st, fn_path, out);
                self.walk_block(then, &mut st.clone(), fn_path, out);
                if let Some(e) = els {
                    self.walk_expr(e, st, fn_path, out);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee, st, fn_path, out);
                for arm in arms {
                    if let Some(guard) = &arm.guard {
                        self.walk_expr(guard, st, fn_path, out);
                    }
                    self.walk_expr(&arm.body, &mut st.clone(), fn_path, out);
                }
            }
            ExprKind::Block(b) => self.walk_block(b, &mut st.clone(), fn_path, out),
            ExprKind::Closure { body, .. } => self.walk_expr(body, &mut st.clone(), fn_path, out),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.walk_expr(lhs, st, fn_path, out);
                self.walk_expr(rhs, st, fn_path, out);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
                self.walk_expr(operand, st, fn_path, out);
            }
            ExprKind::Try(e) | ExprKind::Field { base: e, .. } => {
                self.walk_expr(e, st, fn_path, out);
            }
            ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => {
                self.walk_expr(e, st, fn_path, out);
            }
            ExprKind::Index { base, index } => {
                self.walk_expr(base, st, fn_path, out);
                self.walk_expr(index, st, fn_path, out);
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) | ExprKind::Unknown(es) => {
                for e in es {
                    self.walk_expr(e, st, fn_path, out);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, e) in fields {
                    self.walk_expr(e, st, fn_path, out);
                }
            }
            ExprKind::Macro { args, .. } => {
                for e in args {
                    self.walk_expr(e, st, fn_path, out);
                }
            }
            ExprKind::Range { lo, hi } => {
                if let Some(e) = lo {
                    self.walk_expr(e, st, fn_path, out);
                }
                if let Some(e) = hi {
                    self.walk_expr(e, st, fn_path, out);
                }
            }
            _ => {}
        }
    }

    /// Is this expression a fresh-allocation/copy site? Returns the
    /// site kind. Amortised growth (`push`, `resize`, `extend`, ...)
    /// is deliberately not a site: reuse of a hoisted buffer is clean.
    fn alloc_kind(&self, expr: &Expr) -> Option<&'static str> {
        match &expr.kind {
            ExprKind::Call { callee, .. } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let resolved = self.file.resolve(segs);
                let pair = |a: &str, b: &str| {
                    resolved.len() >= 2
                        && resolved[resolved.len() - 2] == a
                        && resolved[resolved.len() - 1] == b
                };
                if pair("Vec", "new") {
                    return Some("Vec::new");
                }
                if pair("Vec", "with_capacity") {
                    return Some("Vec::with_capacity");
                }
                if pair("Box", "new") {
                    return Some("Box::new");
                }
                if pair("String", "from") {
                    return Some("String::from");
                }
                if pair("String", "with_capacity") {
                    return Some("String::with_capacity");
                }
                None
            }
            ExprKind::Macro { path, .. } => match path.last().map(String::as_str) {
                Some("vec") => Some("vec![]"),
                Some("format") => Some("format!"),
                _ => None,
            },
            ExprKind::MethodCall { method, .. } => match method.as_str() {
                "clone" => Some("clone"),
                "cloned" => Some("cloned"),
                "to_vec" => Some("to_vec"),
                "to_owned" => Some("to_owned"),
                "to_string" => Some("to_string"),
                "collect" => Some("collect"),
                _ => None,
            },
            _ => None,
        }
    }

    /// Resolves the callee of a call expression to a canonical fn path
    /// in the workspace index, or `None` for std/unresolvable calls.
    fn call_target(&self, expr: &Expr, st: &Walk, fn_path: &str) -> Option<String> {
        match &expr.kind {
            ExprKind::Call { callee, .. } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let resolved = self.file.resolve(segs);
                self.index.lookup(&resolved).map(|sig| sig.path.clone())
            }
            ExprKind::MethodCall { recv, method, .. } => {
                self.method_target(recv, method, st, fn_path)
            }
            _ => None,
        }
    }

    /// Method-call resolution, most precise first: `self.m()` against
    /// the enclosing impl type; `local.m()` against the local's
    /// constructor-derived type; `self.field.m()` against the field's
    /// declared type (same-file structs); finally a workspace-unique
    /// bare name outside the std-method denylist.
    fn method_target(&self, recv: &Expr, method: &str, st: &Walk, fn_path: &str) -> Option<String> {
        match &recv.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] if one == "self" => {
                    if let Some((prefix, _)) = fn_path.rsplit_once("::") {
                        let key = format!("{prefix}::{method}");
                        if self.index.fns.contains_key(&key) {
                            return Some(key);
                        }
                        // The impl type's methods may live in a sibling
                        // file; fall back to the type-name filter.
                        if let Some((_, ty)) = prefix.rsplit_once("::") {
                            if let Some(path) = self.unique_method_of(ty, method) {
                                return Some(path);
                            }
                        }
                    }
                    self.bare_target(method)
                }
                [one] => {
                    if let Some(prefix) = st.locals.get(one) {
                        let key = format!("{prefix}::{method}");
                        if self.index.fns.contains_key(&key) {
                            return Some(key);
                        }
                        if let Some((_, ty)) = prefix.rsplit_once("::") {
                            if let Some(path) = self.unique_method_of(ty, method) {
                                return Some(path);
                            }
                        }
                    }
                    self.bare_target(method)
                }
                _ => self.bare_target(method),
            },
            ExprKind::Field { base, name } => {
                if matches!(&base.kind, ExprKind::Path(s) if s.as_slice() == [String::from("self")])
                {
                    if let Some(ty) = self.field_types.get(name) {
                        if let Some(path) = self.unique_method_of(ty, method) {
                            return Some(path);
                        }
                    }
                }
                self.bare_target(method)
            }
            ExprKind::Unary { op, operand } if op == "&" || op == "*" => {
                self.method_target(operand, method, st, fn_path)
            }
            ExprKind::Try(inner) => self.method_target(inner, method, st, fn_path),
            _ => self.bare_target(method),
        }
    }

    /// The unique indexed fn named `method` on a type named `ty`.
    fn unique_method_of(&self, ty: &str, method: &str) -> Option<String> {
        let candidates = self.index.by_name.get(method)?;
        let want = format!("::{ty}::{method}");
        let mut hit = None;
        for path in candidates {
            if path.ends_with(&want) {
                if hit.is_some() {
                    return None;
                }
                hit = Some(path.clone());
            }
        }
        hit
    }

    /// Bare-name resolution: workspace-unique and not a std method.
    fn bare_target(&self, method: &str) -> Option<String> {
        if STD_METHODS.contains(&method) {
            return None;
        }
        self.index
            .lookup(&[method.to_string()])
            .map(|sig| sig.path.clone())
    }

    /// If `init` is a constructor-style call (`Ty::new(..)` and kin),
    /// the canonical type prefix of the constructed value.
    fn constructed_type(&self, init: &Expr) -> Option<String> {
        match &init.kind {
            ExprKind::Try(inner) => self.constructed_type(inner),
            ExprKind::Call { callee, .. } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let resolved = self.file.resolve(segs);
                let sig = self.index.lookup(&resolved)?;
                let (prefix, _) = sig.path.rsplit_once("::")?;
                let (_, last) = prefix.rsplit_once("::").unwrap_or(("", prefix));
                if last.chars().next().is_some_and(char::is_uppercase) {
                    Some(prefix.to_string())
                } else {
                    None
                }
            }
            ExprKind::StructLit { path, .. } => {
                let resolved = self.file.resolve(path);
                let last = resolved.last()?;
                if last.chars().next().is_some_and(char::is_uppercase) {
                    Some(resolved.join("::"))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// `Err(..)` or any `SomeError::ctor(..)` path: the arguments are
/// error-message construction, executed only on the failure path.
fn is_error_construction(segs: &[String]) -> bool {
    segs.last().is_some_and(|s| s == "Err") || segs.iter().any(|s| s.ends_with("Error"))
}

fn collect_struct_fields(items: &[Item], out: &mut BTreeMap<String, String>) {
    for item in items {
        match &item.kind {
            ItemKind::Struct { fields, .. } => {
                for f in fields {
                    if !f.name.is_empty() && !f.ty.base.is_empty() {
                        out.insert(f.name.clone(), f.ty.base.clone());
                    }
                }
            }
            ItemKind::Mod { items, .. } => collect_struct_fields(items, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    fn analyse(files: &[(&str, &str, &str)], roots: &[&str]) -> Analysis {
        let parsed: Vec<FileAst> = files
            .iter()
            .map(|(path, krate, src)| FileAst::parse(path, krate, &clean_source(src)))
            .collect();
        let index = Index::build(&parsed);
        run_with_roots(&parsed, &index, &|_| true, roots)
    }

    #[test]
    fn per_event_loop_fixture_detects_two_sites() {
        let src = include_str!("../fixtures/hotpath/per_event_loop.rs");
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert_eq!(a.findings.len(), 2, "{:#?}", a.findings);
        assert!(a.findings[0].finding.message.contains("per event"));
        assert_eq!(
            a.sites
                .iter()
                .filter(|s| s.severity == Severity::PerEvent)
                .count(),
            2
        );
    }

    #[test]
    fn clone_in_hot_callee_inherits_loop_context() {
        let src = include_str!("../fixtures/hotpath/clone_large.rs");
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert!(a.findings[0].finding.message.contains("clone"));
        assert!(a.findings[0]
            .finding
            .message
            .contains("called from a hot loop"));
    }

    #[test]
    fn hoisted_buffer_is_a_true_negative() {
        let src = include_str!("../fixtures/hotpath/hoisted_ok.rs");
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
        // The hoisted allocation is still inventoried, as per-run.
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].severity, Severity::PerRun);
        assert_eq!(a.sites[0].kind, "Vec::with_capacity");
    }

    #[test]
    fn non_hot_reachable_code_is_a_true_negative() {
        let src = include_str!("../fixtures/hotpath/cold_helper.rs");
        let a = analyse(
            &[("crates/ssd/src/report.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
        assert!(a.sites.is_empty(), "{:#?}", a.sites);
    }

    #[test]
    fn hotness_crosses_crate_boundaries() {
        let engine = "pub struct MediaSim;\nimpl MediaSim {\n  pub fn execute(&mut self, n: u64) -> u64 {\n    let mut total = 0;\n    for _ in 0..n { total += crate::cell::sense(); }\n    total\n  }\n}\n";
        let cell = "pub fn sense() -> u64 {\n  let t = vec![0u8; 4];\n  t.len() as u64\n}\n";
        let a = analyse(
            &[
                ("crates/flashsim/src/engine.rs", "flashsim", engine),
                ("crates/flashsim/src/cell.rs", "flashsim", cell),
            ],
            &["flashsim::engine::MediaSim::execute"],
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.findings[0].path, "crates/flashsim/src/cell.rs");
    }

    #[test]
    fn lazy_error_closures_are_cold() {
        let src = "pub struct SsdDevice;\nimpl SsdDevice {\n  pub fn run_observed(&self, xs: &[u64]) -> Result<u64, String> {\n    let mut total = 0;\n    for x in xs {\n      total += check(*x).ok_or_else(|| format!(\"bad {x}\"))?;\n    }\n    Ok(total)\n  }\n}\nfn check(x: u64) -> Option<u64> { Some(x) }\n";
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn error_construction_is_cold() {
        let src = "pub struct SsdDevice;\nimpl SsdDevice {\n  pub fn run_observed(&self, xs: &[u64]) -> Result<u64, SimError> {\n    let mut total = 0;\n    for x in xs {\n      if *x > 100 {\n        return Err(SimError::invalid_config(format!(\"bad {x}\"), format!(\"ctx\")));\n      }\n      total += self.classify(*x);\n    }\n    Ok(total)\n  }\n  fn classify(&self, x: u64) -> u64 { x }\n}\nfn overlap(x: u64) -> SimError {\n  SimError::corruption(format!(\"extent {x} overlaps\"))\n}\n";
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn per_element_closures_inherit_loop_context() {
        let src = "pub struct SsdDevice;\nimpl SsdDevice {\n  pub fn run_observed(&self, xs: &[u64]) -> u64 {\n    xs.iter().map(|x| x.to_string().len() as u64).sum()\n  }\n}\n";
        let a = analyse(
            &[("crates/ssd/src/device.rs", "ssd", src)],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert!(a.findings[0].finding.message.contains("to_string"));
    }

    #[test]
    fn local_constructor_types_resolve_method_edges() {
        let dev = "pub struct Engine;\nimpl Engine {\n  pub fn fresh() -> Engine { Engine }\n  pub fn step(&self) -> u64 { vec![1u8].len() as u64 }\n}\n";
        let root = "pub struct SsdDevice;\nimpl SsdDevice {\n  pub fn run_observed(&self, n: u64) -> u64 {\n    let e = crate::engine::Engine::fresh();\n    let mut total = 0;\n    for _ in 0..n { total += e.step(); }\n    total\n  }\n}\n";
        let a = analyse(
            &[
                ("crates/ssd/src/engine.rs", "ssd", dev),
                ("crates/ssd/src/device.rs", "ssd", root),
            ],
            &["ssd::device::SsdDevice::run_observed"],
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert!(a.findings[0].finding.message.contains("vec![]"));
        assert_eq!(a.findings[0].path, "crates/ssd/src/engine.rs");
    }
}
