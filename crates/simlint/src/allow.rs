//! The burn-down allowlist (`simlint.allow`).
//!
//! Format: one entry per line, `<rule> <path> <count>`, `#` comments.
//! The tool requires the file to track reality *exactly*: more findings
//! than allowed is a violation; fewer is a stale entry that must be
//! ratcheted down. Counts therefore only ever decrease over time, and
//! the self-test suite pins the totals below their seed baselines.

use crate::rules::Rule;
use std::collections::BTreeMap;

/// Parsed allowlist: `(rule, path) -> allowed count`.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: BTreeMap<(Rule, String), usize>,
}

/// A problem found while parsing the allowlist file.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in `simlint.allow`.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl Allowlist {
    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(ParseError {
                    line: idx + 1,
                    message: format!("expected `<rule> <path> <count>`, got `{line}`"),
                });
            };
            let Some(rule) = Rule::from_id(rule) else {
                return Err(ParseError {
                    line: idx + 1,
                    message: format!("unknown rule `{rule}`"),
                });
            };
            let Ok(count) = count.parse::<usize>() else {
                return Err(ParseError {
                    line: idx + 1,
                    message: format!("bad count `{count}`"),
                });
            };
            if count == 0 {
                return Err(ParseError {
                    line: idx + 1,
                    message: "zero-count entries must be deleted, not listed".to_string(),
                });
            }
            if entries.insert((rule, path.to_string()), count).is_some() {
                return Err(ParseError {
                    line: idx + 1,
                    message: format!("duplicate entry for {} {}", rule.id(), path),
                });
            }
        }
        Ok(Allowlist { entries })
    }

    /// Allowed count for a `(rule, path)` pair.
    pub fn allowed(&self, rule: Rule, path: &str) -> usize {
        self.entries
            .get(&(rule, path.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates all entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Rule, &str, usize)> {
        self.entries.iter().map(|((r, p), c)| (*r, p.as_str(), *c))
    }

    /// Total allowed count for one rule.
    pub fn total(&self, rule: Rule) -> usize {
        self.entries
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, c)| c)
            .sum()
    }

    /// Builds an allowlist from observed per-file counts.
    pub fn from_counts(counts: &BTreeMap<(Rule, String), usize>) -> Allowlist {
        Allowlist {
            entries: counts
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k.clone(), c))
                .collect(),
        }
    }

    /// Renders the canonical file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# simlint burn-down allowlist.\n\
             # Format: <rule> <path> <count>. Counts may only ratchet DOWN:\n\
             # fix a violation, then decrement (or delete) its entry here.\n\
             # Regenerate with `cargo run -p simlint -- --write-allow` after\n\
             # fixing; adding or raising entries is rejected in review and by\n\
             # the simlint self-tests, which pin totals below seed baselines.\n",
        );
        let mut last_rule: Option<Rule> = None;
        for ((rule, path), count) in &self.entries {
            if last_rule != Some(*rule) {
                out.push('\n');
                last_rule = Some(*rule);
            }
            out.push_str(&format!("{} {} {}\n", rule.id(), path, count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text =
            "# header\nno_panic crates/ooc/src/store.rs 3\nbare_cast crates/ssd/src/ftl.rs 2\n";
        let a = Allowlist::parse(text).expect("parses");
        assert_eq!(a.allowed(Rule::NoPanic, "crates/ooc/src/store.rs"), 3);
        assert_eq!(a.allowed(Rule::BareCast, "crates/ssd/src/ftl.rs"), 2);
        assert_eq!(a.allowed(Rule::BareCast, "crates/ssd/src/other.rs"), 0);
        let rendered = a.render();
        let b = Allowlist::parse(&rendered).expect("canonical form parses");
        assert_eq!(b.allowed(Rule::NoPanic, "crates/ooc/src/store.rs"), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("no_panic onlytwo\n").is_err());
        assert!(Allowlist::parse("bogus_rule a.rs 1\n").is_err());
        assert!(Allowlist::parse("no_panic a.rs zero\n").is_err());
        assert!(Allowlist::parse("no_panic a.rs 0\n").is_err());
        assert!(Allowlist::parse("no_panic a.rs 1\nno_panic a.rs 2\n").is_err());
    }

    #[test]
    fn totals_sum_per_rule() {
        let a = Allowlist::parse("no_panic a.rs 2\nno_panic b.rs 3\nbare_cast a.rs 7\n")
            .expect("parses");
        assert_eq!(a.total(Rule::NoPanic), 5);
        assert_eq!(a.total(Rule::BareCast), 7);
    }
}
