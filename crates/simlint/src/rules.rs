//! The lint rules: each inspects one cleaned file and yields findings.
//!
//! Rules are scoped by crate (see [`crate::scope`]); this module only
//! concerns itself with recognising violations in cleaned source text.

use crate::lexer::CleanFile;

/// Rule identifiers — stable strings used in reports and `simlint.allow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`-family calls in non-test code.
    NoPanic,
    /// `HashMap`/`HashSet` in simulator-state crates (iteration order is
    /// nondeterministic; use `BTreeMap`/`BTreeSet` or sorted drains).
    NondeterministicCollection,
    /// Wall-clock or OS-entropy sources inside the simulators
    /// (simulated time only).
    WallClock,
    /// Bare `as` numeric casts in unit-arithmetic crates; use the
    /// checked conversion helpers in `nvmtypes`.
    BareCast,
    /// `_ =>` wildcard arm in a `match` over a watched enum; new
    /// variants must not silently fall through.
    EnumWildcard,
    /// `let _ = expr;` in non-test code: the idiom that silently
    /// swallows a `Result` (and with it the error). Handle or propagate
    /// instead; deliberate discards use `drop(..)` or a typed `let _: T`.
    LetUnderscoreResult,
    /// `println!`/`eprintln!` in library code (bins exempt): libraries
    /// return or render strings and let the binaries print, so output
    /// stays capturable, testable, and silent under `Tracer::off()`.
    NoPrintlnInLib,
    /// Direct `thread::spawn` outside the vendored pool: ad-hoc threads
    /// dodge `RAYON_NUM_THREADS` and the ordered-collect determinism
    /// contract (docs/PARALLELISM.md). Use `par_iter`/`join` instead.
    ThreadSpawn,
    /// Semantic taint pass: a nondeterministic value (wall clock, OS
    /// entropy, hash-order iteration, pointer address, env read) flows
    /// into a public return value or an observability sink. Never
    /// allowlistable.
    NondetTaint,
    /// Semantic unit pass: values carrying different units of measure
    /// (ns vs bytes vs lanes) meet in arithmetic, comparison, or a
    /// call-site argument. Never allowlistable.
    UnitMismatch,
    /// Concurrency pass: a `Relaxed` atomic store publishing prior
    /// writes, or a `Relaxed` load guarding reads of other state —
    /// cross-thread data with no happens-before edge. Proven-safe
    /// `Relaxed` protocols live in simcheck-verified modules
    /// (docs/CONCURRENCY.md). Never allowlistable.
    AtomicOrdering,
    /// Concurrency pass: a cycle in the workspace lock-acquisition
    /// graph (lock `b` taken while holding `a` somewhere, `a` while
    /// holding `b` elsewhere) — an AB-BA deadlock awaiting the right
    /// interleaving. Never allowlistable.
    LockOrder,
    /// Hotpath pass: a fresh allocation or copy (`Vec::new`, `vec![]`,
    /// `collect`, `clone`, `Box::new`, `format!`, ...) that executes
    /// once per simulated event — inside a loop of a hot-root-reachable
    /// function, or in a function called from a hot loop. Hoist the
    /// buffer into reusable per-run state (docs/STATIC_ANALYSIS.md).
    /// Allowlistable: this is performance debt, not a correctness bug.
    HotPathAlloc,
}

impl Rule {
    /// The identifier used in reports and the allowlist file.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::NondeterministicCollection => "nondeterministic_collection",
            Rule::WallClock => "wall_clock",
            Rule::BareCast => "bare_cast",
            Rule::EnumWildcard => "enum_wildcard",
            Rule::LetUnderscoreResult => "let_underscore_result",
            Rule::NoPrintlnInLib => "no_println_in_lib",
            Rule::ThreadSpawn => "thread_spawn",
            Rule::NondetTaint => "nondet_taint",
            Rule::UnitMismatch => "unit_mismatch",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::LockOrder => "lock_order",
            Rule::HotPathAlloc => "hotpath_alloc",
        }
    }

    /// Parses an identifier back into a rule.
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "no_panic" => Rule::NoPanic,
            "nondeterministic_collection" => Rule::NondeterministicCollection,
            "wall_clock" => Rule::WallClock,
            "bare_cast" => Rule::BareCast,
            "enum_wildcard" => Rule::EnumWildcard,
            "let_underscore_result" => Rule::LetUnderscoreResult,
            "no_println_in_lib" => Rule::NoPrintlnInLib,
            "thread_spawn" => Rule::ThreadSpawn,
            "nondet_taint" => Rule::NondetTaint,
            "unit_mismatch" => Rule::UnitMismatch,
            "atomic_ordering" => Rule::AtomicOrdering,
            "lock_order" => Rule::LockOrder,
            "hotpath_alloc" => Rule::HotPathAlloc,
            _ => return None,
        })
    }

    /// Every rule, in report order.
    pub const ALL: [Rule; 13] = [
        Rule::NoPanic,
        Rule::NondeterministicCollection,
        Rule::WallClock,
        Rule::BareCast,
        Rule::EnumWildcard,
        Rule::LetUnderscoreResult,
        Rule::NoPrintlnInLib,
        Rule::ThreadSpawn,
        Rule::NondetTaint,
        Rule::UnitMismatch,
        Rule::AtomicOrdering,
        Rule::LockOrder,
        Rule::HotPathAlloc,
    ];
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (best-effort; 0 when unknown).
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Panicking constructs flagged by [`Rule::NoPanic`]. Matched against
/// cleaned text, so occurrences in comments/strings never fire.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Wall-clock / entropy constructs flagged by [`Rule::WallClock`].
const WALL_CLOCK_TOKENS: [&str; 4] = ["Instant::now", "SystemTime", "thread_rng", "from_entropy"];

/// Console-printing macros flagged by [`Rule::NoPrintlnInLib`]. The
/// left-boundary check in [`token_rule`] keeps `eprintln!(` from also
/// counting as `println!(`.
const PRINTLN_TOKENS: [&str; 2] = ["println!(", "eprintln!("];

/// Ad-hoc threading flagged by [`Rule::ThreadSpawn`]. `scope.spawn` and
/// the pool's own workers live in `vendor/` (out of scope); everything
/// else routes through `par_iter`/`join`.
const SPAWN_TOKENS: [&str; 1] = ["thread::spawn("];

/// Numeric types whose bare `as` casts are flagged by [`Rule::BareCast`].
const CAST_TARGETS: [&str; 9] = [
    "u16", "u32", "u64", "u128", "usize", "i64", "i128", "f32", "f64",
];

/// Enums that must be matched exhaustively ([`Rule::EnumWildcard`]):
/// adding a PCM/media/filesystem variant must be a compile error at every
/// match, never a silent fall-through.
pub const WATCHED_ENUMS: [&str; 14] = [
    "Layer",
    "NvmKind",
    "PageClass",
    "IoOp",
    "OpKind",
    "FsKind",
    "FtlMode",
    "PalLevel",
    "PcieGen",
    "NvmBusSpeed",
    "Dim",
    "Location",
    "Controller",
    "TrendSeries",
];

/// Runs the no-panic rule over non-test lines.
pub fn no_panic(file: &CleanFile) -> Vec<Finding> {
    token_rule(file, Rule::NoPanic, &PANIC_TOKENS, |tok| {
        format!(
            "`{}` can panic; return a typed error or use a non-panicking accessor",
            tok.trim_matches(['.', '('])
        )
    })
}

/// Runs the no-println-in-lib rule over non-test lines (callers apply
/// it to library paths only; see `crate::rules_for`).
pub fn no_println_in_lib(file: &CleanFile) -> Vec<Finding> {
    token_rule(file, Rule::NoPrintlnInLib, &PRINTLN_TOKENS, |tok| {
        format!(
            "`{}` in library code; return or render a `String` and let the binary print it",
            tok.trim_end_matches('(')
        )
    })
}

/// Runs the thread-spawn rule over non-test lines.
pub fn thread_spawn(file: &CleanFile) -> Vec<Finding> {
    token_rule(file, Rule::ThreadSpawn, &SPAWN_TOKENS, |_| {
        "direct `thread::spawn` bypasses the vendored work-sharing pool; use \
         `rayon::par_iter`/`join` so `RAYON_NUM_THREADS` and the ordered-collect \
         determinism contract apply (docs/PARALLELISM.md)"
            .to_string()
    })
}

/// Runs the nondeterministic-collection rule over non-test lines.
pub fn nondeterministic_collection(file: &CleanFile) -> Vec<Finding> {
    token_rule(
        file,
        Rule::NondeterministicCollection,
        &["HashMap", "HashSet"],
        |tok| {
            format!(
                "`{tok}` iteration order is nondeterministic; use `BTree{}` or a sorted drain",
                &tok[4..]
            )
        },
    )
}

/// Runs the wall-clock rule over non-test lines.
pub fn wall_clock(file: &CleanFile) -> Vec<Finding> {
    token_rule(file, Rule::WallClock, &WALL_CLOCK_TOKENS, |tok| {
        format!(
            "`{tok}` breaks reproducibility; simulators must use simulated time and seeded RNGs"
        )
    })
}

/// Shared scanner for simple token rules.
fn token_rule(
    file: &CleanFile,
    rule: Rule,
    tokens: &[&str],
    message: impl Fn(&str) -> String,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in tokens {
            let mut at = 0;
            while let Some(pos) = line.text[at..].find(tok) {
                let abs = at + pos;
                // Token boundary on the left for identifier-like tokens,
                // so e.g. `LinkedHashMap` or `MyInstant::nowhere` based
                // false positives cannot occur.
                let boundary = tok.starts_with(['.', '(']) || {
                    let before = line.text[..abs].chars().next_back();
                    !before.is_some_and(|c| c.is_alphanumeric() || c == '_')
                };
                if boundary {
                    findings.push(Finding {
                        rule,
                        line: idx + 1,
                        col: abs + 1,
                        message: message(tok),
                    });
                }
                at = abs + tok.len();
            }
        }
    }
    findings
}

/// Runs the let-underscore rule: `let _ = expr;` outside test code.
///
/// The wildcard-discard binding is how a `Result` disappears without a
/// trace — `let _ = tx.send(x);` compiles silently after the channel
/// closes. A plain `_` pattern followed by `=` is flagged; named
/// partial discards (`let _guard = ..`) and typed discards
/// (`let _: T = ..`, which document intent) are not.
pub fn let_underscore_result(file: &CleanFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pos, pat) in line.text.match_indices("let _") {
            // Left boundary: reject `outlet _`, `inlet _`, etc.
            let before = line.text[..pos].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            let rest = &line.text[pos + pat.len()..];
            // `_` must be the entire pattern: `let _x`/`let __` are named
            // bindings, `let _:` is a typed (deliberate) discard.
            if rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                continue;
            }
            let after = rest.trim_start();
            if after.starts_with('=') && !after.starts_with("==") {
                findings.push(Finding {
                    rule: Rule::LetUnderscoreResult,
                    line: idx + 1,
                    col: pos + 1,
                    message: "`let _ = ..` silently discards the value — and any `Err` in it; \
                              handle or propagate the `Result`, or make a deliberate discard \
                              explicit with `drop(..)`"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// Runs the bare-cast rule: ` as <numeric>` outside test code.
pub fn bare_cast(file: &CleanFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pos, _) in line.text.match_indices(" as ") {
            let rest = line.text[pos + 4..].trim_start();
            let target: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if CAST_TARGETS.contains(&target.as_str()) {
                findings.push(Finding {
                    rule: Rule::BareCast,
                    line: idx + 1,
                    col: pos + 1,
                    message: format!(
                        "bare `as {target}` cast in unit arithmetic; use `u64::from`/`f64::from` for lossless widening or the audited helpers in `nvmtypes::convert` (`usize_from`, `u64_from_usize`, `approx_f64`, `trunc_u64`, `try_u32`)"
                    ),
                });
            }
        }
    }
    findings
}

/// Runs the enum-wildcard rule: finds `match` blocks whose arm patterns
/// name a watched enum and which also contain an unguarded `_ =>` arm.
pub fn enum_wildcard(file: &CleanFile) -> Vec<Finding> {
    let text = &file.text;
    let bytes = text.as_bytes();
    let mut findings = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = text[search..].find("match") {
        let kw = search + rel;
        search = kw + 5;
        // Word boundaries: reject `rematch`, `match_all`, etc.
        let left_ok = kw == 0 || !(bytes[kw - 1].is_ascii_alphanumeric() || bytes[kw - 1] == b'_');
        let right_ok = bytes
            .get(kw + 5)
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || *c == b'_'));
        if !left_ok || !right_ok {
            continue;
        }
        // Find the arm block: first `{` at zero bracket/paren depth.
        let Some(open) = find_block_open(text, kw + 5) else {
            continue;
        };
        let Some(close) = find_matching_brace(text, open) else {
            continue;
        };
        let body = &text[open + 1..close];
        // A match is "watched" when it matches *on* a watched enum (arm
        // patterns name `Enum::Variant`) or *classifies into* one (arm
        // bodies produce `Enum::Variant`, e.g. a modulo or string-name
        // dispatch). Either way, a `_ =>` arm would let a new variant
        // slip through silently.
        let watched = WATCHED_ENUMS.iter().any(|e| {
            let needle = format!("{e}::");
            body.match_indices(&needle).any(|(at, _)| {
                at == 0 || {
                    let before = body[..at].chars().next_back();
                    !before.is_some_and(|c| c.is_alphanumeric() || c == '_')
                }
            })
        });
        if !watched {
            continue;
        }
        let arms = split_arms(body);
        for arm in &arms {
            let pat = arm.pattern.trim();
            if pat == "_" {
                let line = text[..open + 1 + arm.offset].matches('\n').count() + 1;
                if !line_in_test(file, line) {
                    findings.push(Finding {
                        rule: Rule::EnumWildcard,
                        line,
                        col: 0,
                        message: "wildcard `_ =>` arm on a watched enum; list every variant so new media kinds cannot silently fall through".to_string(),
                    });
                }
            }
        }
    }
    findings
}

fn line_in_test(file: &CleanFile, line: usize) -> bool {
    file.lines.get(line - 1).is_some_and(|l| l.in_test)
}

/// One match arm: its pattern text (before `=>`, guard excluded) and the
/// byte offset of the pattern start within the arm block.
struct Arm {
    pattern: String,
    offset: usize,
}

/// Finds the `{` opening the match's arm block, skipping over any
/// parens/brackets in the scrutinee expression. Struct-literal
/// scrutinees (`match Foo { .. } {`) are rare enough to ignore; `match`
/// in expression position with a brace-free scrutinee covers this
/// workspace.
fn find_block_open(text: &str, from: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, c) in text[from..].char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => return Some(from + i),
            ';' if depth == 0 => return None, // statement ended: not a match expr
            _ => {}
        }
    }
    None
}

/// Returns the index of the `}` matching the `{` at `open`.
fn find_matching_brace(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a match body into arms at depth-0 commas / arm boundaries and
/// extracts each arm's pattern (text before the top-level `=>`, guard
/// stripped).
fn split_arms(body: &str) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut depth = 0i64;
    let mut arm_start = 0usize;
    let mut arrow_at: Option<usize> = None;
    let mut block_body = false; // arm body is `{ ... }` — ends without comma
    let chars: Vec<(usize, char)> = body.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let (pos, c) = chars[i];
        match c {
            '(' | '[' | '{' => {
                if c == '{' && depth == 0 && arrow_at.is_some() {
                    block_body = true;
                }
                depth += 1;
            }
            ')' | ']' | '}' => {
                depth -= 1;
                if c == '}' && depth == 0 && block_body {
                    // End of a `=> { ... }` arm (trailing comma optional).
                    push_arm(body, arm_start, arrow_at.take(), &mut arms);
                    block_body = false;
                    // Skip an optional trailing comma.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j].1.is_whitespace() {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].1 == ',' {
                        i = j;
                    }
                    arm_start = chars.get(i + 1).map_or(body.len(), |&(p, _)| p);
                }
            }
            '=' if depth == 0 && arrow_at.is_none() => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('>') {
                    arrow_at = Some(pos);
                    i += 1;
                }
            }
            ',' if depth == 0 && arrow_at.is_some() && !block_body => {
                push_arm(body, arm_start, arrow_at.take(), &mut arms);
                arm_start = chars.get(i + 1).map_or(body.len(), |&(p, _)| p);
            }
            _ => {}
        }
        i += 1;
    }
    // Final arm without trailing comma.
    push_arm(body, arm_start, arrow_at, &mut arms);
    arms
}

fn push_arm(body: &str, start: usize, arrow: Option<usize>, arms: &mut Vec<Arm>) {
    let Some(arrow) = arrow else { return };
    let raw = &body[start..arrow];
    // Strip a guard: pattern `P if cond` — find a top-level ` if `.
    let pattern = match find_top_level_if(raw) {
        Some(at) => &raw[..at],
        None => raw,
    };
    // Anchor the offset at the first pattern char, not the whitespace
    // (often a newline) separating it from the previous arm.
    let lead = raw.len() - raw.trim_start().len();
    arms.push(Arm {
        pattern: pattern.trim().to_string(),
        offset: start + lead,
    });
}

/// Finds a top-level ` if ` (guard separator) in an arm pattern.
fn find_top_level_if(pat: &str) -> Option<usize> {
    let mut depth = 0i64;
    let bytes = pat.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'i' if depth == 0
                && i > 0
                && bytes[i - 1].is_ascii_whitespace()
                && pat[i..].starts_with("if")
                && bytes.get(i + 2).is_none_or(|c| c.is_ascii_whitespace()) =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    #[test]
    fn no_panic_fires_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t {\n fn g() { y.unwrap(); }\n}\n";
        let f = clean_source(src);
        let hits = no_panic(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn no_panic_ignores_comments_and_strings() {
        let f = clean_source("// x.unwrap()\nlet s = \"panic!(\"; \n");
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn println_rule_counts_each_macro_once() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n// println!(\"z\")\n#[cfg(test)]\nmod t {\n fn g() { println!(\"t\"); }\n}\n";
        let f = clean_source(src);
        let hits = no_println_in_lib(&f);
        assert_eq!(hits.len(), 2, "eprintln must not double-count as println");
        assert!(hits[0].message.contains("`println!`"));
        assert!(hits[1].message.contains("`eprintln!`"));
    }

    #[test]
    fn spawn_rule_sees_direct_spawns_only() {
        let src = "fn f() { std::thread::spawn(|| {}); scope.spawn(|| {}); }\n\
                   // thread::spawn(..)\n\
                   #[cfg(test)]\nmod t {\n fn g() { std::thread::spawn(|| {}); }\n}\n";
        let f = clean_source(src);
        let hits = thread_spawn(&f);
        assert_eq!(hits.len(), 1, "scoped spawns, comments and tests exempt");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn collection_rule_spares_btree() {
        let f = clean_source("use std::collections::{BTreeMap, HashMap};\n");
        let hits = nondeterministic_collection(&f);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn cast_rule_sees_numeric_targets_only() {
        let f = clean_source("let a = x as u64; let b = y as MyType; let c = z as u8;\n");
        let hits = bare_cast(&f);
        assert_eq!(hits.len(), 1, "only `as u64` is a flagged target");
    }

    #[test]
    fn let_underscore_fires_on_wildcard_discards_only() {
        let src = "fn f() {\n let _ = tx.send(1);\n let _guard = lock();\n let _: u32 = g();\n let x = h();\n}\n";
        let f = clean_source(src);
        let hits = let_underscore_result(&f);
        assert_eq!(hits.len(), 1, "only the bare `let _ =` discard");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn let_underscore_exempts_tests_comments_and_strings() {
        let src = "// let _ = a();\nconst S: &str = \"let _ = b()\";\n#[cfg(test)]\nmod t {\n fn g() { let _ = c(); }\n}\n";
        let f = clean_source(src);
        assert!(let_underscore_result(&f).is_empty());
    }

    #[test]
    fn let_underscore_respects_word_boundaries() {
        let f = clean_source("fn f() { outlet _ = 1; }\n");
        assert!(let_underscore_result(&f).is_empty());
    }

    #[test]
    fn wildcard_on_watched_enum_is_flagged() {
        let src = "fn f(k: NvmKind) -> u32 {\n match k {\n  NvmKind::Slc => 1,\n  _ => 0,\n }\n}\n";
        let f = clean_source(src);
        let hits = enum_wildcard(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn wildcard_on_unwatched_match_is_fine() {
        let src = "fn f(n: u8) -> u32 {\n match n {\n  0 => 1,\n  _ => 0,\n }\n}\n";
        let f = clean_source(src);
        assert!(enum_wildcard(&f).is_empty());
    }

    #[test]
    fn exhaustive_watched_match_is_fine() {
        let src =
            "fn f(k: IoOp) -> u32 {\n match k {\n  IoOp::Read => 1,\n  IoOp::Write => 2,\n }\n}\n";
        let f = clean_source(src);
        assert!(enum_wildcard(&f).is_empty());
    }

    #[test]
    fn guarded_arms_and_block_bodies_parse() {
        let src = "fn f(k: OpKind, n: u8) -> u32 {\n match (k, n) {\n  (OpKind::Read, x) if x > 3 => { 1 }\n  (OpKind::Write, _) => 2,\n  _ => 3,\n }\n}\n";
        let f = clean_source(src);
        let hits = enum_wildcard(&f);
        assert_eq!(hits.len(), 1, "the lone top-level `_` arm");
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn classification_into_watched_enum_is_flagged() {
        // Matching *on* an integer but producing a watched enum: a new
        // variant (e.g. a 4-bit cell class) would silently fall through.
        let src = "fn f(i: u32) -> PageClass {\n match i % 3 {\n  0 => PageClass::Lsb,\n  1 => PageClass::Csb,\n  _ => PageClass::Msb,\n }\n}\n";
        let f = clean_source(src);
        let hits = enum_wildcard(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn nested_tuple_underscore_is_not_a_wildcard_arm() {
        let src = "fn f(k: IoOp) -> u32 {\n match (k, 1) {\n  (IoOp::Read, _) => 1,\n  (IoOp::Write, _) => 2,\n }\n}\n";
        let f = clean_source(src);
        assert!(enum_wildcard(&f).is_empty());
    }
}
