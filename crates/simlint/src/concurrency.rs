//! Concurrency-safety passes: atomic publication ordering and the
//! workspace lock-acquisition order.
//!
//! Both passes gate the lock-free roadmap (docs/CONCURRENCY.md): the
//! model checker in `crates/simcheck` proves specific protocols correct
//! by exhaustive interleaving search, and these passes keep *unproven*
//! concurrency patterns from landing silently. They are never
//! allowlistable — a publication race or a lock-order cycle is a bug,
//! not debt.
//!
//! ## `atomic_ordering`
//!
//! Flags `Ordering::Relaxed` atomic accesses that carry *data* between
//! threads, where `Relaxed` provides no happens-before edge:
//!
//! * **publish**: a `store(_, Relaxed)` preceded (in the same function)
//!   by a write to some other location — the classic unsynchronized
//!   flag/data publication; the store needs `Release`.
//! * **consume**: a `load(Relaxed)` guarding an `if`/`while` whose body
//!   reads some other location — the matching consumer side; the load
//!   needs `Acquire`.
//!
//! Pure counters and standalone flags (no foreign write before the
//! store, no foreign read behind the load) are exactly the audited
//! `Relaxed` patterns in `vendor/rayon` and stay clean. A `Relaxed`
//! that simcheck has *proved* safe belongs in a model-checked protocol
//! (see `rayon::chunk_claim_protocol!`), not inline.
//!
//! ## `lock_order`
//!
//! Builds the workspace-wide lock-acquisition graph: an edge `a → b`
//! whenever lock `b` is acquired while `a` is held — directly, or
//! through a call chain (function summaries over the symbol index, to a
//! fixpoint). Any cycle in the graph is an AB-BA deadlock waiting for
//! the right interleaving; every edge on a cycle is reported at its
//! acquisition site.
//!
//! Locks are identified by *name* (field, local, or `Self` type for
//! `self.lock()` helpers), which is heuristic but deterministic:
//! distinct mutexes sharing a name can false-positive, and aliased
//! mutexes under different names can false-negative. Re-acquiring the
//! same name is not reported (self-edges are dropped): that is a
//! runtime single-thread deadlock, which simcheck's `Deadlock`
//! detection exhibits with a trace, not a static order inversion.
//! `drop(guard)` releases the binding; guards bound by `let` live to
//! the end of their block.

use crate::ast::{Arm, Block, Expr, ExprKind, FnDef, Item, ItemKind, Stmt};
use crate::parser::Span;
use crate::resolve::{FileAst, Index};
use crate::rules::{Finding, Rule};
use crate::Located;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that mutate their receiver: treated as data writes the
/// publish check can pair with a later `Relaxed` store.
const WRITE_METHODS: [&str; 6] = [
    "set",
    "push",
    "insert",
    "write",
    "extend",
    "copy_from_slice",
];

/// Methods that observe their receiver: treated as data reads the
/// consume check can pair with a guarding `Relaxed` load.
const READ_METHODS: [&str; 4] = ["get", "read", "with", "len"];

/// Runs both passes over the parsed workspace. `atomic_scope` /
/// `lock_scope` filter which files *findings* may land in; the lock
/// graph itself is built workspace-wide so cross-crate cycles are seen.
pub fn run(
    files: &[FileAst],
    index: &Index,
    atomic_scope: &dyn Fn(&str) -> bool,
    lock_scope: &dyn Fn(&str) -> bool,
) -> Vec<Located> {
    let mut out = atomic_ordering(files, atomic_scope);
    out.extend(lock_order(files, index, lock_scope));
    out
}

/// Walks non-test fns with their canonical path and enclosing
/// `impl` type (for naming `self` receivers).
fn visit_fns(
    items: &[Item],
    module: &[String],
    self_ty: Option<&str>,
    file: &FileAst,
    f: &mut impl FnMut(&FnDef, Option<&str>, String),
) {
    for item in items {
        if item.cfg_test || file.line_in_test(item.span.line) {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(fd) => {
                let mut segs = module.to_vec();
                if let Some(ty) = self_ty {
                    if !ty.is_empty() {
                        segs.push(ty.to_string());
                    }
                }
                segs.push(fd.name.clone());
                f(fd, self_ty, segs.join("::"));
            }
            ItemKind::Mod { name, items } => {
                let mut sub = module.to_vec();
                sub.push(name.clone());
                visit_fns(items, &sub, None, file, f);
            }
            ItemKind::Impl { self_ty, items } => {
                visit_fns(items, module, Some(self_ty), file, f);
            }
            ItemKind::Trait { items, .. } => visit_fns(items, module, None, file, f),
            _ => {}
        }
    }
}

/// Best-effort name of the location an access expression designates:
/// the leaf field name, the local/static identifier, or (for a bare
/// `self` receiver) the enclosing `impl` type.
fn place_name(expr: &Expr, self_ty: Option<&str>) -> Option<String> {
    match &expr.kind {
        ExprKind::Path(segs) => match segs.last().map(String::as_str) {
            Some("self") => Some(self_ty.unwrap_or("self").to_string()),
            Some(last) => Some(last.to_string()),
            None => None,
        },
        ExprKind::Field { name, .. } => Some(name.clone()),
        ExprKind::MethodCall { method, .. } => Some(method.clone()),
        ExprKind::Unary { operand, .. } => place_name(operand, self_ty),
        ExprKind::Index { base, .. } => place_name(base, self_ty),
        ExprKind::Try(inner) => place_name(inner, self_ty),
        _ => None,
    }
}

/// Is this expression literally `Ordering::Relaxed` (any path prefix)?
fn is_relaxed(expr: &Expr) -> bool {
    matches!(&expr.kind, ExprKind::Path(segs) if segs.last().map(String::as_str) == Some("Relaxed"))
}

// ---------------------------------------------------------------------
// atomic_ordering
// ---------------------------------------------------------------------

/// One ordered memory access the publish check cares about.
enum Access {
    /// A write to `place` (assignment or mutating method call).
    Write(String),
    /// `place.store(_, Ordering::Relaxed)`.
    RelaxedStore(String, Span),
}

fn atomic_ordering(files: &[FileAst], in_scope: &dyn Fn(&str) -> bool) -> Vec<Located> {
    let mut out = Vec::new();
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        let mut findings: Vec<Finding> = Vec::new();
        visit_fns(
            &file.ast.items,
            &file.module,
            None,
            file,
            &mut |fd, self_ty, _| {
                let Some(body) = &fd.body else { return };
                check_publish(body, self_ty, &mut findings);
                check_consume_block(body, self_ty, &mut findings);
            },
        );
        findings.sort_by_key(|f| (f.line, f.col));
        let mut seen = BTreeSet::new();
        for finding in findings {
            if seen.insert((finding.line, finding.col, finding.message.clone())) {
                out.push(Located {
                    path: file.path.clone(),
                    finding,
                });
            }
        }
    }
    out
}

/// Publish side: a `Relaxed` store preceded by a write elsewhere.
fn check_publish(body: &Block, self_ty: Option<&str>, findings: &mut Vec<Finding>) {
    let mut accesses = Vec::new();
    collect_accesses_block(body, self_ty, &mut accesses);
    let mut written: Vec<String> = Vec::new();
    for access in accesses {
        match access {
            Access::Write(place) => written.push(place),
            Access::RelaxedStore(place, span) => {
                if let Some(prior) = written.iter().find(|w| **w != place) {
                    findings.push(Finding {
                        rule: Rule::AtomicOrdering,
                        line: span.line,
                        col: span.col,
                        message: format!(
                            "`{place}.store(_, Ordering::Relaxed)` publishes the earlier \
                             write to `{prior}` without a release edge; use \
                             `Ordering::Release` (and `Acquire` on the readers), or move \
                             the protocol into a simcheck-verified module"
                        ),
                    });
                }
            }
        }
    }
}

fn collect_accesses_block(block: &Block, self_ty: Option<&str>, out: &mut Vec<Access>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => collect_accesses(e, self_ty, out),
            Stmt::Expr { expr, .. } => collect_accesses(expr, self_ty, out),
            _ => {}
        }
    }
}

fn collect_accesses(expr: &Expr, self_ty: Option<&str>, out: &mut Vec<Access>) {
    match &expr.kind {
        ExprKind::MethodCall { recv, method, args } => {
            collect_accesses(recv, self_ty, out);
            for arg in args {
                collect_accesses(arg, self_ty, out);
            }
            let Some(place) = place_name(recv, self_ty) else {
                return;
            };
            if method == "store" && args.len() == 2 && is_relaxed(&args[1]) {
                out.push(Access::RelaxedStore(place, expr.span));
            } else if WRITE_METHODS.contains(&method.as_str()) {
                out.push(Access::Write(place));
            }
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            collect_accesses(rhs, self_ty, out);
            if let Some(place) = place_name(lhs, self_ty) {
                out.push(Access::Write(place));
            }
        }
        _ => {
            for_each_child(expr, &mut |child| collect_accesses(child, self_ty, out));
        }
    }
}

/// Consume side: a `Relaxed` load guarding a branch that reads other
/// state.
fn check_consume_block(block: &Block, self_ty: Option<&str>, findings: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => check_consume(e, self_ty, findings),
            Stmt::Expr { expr, .. } => check_consume(expr, self_ty, findings),
            _ => {}
        }
    }
}

fn check_consume(expr: &Expr, self_ty: Option<&str>, findings: &mut Vec<Finding>) {
    if let ExprKind::If { cond, then, .. } | ExprKind::While { cond, body: then } = &expr.kind {
        let mut loads = Vec::new();
        relaxed_loads(cond, self_ty, &mut loads);
        for (flag, span) in loads {
            if let Some(read) = foreign_read(then, &flag, self_ty) {
                findings.push(Finding {
                    rule: Rule::AtomicOrdering,
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "`{flag}.load(Ordering::Relaxed)` guards a read of `{read}` \
                         without an acquire edge; use `Ordering::Acquire` (and \
                         `Release` on the writer), or move the protocol into a \
                         simcheck-verified module"
                    ),
                });
            }
        }
    }
    for_each_child(expr, &mut |child| check_consume(child, self_ty, findings));
}

/// Collects `place.load(Ordering::Relaxed)` occurrences in `expr`.
fn relaxed_loads(expr: &Expr, self_ty: Option<&str>, out: &mut Vec<(String, Span)>) {
    if let ExprKind::MethodCall { recv, method, args } = &expr.kind {
        if method == "load" && args.len() == 1 && is_relaxed(&args[0]) {
            if let Some(place) = place_name(recv, self_ty) {
                out.push((place, expr.span));
            }
        }
    }
    for_each_child(expr, &mut |child| relaxed_loads(child, self_ty, out));
}

/// Finds a read of some place other than `flag` inside `block`: a field
/// access or an observing method call.
fn foreign_read(block: &Block, flag: &str, self_ty: Option<&str>) -> Option<String> {
    let mut found = None;
    let mut visit = |expr: &Expr| {
        let place = match &expr.kind {
            ExprKind::Field { name, .. } => Some(name.clone()),
            ExprKind::MethodCall { recv, method, .. }
                if READ_METHODS.contains(&method.as_str()) =>
            {
                place_name(recv, self_ty)
            }
            _ => None,
        };
        if let Some(place) = place {
            if place != flag && found.is_none() {
                found = Some(place);
            }
        }
    };
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => walk_exprs(e, &mut visit),
            Stmt::Expr { expr, .. } => walk_exprs(expr, &mut visit),
            _ => {}
        }
    }
    found
}

/// Applies `f` to `expr` and every descendant expression.
fn walk_exprs(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    for_each_child(expr, &mut |child| walk_exprs(child, f));
}

/// Invokes `f` on each direct child expression (blocks included via
/// their statements).
fn block_children(b: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => f(e),
            Stmt::Expr { expr, .. } => f(expr),
            _ => {}
        }
    }
}

fn for_each_child(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    match &expr.kind {
        ExprKind::Path(_) | ExprKind::Lit(_) => {}
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter().for_each(f);
        }
        ExprKind::MethodCall { recv, args, .. } => {
            f(recv);
            args.iter().for_each(f);
        }
        ExprKind::Field { base, .. } => f(base),
        ExprKind::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { operand, .. } => f(operand),
        ExprKind::Cast { operand, .. } => f(operand),
        ExprKind::Macro { args, .. } => args.iter().for_each(f),
        ExprKind::Match { scrutinee, arms } => {
            f(scrutinee);
            for Arm { guard, body, .. } in arms {
                if let Some(g) = guard {
                    f(g);
                }
                f(body);
            }
        }
        ExprKind::If { cond, then, els } => {
            f(cond);
            block_children(then, f);
            if let Some(e) = els {
                f(e);
            }
        }
        ExprKind::While { cond, body } => {
            f(cond);
            block_children(body, f);
        }
        ExprKind::For { iter, body, .. } => {
            f(iter);
            block_children(body, f);
        }
        ExprKind::Loop { body } => block_children(body, f),
        ExprKind::Block(b) => block_children(b, f),
        ExprKind::Closure { body, .. } => f(body),
        ExprKind::Try(inner) => f(inner),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) | ExprKind::Unknown(items) => {
            items.iter().for_each(f);
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, e) in fields {
                f(e);
            }
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Return(e) | ExprKind::Break(e) => {
            if let Some(e) = e {
                f(e);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                f(e);
            }
            if let Some(e) = hi {
                f(e);
            }
        }
    }
}

// ---------------------------------------------------------------------
// lock_order
// ---------------------------------------------------------------------

/// One `a → b` acquisition-order edge with its recorded sites.
type EdgeMap = BTreeMap<(String, String), BTreeSet<(String, usize, usize)>>;

fn lock_order(files: &[FileAst], index: &Index, in_scope: &dyn Fn(&str) -> bool) -> Vec<Located> {
    // Fixpoint over "locks this fn may acquire" summaries, so an edge is
    // also drawn when the inner acquisition happens inside a callee.
    let mut summaries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for _ in 0..8 {
        let mut changed = false;
        for file in files {
            visit_fns(
                &file.ast.items,
                &file.module,
                None,
                file,
                &mut |fd, self_ty, path| {
                    let Some(body) = &fd.body else { return };
                    let mut acquired = BTreeSet::new();
                    collect_lock_summary(body, self_ty, file, index, &summaries, &mut acquired);
                    let entry = summaries.entry(path).or_default();
                    if !acquired.is_subset(entry) {
                        entry.extend(acquired);
                        changed = true;
                    }
                },
            );
        }
        if !changed {
            break;
        }
    }
    // Edge collection: workspace-wide, so cross-crate inversions meet.
    let mut edges = EdgeMap::new();
    for file in files {
        visit_fns(
            &file.ast.items,
            &file.module,
            None,
            file,
            &mut |fd, self_ty, _| {
                let Some(body) = &fd.body else { return };
                let mut walker = LockWalker {
                    file,
                    index,
                    summaries: &summaries,
                    self_ty,
                    held: Vec::new(),
                    edges: &mut edges,
                };
                walker.block(body);
            },
        );
    }
    // Cycle check: report every edge that sits on a cycle, at each of
    // its recorded in-scope sites.
    let graph: BTreeMap<&str, BTreeSet<&str>> = edges.keys().fold(
        BTreeMap::new(),
        |mut g: BTreeMap<&str, BTreeSet<&str>>, (a, b)| {
            g.entry(a).or_default().insert(b);
            g
        },
    );
    let mut out = Vec::new();
    for ((a, b), sites) in &edges {
        let Some(path_back) = reach(&graph, b, a) else {
            continue;
        };
        let cycle: Vec<&str> = std::iter::once(a.as_str())
            .chain(path_back.iter().copied())
            .collect();
        for (file, line, col) in sites {
            if !in_scope(file) {
                continue;
            }
            out.push(Located {
                path: file.clone(),
                finding: Finding {
                    rule: Rule::LockOrder,
                    line: *line,
                    col: *col,
                    message: format!(
                        "lock `{b}` is acquired while `{a}` is held, closing the \
                         acquisition-order cycle {}; two threads entering it from \
                         opposite ends deadlock",
                        cycle.join(" -> ")
                    ),
                },
            });
        }
    }
    out
}

/// BFS from `from` to `to`; returns the full node path `[from, .., to]`
/// if reachable.
fn reach<'a>(
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse(); // now `[from, .., to]`
            return Some(path);
        }
        for &next in graph.get(node).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Direct + transitive lock names a function body may acquire.
fn collect_lock_summary(
    block: &Block,
    self_ty: Option<&str>,
    file: &FileAst,
    index: &Index,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    out: &mut BTreeSet<String>,
) {
    let mut visit = |expr: &Expr| match &expr.kind {
        ExprKind::MethodCall { recv, method, .. } if method == "lock" => {
            if let Some(name) = place_name(recv, self_ty) {
                out.insert(name);
            }
        }
        _ => {
            if let Some(path) = callee_path(expr, file, index) {
                if let Some(locks) = summaries.get(&path) {
                    out.extend(locks.iter().cloned());
                }
            }
        }
    };
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => walk_exprs(e, &mut visit),
            Stmt::Expr { expr, .. } => walk_exprs(expr, &mut visit),
            _ => {}
        }
    }
}

/// Resolves a call expression to its canonical target path, if the
/// symbol index knows it unambiguously.
fn callee_path(expr: &Expr, file: &FileAst, index: &Index) -> Option<String> {
    let resolved = match &expr.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => file.resolve(segs),
            _ => return None,
        },
        // Method targets resolve by bare name only when unique
        // workspace-wide; ambiguity keeps the pass quiet.
        ExprKind::MethodCall { method, .. } if method != "lock" => vec![method.clone()],
        _ => return None,
    };
    index.lookup(&resolved).map(|sig| sig.path.clone())
}

/// Statement walker tracking which locks are held, drawing an edge for
/// every acquisition (direct or via callee summary) under a held lock.
struct LockWalker<'a> {
    file: &'a FileAst,
    index: &'a Index,
    summaries: &'a BTreeMap<String, BTreeSet<String>>,
    self_ty: Option<&'a str>,
    /// Held locks as `(guard binding, lock name)`.
    held: Vec<(Option<String>, String)>,
    edges: &'a mut EdgeMap,
}

impl LockWalker<'_> {
    fn block(&mut self, block: &Block) {
        let depth = self.held.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    name,
                    init: Some(init),
                    ..
                } => {
                    if let ExprKind::MethodCall { recv, method, args } = &init.kind {
                        if method == "lock" && args.is_empty() {
                            // `let guard = place.lock();` — held until the
                            // end of this block or an explicit `drop`.
                            if let Some(lock) = place_name(recv, self.self_ty) {
                                self.acquire(&lock, init.span);
                                self.held.push((name.clone(), lock));
                                continue;
                            }
                        }
                    }
                    self.expr(init);
                }
                Stmt::Expr { expr, .. } => {
                    if let Some(guard) = dropped_guard(expr) {
                        if let Some(pos) = self
                            .held
                            .iter()
                            .rposition(|(g, _)| g.as_deref() == Some(guard))
                        {
                            self.held.remove(pos);
                            continue;
                        }
                    }
                    self.expr(expr);
                }
                Stmt::Let { init: None, .. } | Stmt::Item(_) => {}
            }
        }
        self.held.truncate(depth);
    }

    fn expr(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::MethodCall { recv, method, args } if method == "lock" => {
                self.expr(recv);
                for arg in args {
                    self.expr(arg);
                }
                // Temporary guard: dropped at the end of the statement,
                // but its acquisition still orders against held locks.
                if let Some(lock) = place_name(recv, self.self_ty) {
                    self.acquire(&lock, expr.span);
                }
            }
            ExprKind::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            ExprKind::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::Block(b) => self.block(b),
            _ => {
                for_each_child(expr, &mut |child| self.expr(child));
                if let Some(path) = callee_path(expr, self.file, self.index) {
                    if let Some(locks) = self.summaries.get(&path) {
                        for lock in locks.clone() {
                            self.acquire(&lock, expr.span);
                        }
                    }
                }
            }
        }
    }

    /// Records `held → lock` edges (same-name re-acquisition excluded).
    fn acquire(&mut self, lock: &str, span: Span) {
        for (_, held) in &self.held {
            if held != lock {
                self.edges
                    .entry((held.clone(), lock.to_string()))
                    .or_default()
                    .insert((self.file.path.clone(), span.line, span.col));
            }
        }
    }
}

/// Matches `drop(guard)` and returns the guard name.
fn dropped_guard(expr: &Expr) -> Option<&str> {
    let ExprKind::Call { callee, args } = &expr.kind else {
        return None;
    };
    let ExprKind::Path(segs) = &callee.kind else {
        return None;
    };
    if segs.last().map(String::as_str) != Some("drop") || args.len() != 1 {
        return None;
    }
    match &args[0].kind {
        ExprKind::Path(arg) if arg.len() == 1 => arg.first().map(String::as_str),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;
    use crate::resolve::{FileAst, Index};

    fn scan(src: &str) -> Vec<Located> {
        let file = FileAst::parse("crates/ssd/src/lib.rs", "ssd", &clean_source(src));
        let files = [file];
        let index = Index::build(&files);
        run(&files, &index, &|_| true, &|_| true)
    }

    #[test]
    fn relaxed_publish_and_consume_fire_and_strong_orders_do_not() {
        let found = scan(
            "pub fn publish(d: &mut Slot, ready: &AtomicBool) {\n\
             d.value = 7;\n\
             ready.store(true, Ordering::Relaxed);\n\
             }\n\
             pub fn consume(ready: &AtomicBool, d: &Slot) -> u64 {\n\
             if ready.load(Ordering::Relaxed) { d.value } else { 0 }\n\
             }\n\
             pub fn fine(d: &mut Slot, ready: &AtomicBool) {\n\
             d.value = 7;\n\
             ready.store(true, Ordering::Release);\n\
             if ready.load(Ordering::Acquire) { let _v = d.value; }\n\
             }\n\
             pub fn counter(hits: &AtomicUsize) {\n\
             hits.store(0, Ordering::Relaxed);\n\
             if hits.load(Ordering::Relaxed) { return; }\n\
             }\n",
        );
        let atomic: Vec<_> = found
            .iter()
            .filter(|l| l.finding.rule == Rule::AtomicOrdering)
            .collect();
        assert_eq!(atomic.len(), 2, "{atomic:?}");
        assert!(atomic[0].finding.message.contains("publishes"));
        assert!(atomic[1].finding.message.contains("guards a read"));
    }

    #[test]
    fn aba_cycle_is_reported_and_drop_releases() {
        let found = scan(
            "pub fn fwd(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let ga = a.lock();\n\
             let gb = b.lock();\n\
             drop(gb);\n\
             drop(ga);\n\
             }\n\
             pub fn bwd(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let gb = b.lock();\n\
             let ga = a.lock();\n\
             drop(ga);\n\
             drop(gb);\n\
             }\n\
             pub fn released(a: &Mutex<u32>, c: &Mutex<u32>) {\n\
             let ga = a.lock();\n\
             drop(ga);\n\
             let gc = c.lock();\n\
             drop(gc);\n\
             }\n",
        );
        let locks: Vec<_> = found
            .iter()
            .filter(|l| l.finding.rule == Rule::LockOrder)
            .collect();
        assert_eq!(locks.len(), 2, "one per edge on the cycle: {locks:?}");
        assert!(locks[0].finding.message.contains("cycle"));
        // `c` never participates in a cycle (drop released `a` first).
        assert!(locks.iter().all(|l| !l.finding.message.contains("`c`")));
    }

    #[test]
    fn interprocedural_edges_via_summaries() {
        let found = scan(
            "fn helper(b: &Mutex<u32>) { let gb = b.lock(); drop(gb); }\n\
             pub fn outer(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let ga = a.lock();\n\
             helper(b);\n\
             drop(ga);\n\
             }\n\
             pub fn inverse(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let gb = b.lock();\n\
             let ga = a.lock();\n\
             drop(ga);\n\
             drop(gb);\n\
             }\n",
        );
        let locks: Vec<_> = found
            .iter()
            .filter(|l| l.finding.rule == Rule::LockOrder)
            .collect();
        assert_eq!(locks.len(), 2, "call-site edge + direct edge: {locks:?}");
    }
}
