//! Workspace-wide name resolution: module paths, `use`-maps, and a
//! symbol index of function signatures across all crates.
//!
//! Canonical paths use the *directory* names under `crates/` (`fs`,
//! `core`, `trace`, ...), with the published import names
//! (`oocfs`, `oocnvm_core`, `ooctrace`, ...) normalised onto them, so
//! a call in `ooc` to `oocfs::transform::run` and the definition in
//! `crates/fs/src/transform.rs` meet at the same key.

use crate::ast::{self, File, FnDef, Item, ItemKind, Param, TyInfo, UseEntry};
use crate::lexer::CleanFile;
use crate::parser::{self, Span};
use std::collections::BTreeMap;

/// Maps a crate's import name (as written in `use` paths) to its
/// directory name under `crates/` (the canonical key). Identity for
/// everything not listed.
pub fn canonical_crate(import_name: &str) -> &str {
    match import_name {
        "oocfs" => "fs",
        "ooctrace" => "trace",
        "oocnvm_core" => "core",
        "oocnvm_bench" => "bench",
        _ => import_name,
    }
}

/// Computes the module path for a workspace-relative file path:
/// `crates/fs/src/catalog.rs` → `[fs, catalog]`,
/// `crates/ooc/src/dooc/mod.rs` → `[ooc, dooc]`,
/// `src/reliability.rs` → `[oocnvm, reliability]`.
/// Binary roots (`src/bin/x.rs`, `src/main.rs`) are their own crate
/// roots but are keyed under the owning crate for uniqueness.
pub fn module_path(path: &str, krate: &str) -> Vec<String> {
    let tail = path
        .rsplit_once("src/")
        .map(|(_, t)| t)
        .unwrap_or(path)
        .trim_end_matches(".rs");
    let mut segs = vec![krate.to_string()];
    for part in tail.split('/') {
        match part {
            "lib" | "main" | "mod" | "" => {}
            other => segs.push(other.to_string()),
        }
    }
    segs
}

/// One parsed in-scope file, with everything the semantic passes need.
pub struct FileAst {
    /// Workspace-relative path.
    pub path: String,
    /// Crate directory name (see [`crate::source_crate`]).
    pub krate: String,
    /// Module path segments (starting with the crate name).
    pub module: Vec<String>,
    /// The parsed item tree.
    pub ast: File,
    /// Per-line `#[cfg(test)]` flags (1-based line `n` is `in_test[n-1]`).
    pub in_test: Vec<bool>,
    /// Import map: binding name → canonical full path.
    pub uses: BTreeMap<String, Vec<String>>,
}

impl FileAst {
    /// Parses one cleaned file into its AST + import map.
    pub fn parse(path: &str, krate: &str, clean: &CleanFile) -> FileAst {
        let trees = parser::parse_trees(clean);
        let file = ast::parse_file(&trees);
        let module = module_path(path, krate);
        let mut uses = BTreeMap::new();
        collect_uses(&file.items, krate, &module, &mut uses);
        FileAst {
            path: path.to_string(),
            krate: krate.to_string(),
            module,
            ast: file,
            in_test: clean.lines.iter().map(|l| l.in_test).collect(),
            uses,
        }
    }

    /// Is the 1-based line inside a `#[cfg(test)]` region?
    pub fn line_in_test(&self, line: usize) -> bool {
        line >= 1 && self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Resolves an expression path to canonical segments:
    /// * first segment found in the `use`-map → substituted;
    /// * `crate`/`self`/`super` → expanded against this module;
    /// * known import names → canonicalised;
    /// * anything else (locals, inherent names) → unchanged.
    pub fn resolve(&self, segs: &[String]) -> Vec<String> {
        let Some(first) = segs.first() else {
            return Vec::new();
        };
        let mut out: Vec<String> = match first.as_str() {
            "crate" => vec![self.krate.clone()],
            "self" => self.module.clone(),
            "super" => {
                let mut m = self.module.clone();
                m.pop();
                m
            }
            _ => {
                if let Some(full) = self.uses.get(first) {
                    full.clone()
                } else {
                    vec![canonical_crate(first).to_string()]
                }
            }
        };
        out.extend(segs.iter().skip(1).cloned());
        out
    }
}

fn collect_uses(
    items: &[Item],
    krate: &str,
    module: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Use(entries) => {
                for UseEntry { path, alias } in entries {
                    if alias.is_empty() || path.is_empty() {
                        continue; // glob imports: unresolvable, skip
                    }
                    let mut canon: Vec<String> = Vec::new();
                    match path[0].as_str() {
                        "crate" => canon.push(krate.to_string()),
                        "self" => canon.extend(module.iter().cloned()),
                        "super" => {
                            canon.extend(module.iter().cloned());
                            canon.pop();
                        }
                        first => canon.push(canonical_crate(first).to_string()),
                    }
                    canon.extend(path.iter().skip(1).cloned());
                    out.insert(alias.clone(), canon);
                }
            }
            ItemKind::Mod { items, .. } => {
                // Nested mod uses land in the same flat map: good enough
                // for rule purposes (shadowing across mods is rare).
                collect_uses(items, krate, module, out);
            }
            _ => {}
        }
    }
}

/// A function signature in the workspace symbol index.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Canonical path, e.g. `fs::transform::run` or `ssd::Device::read`.
    pub path: String,
    /// Bare function name.
    pub name: String,
    /// Parameters (`self` receivers included).
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Option<TyInfo>,
    /// Declared `pub`.
    pub is_pub: bool,
    /// Defining file (workspace-relative) and span, for diagnostics.
    pub file: String,
    /// Where the `fn` keyword sits.
    pub span: Span,
}

/// Workspace-wide symbol index of function signatures.
#[derive(Debug, Default)]
pub struct Index {
    /// Canonical path → signature.
    pub fns: BTreeMap<String, FnSig>,
    /// Bare name → canonical paths (for lenient lookup when the name is
    /// unambiguous workspace-wide).
    pub by_name: BTreeMap<String, Vec<String>>,
}

impl Index {
    /// Builds the index over parsed files.
    pub fn build(files: &[FileAst]) -> Index {
        let mut index = Index::default();
        for file in files {
            index.add_items(&file.ast.items, &file.module, None, file);
        }
        index
    }

    fn add_items(
        &mut self,
        items: &[Item],
        module: &[String],
        self_ty: Option<&str>,
        file: &FileAst,
    ) {
        for item in items {
            if item.cfg_test || file.line_in_test(item.span.line) {
                continue;
            }
            match &item.kind {
                ItemKind::Fn(fd) => self.add_fn(fd, module, self_ty, item.is_pub, file, item.span),
                ItemKind::Mod { name, items } => {
                    let mut sub = module.to_vec();
                    sub.push(name.clone());
                    self.add_items(items, &sub, None, file);
                }
                ItemKind::Impl { self_ty, items } => {
                    self.add_items(items, module, Some(self_ty), file);
                }
                ItemKind::Trait { items, .. } => {
                    self.add_items(items, module, None, file);
                }
                _ => {}
            }
        }
    }

    fn add_fn(
        &mut self,
        fd: &FnDef,
        module: &[String],
        self_ty: Option<&str>,
        is_pub: bool,
        file: &FileAst,
        span: Span,
    ) {
        let mut segs = module.to_vec();
        if let Some(ty) = self_ty {
            if !ty.is_empty() {
                segs.push(ty.to_string());
            }
        }
        segs.push(fd.name.clone());
        let path = segs.join("::");
        let sig = FnSig {
            path: path.clone(),
            name: fd.name.clone(),
            params: fd.params.clone(),
            ret: fd.ret.clone(),
            is_pub,
            file: file.path.clone(),
            span,
        };
        self.by_name
            .entry(fd.name.clone())
            .or_default()
            .push(path.clone());
        self.fns.insert(path, sig);
    }

    /// Looks up a *resolved* call path. Tries, in order: the exact
    /// canonical key; a suffix match (module prefixes are often
    /// partial, e.g. `sweep::Sweep::run` vs `bench::sweep::Sweep::run`);
    /// and finally the unambiguous bare name.
    pub fn lookup(&self, resolved: &[String]) -> Option<&FnSig> {
        if resolved.is_empty() {
            return None;
        }
        let key = resolved.join("::");
        if let Some(sig) = self.fns.get(&key) {
            return Some(sig);
        }
        if resolved.len() >= 2 {
            let suffix = format!("::{key}");
            let mut hit = None;
            for (path, sig) in &self.fns {
                if path.ends_with(&suffix) {
                    if hit.is_some() {
                        return None; // ambiguous
                    }
                    hit = Some(sig);
                }
            }
            if hit.is_some() {
                return hit;
            }
        }
        let name = resolved.last()?;
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => self.fns.get(only),
            _ => None,
        }
    }
}

/// Walks function definitions with their canonical path (the same
/// path construction as [`Index::build`]), skipping test-gated items.
/// The callback receives `(fn, canonical_path, is_pub, span)`.
pub fn visit_fns_with_path(
    items: &[Item],
    module: &[String],
    file: &FileAst,
    f: &mut impl FnMut(&FnDef, &String, bool, Span),
) {
    for item in items {
        if item.cfg_test || file.line_in_test(item.span.line) {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(fd) => {
                let mut segs = module.to_vec();
                segs.push(fd.name.clone());
                f(fd, &segs.join("::"), item.is_pub, item.span);
            }
            ItemKind::Mod { name, items } => {
                let mut sub = module.to_vec();
                sub.push(name.clone());
                visit_fns_with_path(items, &sub, file, f);
            }
            ItemKind::Impl { self_ty, items } => {
                let mut sub = module.to_vec();
                if !self_ty.is_empty() {
                    sub.push(self_ty.clone());
                }
                visit_fns_with_path(items, &sub, file, f);
            }
            ItemKind::Trait { items, .. } => visit_fns_with_path(items, module, file, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;

    fn file_ast(path: &str, krate: &str, src: &str) -> FileAst {
        FileAst::parse(path, krate, &clean_source(src))
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path("crates/fs/src/lib.rs", "fs"), vec!["fs"]);
        assert_eq!(
            module_path("crates/fs/src/catalog.rs", "fs"),
            vec!["fs", "catalog"]
        );
        assert_eq!(
            module_path("crates/ooc/src/dooc/mod.rs", "ooc"),
            vec!["ooc", "dooc"]
        );
        assert_eq!(
            module_path("src/reliability.rs", "oocnvm"),
            vec!["oocnvm", "reliability"]
        );
    }

    #[test]
    fn use_map_resolves_aliases_and_crate_names() {
        let f = file_ast(
            "crates/ooc/src/x.rs",
            "ooc",
            "use std::collections::HashMap as Fast;\nuse oocfs::transform;\nuse crate::store::Panel;\n",
        );
        assert_eq!(
            f.uses.get("Fast"),
            Some(&vec!["std".into(), "collections".into(), "HashMap".into()])
        );
        assert_eq!(
            f.uses.get("transform"),
            Some(&vec!["fs".into(), "transform".into()])
        );
        assert_eq!(
            f.uses.get("Panel"),
            Some(&vec!["ooc".into(), "store".into(), "Panel".into()])
        );
        // Resolution through the map.
        assert_eq!(
            f.resolve(&["transform".into(), "run".into()]),
            vec!["fs".to_string(), "transform".into(), "run".into()]
        );
        // Unresolved locals stay put.
        assert_eq!(f.resolve(&["x".into()]), vec!["x".to_string()]);
    }

    #[test]
    fn index_finds_fns_across_impls_and_mods() {
        let a = file_ast(
            "crates/fs/src/transform.rs",
            "fs",
            "pub struct T;\nimpl T {\n  pub fn run(&self, n_bytes: u64) -> Nanos { n_bytes }\n}\npub fn free(x: u64) -> u64 { x }\n",
        );
        let idx = Index::build(&[a]);
        let sig = idx
            .lookup(&["fs".into(), "transform".into(), "T".into(), "run".into()])
            .expect("impl fn indexed");
        assert!(sig.is_pub);
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[1].name, "n_bytes");
        assert_eq!(sig.ret.as_ref().map(|t| t.base.as_str()), Some("Nanos"));
        // Suffix lookup: partial module prefix.
        assert!(idx.lookup(&["T".into(), "run".into()]).is_some());
        // Unambiguous bare name.
        assert!(idx.lookup(&["free".into()]).is_some());
    }

    #[test]
    fn test_gated_fns_stay_out_of_the_index() {
        let a = file_ast(
            "crates/fs/src/x.rs",
            "fs",
            "#[cfg(test)]\nmod tests {\n  pub fn helper() {}\n}\npub fn real() {}\n",
        );
        let idx = Index::build(&[a]);
        assert!(idx.lookup(&["helper".into()]).is_none());
        assert!(idx.lookup(&["real".into()]).is_some());
    }
}
