//! CLI for `simlint`.
//!
//! ```text
//! cargo run -p simlint                 # gate: scan + check allowlist
//! cargo run -p simlint -- --list       # print every finding (allowed too)
//! cargo run -p simlint -- --json       # versioned findings export to stdout
//! cargo run -p simlint -- --baseline F # gate + diff against a committed baseline
//! cargo run -p simlint -- --write-baseline  # regenerate results/simlint.baseline.json
//! cargo run -p simlint -- --write-allow  # regenerate simlint.allow
//! cargo run -p simlint -- --root DIR   # scan a different tree
//! ```
//!
//! The JSON export (schema `oocnvm.simlint/3`; v2 added the
//! `atomic_ordering`/`lock_order` concurrency passes, v3 the
//! interprocedural `hotpath` pass and its per-crate allocation-site
//! inventory) carries per-`(rule, path)` finding counts plus the
//! allowlist total and a `hotpath` section; the baseline diff fails on
//! any growth (new `(rule, path)` pairs, higher counts, a larger
//! allowlist, or more hot-path allocation sites per crate) and treats
//! shrinkage as an advisory to refresh the baseline. Counts, not line
//! numbers, so unrelated edits don't churn the committed file.
//! Baselines written by the v1/v2 schemas still parse: the rule set
//! only grew, so an older document is a valid (if rule-poorer) count
//! table, and a missing `hotpath` section just means the inventory
//! ratchet starts from this scan.
//!
//! `--json --baseline F` composes: the export goes to stdout, the diff
//! to stderr, and regressions still fail the exit code.
//!
//! Exit codes: 0 clean, 1 violations/stale/forbidden entries or baseline
//! regressions, 2 usage or I/O errors.

use simlint::allow::Allowlist;
use simlint::hotpath::Severity;
use simlint::rules::Rule;
use simlint::Report;
use simobs::json::{self, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Schema tag for the findings export.
const SCHEMA: &str = "oocnvm.simlint/3";

/// Prior schema tags, still accepted on the *read* side of the baseline
/// diff: each bump only added rules (v2: `atomic_ordering`,
/// `lock_order`; v3: `hotpath_alloc` + the `hotpath` inventory), so an
/// older count table diffs cleanly — any finding under a new rule
/// simply counts as growth from zero, and a missing `hotpath` section
/// skips the inventory ratchet.
const SCHEMA_V2: &str = "oocnvm.simlint/2";

/// The original schema tag (pre-concurrency-pass), also accepted.
const SCHEMA_V1: &str = "oocnvm.simlint/1";

/// Workspace-relative path of the committed baseline.
const BASELINE_PATH: &str = "results/simlint.baseline.json";

struct Options {
    root: PathBuf,
    write_allow: bool,
    list: bool,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: simlint::workspace_root(),
        write_allow: false,
        list: false,
        json: false,
        baseline: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--write-allow" => opts.write_allow = true,
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--baseline" => {
                let file = args.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: simlint [--root DIR] [--list] [--json] [--baseline FILE] \
                     [--write-baseline] [--write-allow]",
                ))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Builds the versioned findings export document.
fn export(report: &Report, allow: &Allowlist) -> String {
    let counts = Json::Arr(
        report
            .counts
            .iter()
            .map(|((rule, path), count)| {
                Json::obj()
                    .field("rule", Json::str(rule.id()))
                    .field("path", Json::str(path))
                    .field("count", Json::u64(*count as u64))
            })
            .collect(),
    );
    let findings = Json::Arr(
        report
            .findings
            .iter()
            .map(|l| {
                Json::obj()
                    .field("rule", Json::str(l.finding.rule.id()))
                    .field("path", Json::str(&l.path))
                    .field("line", Json::u64(l.finding.line as u64))
                    .field("col", Json::u64(l.finding.col as u64))
                    .field("message", Json::str(&l.finding.message))
            })
            .collect(),
    );
    let payload = Json::obj()
        .field("files_scanned", Json::u64(report.files_scanned as u64))
        .field("allow_total", Json::u64(allow_total(allow)))
        .field("counts", counts)
        .field("findings", findings)
        .field("hotpath", hotpath_json(report));
    json::report(SCHEMA, payload)
}

/// The v3 `hotpath` section: declared roots, hot-fn count, per-crate
/// allocation-site inventory (the ratcheted quantity), and the full
/// site list for humans chasing a regression.
fn hotpath_json(report: &Report) -> Json {
    let mut per_crate: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for site in &report.hot_sites {
        let entry = per_crate.entry(site.krate.clone()).or_insert((0, 0));
        match site.severity {
            Severity::PerEvent => entry.0 += 1,
            Severity::PerRun => entry.1 += 1,
        }
    }
    let crates = Json::Arr(
        per_crate
            .iter()
            .map(|(krate, (per_event, per_run))| {
                Json::obj()
                    .field("crate", Json::str(krate))
                    .field("per_event", Json::u64(*per_event))
                    .field("per_run", Json::u64(*per_run))
            })
            .collect(),
    );
    let sites = Json::Arr(
        report
            .hot_sites
            .iter()
            .map(|s| {
                Json::obj()
                    .field("crate", Json::str(&s.krate))
                    .field("path", Json::str(&s.path))
                    .field("fn", Json::str(&s.fn_path))
                    .field("line", Json::u64(s.line as u64))
                    .field("col", Json::u64(s.col as u64))
                    .field("kind", Json::str(s.kind))
                    .field("severity", Json::str(s.severity.id()))
            })
            .collect(),
    );
    Json::obj()
        .field(
            "roots",
            Json::Arr(
                simlint::hotpath::HOT_ROOTS
                    .iter()
                    .map(|r| Json::str(r))
                    .collect(),
            ),
        )
        .field("hot_fns", Json::u64(report.hot_fns as u64))
        .field("crates", crates)
        .field("sites", sites)
}

/// Total violations granted by the allowlist (the ratchet quantity).
fn allow_total(allow: &Allowlist) -> u64 {
    allow.iter().map(|(_, _, count)| count as u64).sum()
}

/// Result of diffing a scan against a committed baseline.
#[derive(Debug, Default)]
struct BaselineDiff {
    /// Growth: new `(rule, path)` pairs, higher counts, allowlist growth.
    regressions: Vec<String>,
    /// Shrinkage: the baseline can be ratcheted down.
    improvements: Vec<String>,
}

/// Parses a baseline export and compares: any growth is a regression.
fn diff_baseline(text: &str, report: &Report, allow: &Allowlist) -> Result<BaselineDiff, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed baseline: {e}"))?;
    match doc.get("format") {
        Some(Json::Str(s)) if s == SCHEMA || s == SCHEMA_V2 || s == SCHEMA_V1 => {}
        other => {
            return Err(format!(
                "baseline schema is {other:?}, expected {SCHEMA:?} (or the \
                 readable predecessors {SCHEMA_V2:?} / {SCHEMA_V1:?})"
            ))
        }
    }
    let mut base: BTreeMap<(String, String), u64> = BTreeMap::new();
    if let Some(Json::Arr(items)) = doc.get("counts") {
        for item in items {
            let (Some(Json::Str(rule)), Some(Json::Str(path)), Some(Json::Num(count))) =
                (item.get("rule"), item.get("path"), item.get("count"))
            else {
                return Err("baseline count entry missing rule/path/count".to_string());
            };
            let count: u64 = count
                .parse()
                .map_err(|_| format!("non-integer count {count:?} in baseline"))?;
            base.insert((rule.clone(), path.clone()), count);
        }
    }
    let mut diff = BaselineDiff::default();
    let mut current: BTreeMap<(String, String), u64> = BTreeMap::new();
    for ((rule, path), count) in &report.counts {
        current.insert((rule.id().to_string(), path.clone()), *count as u64);
    }
    for (key, &count) in &current {
        let allowed = base.get(key).copied().unwrap_or(0);
        if count > allowed {
            let (rule, path) = key;
            diff.regressions.push(format!(
                "{path}: {count} `{rule}` finding(s), baseline has {allowed}"
            ));
        }
    }
    for (key, &allowed) in &base {
        let count = current.get(key).copied().unwrap_or(0);
        if count < allowed {
            let (rule, path) = key;
            diff.improvements.push(format!(
                "{path}: `{rule}` down to {count} from {allowed} — refresh with --write-baseline"
            ));
        }
    }
    let base_allow = match doc.get("allow_total") {
        Some(Json::Num(n)) => n
            .parse::<u64>()
            .map_err(|_| format!("non-integer allow_total {n:?} in baseline"))?,
        _ => return Err("baseline is missing allow_total".to_string()),
    };
    let now_allow = allow_total(allow);
    if now_allow > base_allow {
        diff.regressions.push(format!(
            "simlint.allow grants {now_allow} findings, baseline has {base_allow} — the allowlist only ratchets down"
        ));
    } else if now_allow < base_allow {
        diff.improvements.push(format!(
            "simlint.allow down to {now_allow} from {base_allow} — refresh with --write-baseline"
        ));
    }
    // Hot-path inventory ratchet (v3 baselines only: v1/v2 documents
    // have no `hotpath` section, so the inventory ratchet starts from
    // the first v3 baseline; per-event *findings* still ratchet from
    // zero through the count table above).
    if let Some(hp) = doc.get("hotpath") {
        let mut base_inv: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        if let Some(Json::Arr(items)) = hp.get("crates") {
            for item in items {
                let (Some(Json::Str(krate)), Some(Json::Num(pe)), Some(Json::Num(pr))) = (
                    item.get("crate"),
                    item.get("per_event"),
                    item.get("per_run"),
                ) else {
                    return Err("baseline hotpath entry missing crate/per_event/per_run".into());
                };
                let pe: u64 = pe
                    .parse()
                    .map_err(|_| format!("non-integer per_event {pe:?} in baseline"))?;
                let pr: u64 = pr
                    .parse()
                    .map_err(|_| format!("non-integer per_run {pr:?} in baseline"))?;
                base_inv.insert(krate.clone(), (pe, pr));
            }
        }
        let mut now_inv: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for site in &report.hot_sites {
            let entry = now_inv.entry(site.krate.clone()).or_insert((0, 0));
            match site.severity {
                Severity::PerEvent => entry.0 += 1,
                Severity::PerRun => entry.1 += 1,
            }
        }
        let crates: std::collections::BTreeSet<&String> =
            base_inv.keys().chain(now_inv.keys()).collect();
        for krate in crates {
            let (base_pe, base_pr) = base_inv.get(krate).copied().unwrap_or((0, 0));
            let (now_pe, now_pr) = now_inv.get(krate).copied().unwrap_or((0, 0));
            if now_pe > base_pe || now_pr > base_pr {
                diff.regressions.push(format!(
                    "crate `{krate}`: hot-path allocation inventory grew to \
                     {now_pe} per-event / {now_pr} per-run site(s), baseline has \
                     {base_pe} / {base_pr} — hoist the buffer (docs/STATIC_ANALYSIS.md)"
                ));
            } else if now_pe < base_pe || now_pr < base_pr {
                diff.improvements.push(format!(
                    "crate `{krate}`: hot-path inventory down to {now_pe} per-event / \
                     {now_pr} per-run from {base_pe} / {base_pr} — refresh with --write-baseline"
                ));
            }
        }
    }
    Ok(diff)
}

/// Reads and diffs a committed baseline; messages go to stderr when
/// `quiet_stdout` (the `--json` export owns stdout). Returns `true`
/// when regressions were found, `Err` with an exit code on I/O or
/// parse failure.
fn run_baseline_diff(
    baseline: &std::path::Path,
    report: &Report,
    allow: &Allowlist,
    quiet_stdout: bool,
) -> Result<bool, ExitCode> {
    let text = match std::fs::read_to_string(baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", baseline.display());
            return Err(ExitCode::from(2));
        }
    };
    let diff = match diff_baseline(&text, report, allow) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: {}: {e}", baseline.display());
            return Err(ExitCode::from(2));
        }
    };
    for r in &diff.regressions {
        eprintln!("simlint: baseline regression: {r}");
    }
    let say = |msg: String| {
        if quiet_stdout {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    for i in &diff.improvements {
        say(format!("simlint: baseline improvement: {i}"));
    }
    if diff.regressions.is_empty() {
        say(format!(
            "simlint: no regressions against {}",
            baseline.display()
        ));
    }
    Ok(!diff.regressions.is_empty())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match simlint::scan_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let allow_path = opts.root.join("simlint.allow");
    if opts.write_allow {
        let allow = Allowlist::from_counts(&report.counts);
        if let Err(e) = std::fs::write(&allow_path, allow.render()) {
            eprintln!("simlint: cannot write {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} from current findings",
            allow_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "simlint: {}:{}: {}",
                    allow_path.display(),
                    e.line,
                    e.message
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    if opts.write_baseline {
        let path = opts.root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, export(&report, &allow) + "\n") {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("simlint: wrote {} from current findings", path.display());
        return ExitCode::SUCCESS;
    }

    if opts.json {
        println!("{}", export(&report, &allow));
        if let Some(baseline) = &opts.baseline {
            match run_baseline_diff(baseline, &report, &allow, true) {
                Ok(true) => return ExitCode::FAILURE,
                Ok(false) => {}
                Err(code) => return code,
            }
        }
        return ExitCode::SUCCESS;
    }

    if opts.list {
        for l in &report.findings {
            println!(
                "{}:{}:{}: [{}] {}",
                l.path,
                l.finding.line,
                l.finding.col,
                l.finding.rule.id(),
                l.finding.message
            );
        }
    }

    let verdict = simlint::check(&report, &allow);
    println!(
        "simlint: scanned {} files; findings by rule:",
        report.files_scanned
    );
    for rule in Rule::ALL {
        println!(
            "  {:<28} {:>4} found / {:>4} allowed",
            rule.id(),
            report.total(rule),
            allow.total(rule)
        );
    }

    let mut failed = false;
    if let Some(baseline) = &opts.baseline {
        match run_baseline_diff(baseline, &report, &allow, false) {
            Ok(regressed) => failed = regressed,
            Err(code) => return code,
        }
    }

    if verdict.ok() && !failed {
        println!("simlint: clean (all findings within the burn-down allowlist)");
        return ExitCode::SUCCESS;
    }
    for v in &verdict.violations {
        eprintln!("simlint: violation: {v}");
    }
    for s in &verdict.stale {
        eprintln!("simlint: stale allowlist entry: {s}");
    }
    for f in &verdict.forbidden {
        eprintln!("simlint: forbidden allowlist entry: {f}");
    }
    if !verdict.ok() {
        eprintln!(
            "simlint: FAILED — {} violation(s), {} stale, {} forbidden",
            verdict.violations.len(),
            verdict.stale.len(),
            verdict.forbidden.len()
        );
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A v1-schema baseline (the pre-concurrency-pass format) must
    /// still parse and diff: the committed history contains such
    /// documents, and a schema bump must not strand them.
    #[test]
    fn v1_baselines_still_diff() {
        let v1 = concat!(
            "{\"format\":\"oocnvm.simlint/1\",\"files_scanned\":107,",
            "\"allow_total\":2,\"counts\":[{\"rule\":\"bare_cast\",",
            "\"path\":\"crates/nvmtypes/src/convert.rs\",\"count\":2}],",
            "\"findings\":[]}"
        );
        let mut report = Report::default();
        report
            .counts
            .insert((Rule::BareCast, "crates/nvmtypes/src/convert.rs".into()), 2);
        let allow = Allowlist::parse("bare_cast crates/nvmtypes/src/convert.rs 2\n")
            .expect("allowlist parses");
        let diff = diff_baseline(v1, &report, &allow).expect("v1 baseline parses");
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.improvements.is_empty(), "{:?}", diff.improvements);
        // Growth against a v1 baseline is still a regression — findings
        // under the new rules count from zero.
        report
            .counts
            .insert((Rule::LockOrder, "crates/ssd/src/ftl.rs".into()), 1);
        let diff = diff_baseline(v1, &report, &allow).expect("v1 baseline parses");
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("lock_order"));
    }

    /// A v2-schema baseline (pre-hotpath) must still parse and diff
    /// after the `/3` bump, mirroring the v1 guarantee: the count table
    /// diffs as usual and the absent `hotpath` section just skips the
    /// inventory ratchet.
    #[test]
    fn v2_baselines_still_diff() {
        let v2 = concat!(
            "{\"format\":\"oocnvm.simlint/2\",\"files_scanned\":120,",
            "\"allow_total\":0,\"counts\":[],\"findings\":[]}"
        );
        let mut report = Report::default();
        report.hot_sites.push(simlint::hotpath::Site {
            path: "crates/ssd/src/mapping.rs".into(),
            krate: "ssd".into(),
            fn_path: "ssd::mapping::StripeMap::decompose".into(),
            line: 136,
            col: 9,
            kind: "Vec::new",
            severity: Severity::PerRun,
        });
        let diff = diff_baseline(v2, &report, &Allowlist::default()).expect("v2 baseline parses");
        // No `hotpath` section in a v2 document: the inventory is not
        // ratcheted, so present-day sites are neither growth nor shrink.
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.improvements.is_empty(), "{:?}", diff.improvements);
        // The per-(rule, path) count ratchet still applies.
        report
            .counts
            .insert((Rule::HotPathAlloc, "crates/ssd/src/mapping.rs".into()), 1);
        let diff = diff_baseline(v2, &report, &Allowlist::default()).expect("v2 baseline parses");
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("hotpath_alloc"));
    }

    /// The v3 per-crate hot-path inventory ratchets: growth in either
    /// the per-event or per-run site count of any crate is a
    /// regression, shrinkage an improvement.
    #[test]
    fn hotpath_inventory_growth_is_a_regression() {
        let v3 = concat!(
            "{\"format\":\"oocnvm.simlint/3\",\"files_scanned\":130,",
            "\"allow_total\":0,\"counts\":[],\"findings\":[],",
            "\"hotpath\":{\"roots\":[],\"hot_fns\":12,\"crates\":[",
            "{\"crate\":\"ssd\",\"per_event\":0,\"per_run\":1}],\"sites\":[]}}"
        );
        let site = |severity| simlint::hotpath::Site {
            path: "crates/ssd/src/mapping.rs".into(),
            krate: "ssd".into(),
            fn_path: "ssd::mapping::StripeMap::decompose".into(),
            line: 136,
            col: 9,
            kind: "Vec::new",
            severity,
        };
        let mut report = Report::default();
        report.hot_sites.push(site(Severity::PerRun));
        let diff = diff_baseline(v3, &report, &Allowlist::default()).expect("v3 baseline parses");
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        // A new per-event site in the same crate regresses the ratchet.
        report.hot_sites.push(site(Severity::PerEvent));
        let diff = diff_baseline(v3, &report, &Allowlist::default()).expect("v3 baseline parses");
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("hot-path allocation inventory grew"));
        // Dropping below the baseline is an improvement prompt.
        report.hot_sites.clear();
        let diff = diff_baseline(v3, &report, &Allowlist::default()).expect("v3 baseline parses");
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert_eq!(diff.improvements.len(), 1, "{:?}", diff.improvements);
        assert!(diff.improvements[0].contains("down to 0 per-event / 0 per-run"));
    }

    /// Unknown schemas are rejected, naming every accepted tag.
    #[test]
    fn unknown_baseline_schemas_are_rejected() {
        let doc = "{\"format\":\"oocnvm.simlint/99\",\"allow_total\":0,\"counts\":[]}";
        let err = diff_baseline(doc, &Report::default(), &Allowlist::default())
            .expect_err("future schema must be rejected");
        assert!(err.contains("oocnvm.simlint/3"), "{err}");
        assert!(err.contains("oocnvm.simlint/2"), "{err}");
        assert!(err.contains("oocnvm.simlint/1"), "{err}");
    }
}
