//! CLI for `simlint`.
//!
//! ```text
//! cargo run -p simlint                 # gate: scan + check allowlist
//! cargo run -p simlint -- --list       # print every finding (allowed too)
//! cargo run -p simlint -- --json       # versioned findings export to stdout
//! cargo run -p simlint -- --baseline F # gate + diff against a committed baseline
//! cargo run -p simlint -- --write-baseline  # regenerate results/simlint.baseline.json
//! cargo run -p simlint -- --write-allow  # regenerate simlint.allow
//! cargo run -p simlint -- --root DIR   # scan a different tree
//! ```
//!
//! The JSON export (schema `oocnvm.simlint/2`; v2 added the
//! `atomic_ordering` and `lock_order` concurrency passes) carries
//! per-`(rule, path)` finding counts plus the allowlist total; the
//! baseline diff fails on any growth (new `(rule, path)` pairs, higher
//! counts, or a larger allowlist) and treats shrinkage as an advisory
//! to refresh the baseline. Counts, not line numbers, so unrelated
//! edits don't churn the committed file. Baselines written by the v1
//! schema still parse: the rule set only grew, so a v1 document is a
//! valid (if rule-poorer) count table.
//!
//! Exit codes: 0 clean, 1 violations/stale/forbidden entries or baseline
//! regressions, 2 usage or I/O errors.

use simlint::allow::Allowlist;
use simlint::rules::Rule;
use simlint::Report;
use simobs::json::{self, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Schema tag for the findings export.
const SCHEMA: &str = "oocnvm.simlint/2";

/// Prior schema tag, still accepted on the *read* side of the baseline
/// diff: v2 only added rules (`atomic_ordering`, `lock_order`), so a
/// v1 count table diffs cleanly — any finding under a new rule simply
/// counts as growth from zero.
const SCHEMA_V1: &str = "oocnvm.simlint/1";

/// Workspace-relative path of the committed baseline.
const BASELINE_PATH: &str = "results/simlint.baseline.json";

struct Options {
    root: PathBuf,
    write_allow: bool,
    list: bool,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: simlint::workspace_root(),
        write_allow: false,
        list: false,
        json: false,
        baseline: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--write-allow" => opts.write_allow = true,
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--baseline" => {
                let file = args.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: simlint [--root DIR] [--list] [--json] [--baseline FILE] \
                     [--write-baseline] [--write-allow]",
                ))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Builds the versioned findings export document.
fn export(report: &Report, allow: &Allowlist) -> String {
    let counts = Json::Arr(
        report
            .counts
            .iter()
            .map(|((rule, path), count)| {
                Json::obj()
                    .field("rule", Json::str(rule.id()))
                    .field("path", Json::str(path))
                    .field("count", Json::u64(*count as u64))
            })
            .collect(),
    );
    let findings = Json::Arr(
        report
            .findings
            .iter()
            .map(|l| {
                Json::obj()
                    .field("rule", Json::str(l.finding.rule.id()))
                    .field("path", Json::str(&l.path))
                    .field("line", Json::u64(l.finding.line as u64))
                    .field("col", Json::u64(l.finding.col as u64))
                    .field("message", Json::str(&l.finding.message))
            })
            .collect(),
    );
    let payload = Json::obj()
        .field("files_scanned", Json::u64(report.files_scanned as u64))
        .field("allow_total", Json::u64(allow_total(allow)))
        .field("counts", counts)
        .field("findings", findings);
    json::report(SCHEMA, payload)
}

/// Total violations granted by the allowlist (the ratchet quantity).
fn allow_total(allow: &Allowlist) -> u64 {
    allow.iter().map(|(_, _, count)| count as u64).sum()
}

/// Result of diffing a scan against a committed baseline.
#[derive(Debug, Default)]
struct BaselineDiff {
    /// Growth: new `(rule, path)` pairs, higher counts, allowlist growth.
    regressions: Vec<String>,
    /// Shrinkage: the baseline can be ratcheted down.
    improvements: Vec<String>,
}

/// Parses a baseline export and compares: any growth is a regression.
fn diff_baseline(text: &str, report: &Report, allow: &Allowlist) -> Result<BaselineDiff, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed baseline: {e}"))?;
    match doc.get("format") {
        Some(Json::Str(s)) if s == SCHEMA || s == SCHEMA_V1 => {}
        other => {
            return Err(format!(
                "baseline schema is {other:?}, expected {SCHEMA:?} (or the \
                 readable predecessor {SCHEMA_V1:?})"
            ))
        }
    }
    let mut base: BTreeMap<(String, String), u64> = BTreeMap::new();
    if let Some(Json::Arr(items)) = doc.get("counts") {
        for item in items {
            let (Some(Json::Str(rule)), Some(Json::Str(path)), Some(Json::Num(count))) =
                (item.get("rule"), item.get("path"), item.get("count"))
            else {
                return Err("baseline count entry missing rule/path/count".to_string());
            };
            let count: u64 = count
                .parse()
                .map_err(|_| format!("non-integer count {count:?} in baseline"))?;
            base.insert((rule.clone(), path.clone()), count);
        }
    }
    let mut diff = BaselineDiff::default();
    let mut current: BTreeMap<(String, String), u64> = BTreeMap::new();
    for ((rule, path), count) in &report.counts {
        current.insert((rule.id().to_string(), path.clone()), *count as u64);
    }
    for (key, &count) in &current {
        let allowed = base.get(key).copied().unwrap_or(0);
        if count > allowed {
            let (rule, path) = key;
            diff.regressions.push(format!(
                "{path}: {count} `{rule}` finding(s), baseline has {allowed}"
            ));
        }
    }
    for (key, &allowed) in &base {
        let count = current.get(key).copied().unwrap_or(0);
        if count < allowed {
            let (rule, path) = key;
            diff.improvements.push(format!(
                "{path}: `{rule}` down to {count} from {allowed} — refresh with --write-baseline"
            ));
        }
    }
    let base_allow = match doc.get("allow_total") {
        Some(Json::Num(n)) => n
            .parse::<u64>()
            .map_err(|_| format!("non-integer allow_total {n:?} in baseline"))?,
        _ => return Err("baseline is missing allow_total".to_string()),
    };
    let now_allow = allow_total(allow);
    if now_allow > base_allow {
        diff.regressions.push(format!(
            "simlint.allow grants {now_allow} findings, baseline has {base_allow} — the allowlist only ratchets down"
        ));
    } else if now_allow < base_allow {
        diff.improvements.push(format!(
            "simlint.allow down to {now_allow} from {base_allow} — refresh with --write-baseline"
        ));
    }
    Ok(diff)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match simlint::scan_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let allow_path = opts.root.join("simlint.allow");
    if opts.write_allow {
        let allow = Allowlist::from_counts(&report.counts);
        if let Err(e) = std::fs::write(&allow_path, allow.render()) {
            eprintln!("simlint: cannot write {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} from current findings",
            allow_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "simlint: {}:{}: {}",
                    allow_path.display(),
                    e.line,
                    e.message
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    if opts.write_baseline {
        let path = opts.root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, export(&report, &allow) + "\n") {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("simlint: wrote {} from current findings", path.display());
        return ExitCode::SUCCESS;
    }

    if opts.json {
        println!("{}", export(&report, &allow));
        return ExitCode::SUCCESS;
    }

    if opts.list {
        for l in &report.findings {
            println!(
                "{}:{}:{}: [{}] {}",
                l.path,
                l.finding.line,
                l.finding.col,
                l.finding.rule.id(),
                l.finding.message
            );
        }
    }

    let verdict = simlint::check(&report, &allow);
    println!(
        "simlint: scanned {} files; findings by rule:",
        report.files_scanned
    );
    for rule in Rule::ALL {
        println!(
            "  {:<28} {:>4} found / {:>4} allowed",
            rule.id(),
            report.total(rule),
            allow.total(rule)
        );
    }

    let mut failed = false;
    if let Some(baseline) = &opts.baseline {
        match std::fs::read_to_string(baseline) {
            Ok(text) => match diff_baseline(&text, &report, &allow) {
                Ok(diff) => {
                    for r in &diff.regressions {
                        eprintln!("simlint: baseline regression: {r}");
                        failed = true;
                    }
                    for i in &diff.improvements {
                        println!("simlint: baseline improvement: {i}");
                    }
                    if diff.regressions.is_empty() {
                        println!("simlint: no regressions against {}", baseline.display());
                    }
                }
                Err(e) => {
                    eprintln!("simlint: {}: {e}", baseline.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("simlint: cannot read {}: {e}", baseline.display());
                return ExitCode::from(2);
            }
        }
    }

    if verdict.ok() && !failed {
        println!("simlint: clean (all findings within the burn-down allowlist)");
        return ExitCode::SUCCESS;
    }
    for v in &verdict.violations {
        eprintln!("simlint: violation: {v}");
    }
    for s in &verdict.stale {
        eprintln!("simlint: stale allowlist entry: {s}");
    }
    for f in &verdict.forbidden {
        eprintln!("simlint: forbidden allowlist entry: {f}");
    }
    if !verdict.ok() {
        eprintln!(
            "simlint: FAILED — {} violation(s), {} stale, {} forbidden",
            verdict.violations.len(),
            verdict.stale.len(),
            verdict.forbidden.len()
        );
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A v1-schema baseline (the pre-concurrency-pass format) must
    /// still parse and diff: the committed history contains such
    /// documents, and a schema bump must not strand them.
    #[test]
    fn v1_baselines_still_diff() {
        let v1 = concat!(
            "{\"format\":\"oocnvm.simlint/1\",\"files_scanned\":107,",
            "\"allow_total\":2,\"counts\":[{\"rule\":\"bare_cast\",",
            "\"path\":\"crates/nvmtypes/src/convert.rs\",\"count\":2}],",
            "\"findings\":[]}"
        );
        let mut report = Report::default();
        report
            .counts
            .insert((Rule::BareCast, "crates/nvmtypes/src/convert.rs".into()), 2);
        let allow = Allowlist::parse("bare_cast crates/nvmtypes/src/convert.rs 2\n")
            .expect("allowlist parses");
        let diff = diff_baseline(v1, &report, &allow).expect("v1 baseline parses");
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.improvements.is_empty(), "{:?}", diff.improvements);
        // Growth against a v1 baseline is still a regression — findings
        // under the new rules count from zero.
        report
            .counts
            .insert((Rule::LockOrder, "crates/ssd/src/ftl.rs".into()), 1);
        let diff = diff_baseline(v1, &report, &allow).expect("v1 baseline parses");
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("lock_order"));
    }

    /// Unknown schemas are rejected, naming both accepted tags.
    #[test]
    fn unknown_baseline_schemas_are_rejected() {
        let doc = "{\"format\":\"oocnvm.simlint/99\",\"allow_total\":0,\"counts\":[]}";
        let err = diff_baseline(doc, &Report::default(), &Allowlist::default())
            .expect_err("future schema must be rejected");
        assert!(err.contains("oocnvm.simlint/2"), "{err}");
        assert!(err.contains("oocnvm.simlint/1"), "{err}");
    }
}
