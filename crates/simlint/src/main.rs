//! CLI for `simlint`.
//!
//! ```text
//! cargo run -p simlint                 # gate: scan + check allowlist
//! cargo run -p simlint -- --list       # print every finding (allowed too)
//! cargo run -p simlint -- --write-allow  # regenerate simlint.allow
//! cargo run -p simlint -- --root DIR   # scan a different tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations/stale/forbidden entries, 2 usage or
//! I/O errors.

use simlint::allow::Allowlist;
use simlint::rules::Rule;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    write_allow: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut root = simlint::workspace_root();
    let mut write_allow = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                root = PathBuf::from(dir);
            }
            "--write-allow" => write_allow = true,
            "--list" => list = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: simlint [--root DIR] [--list] [--write-allow]",
                ))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        root,
        write_allow,
        list,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match simlint::scan_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let allow_path = opts.root.join("simlint.allow");
    if opts.write_allow {
        let allow = Allowlist::from_counts(&report.counts);
        if let Err(e) = std::fs::write(&allow_path, allow.render()) {
            eprintln!("simlint: cannot write {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} from current findings",
            allow_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "simlint: {}:{}: {}",
                    allow_path.display(),
                    e.line,
                    e.message
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    if opts.list {
        for l in &report.findings {
            println!(
                "{}:{}: [{}] {}",
                l.path,
                l.finding.line,
                l.finding.rule.id(),
                l.finding.message
            );
        }
    }

    let verdict = simlint::check(&report, &allow);
    println!(
        "simlint: scanned {} files; findings by rule:",
        report.files_scanned
    );
    for rule in Rule::ALL {
        println!(
            "  {:<28} {:>4} found / {:>4} allowed",
            rule.id(),
            report.total(rule),
            allow.total(rule)
        );
    }

    if verdict.ok() {
        println!("simlint: clean (all findings within the burn-down allowlist)");
        return ExitCode::SUCCESS;
    }
    for v in &verdict.violations {
        eprintln!("simlint: violation: {v}");
    }
    for s in &verdict.stale {
        eprintln!("simlint: stale allowlist entry: {s}");
    }
    for f in &verdict.forbidden {
        eprintln!("simlint: forbidden allowlist entry: {f}");
    }
    eprintln!(
        "simlint: FAILED — {} violation(s), {} stale, {} forbidden",
        verdict.violations.len(),
        verdict.stale.len(),
        verdict.forbidden.len()
    );
    ExitCode::FAILURE
}
