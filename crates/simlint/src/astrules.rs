//! The eight classic rules, re-implemented over token trees and the
//! AST instead of per-line substring scans.
//!
//! Messages are byte-identical with the legacy engine in `rules` (the
//! selftests compare the two), but the matching is structural, which
//! kills the remaining false-positive/negative classes:
//!
//! * tokens split across lines (`.unwrap\n()`, `x as\n    u64`) are
//!   seen as one construct;
//! * identifier boundaries are exact (`LinkedHashMap` is not a
//!   `HashMap`; `SystemTimeline` is not `SystemTime`);
//! * `use std::thread::spawn; spawn(..)` and aliased imports are
//!   resolved through the file's `use`-map;
//! * `match` arms come from the parser, not a brace-depth heuristic.

use crate::ast::{self, Expr, ExprKind, File, ItemKind, UseEntry};
use crate::lexer::CleanFile;
use crate::parser::{Span, Tree};
use crate::rules::{Finding, Rule, WATCHED_ENUMS};

/// Panicking macro names for [`Rule::NoPanic`].
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Numeric cast targets for [`Rule::BareCast`] (mirrors the legacy
/// list: `u8` stays exempt — it is the byte type, not a unit).
const CAST_TARGETS: [&str; 9] = [
    "u16", "u32", "u64", "u128", "usize", "i64", "i128", "f32", "f64",
];

fn in_test(clean: &CleanFile, span: Span) -> bool {
    clean
        .lines
        .get(span.line.saturating_sub(1))
        .is_some_and(|l| l.in_test)
}

fn push(findings: &mut Vec<Finding>, clean: &CleanFile, rule: Rule, span: Span, message: String) {
    if !in_test(clean, span) {
        findings.push(Finding {
            rule,
            line: span.line,
            col: span.col,
            message,
        });
    }
}

/// `.unwrap()`, `.expect(..)` and the panicking macros.
pub fn no_panic(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            if t.is_punct(".") {
                let (Some(name), Some(g)) = (
                    slice.get(i + 1).and_then(Tree::ident),
                    slice.get(i + 2).and_then(|t| t.group_of('(')),
                ) else {
                    continue;
                };
                let hit = match name {
                    "unwrap" => g.children.is_empty(),
                    "expect" => true,
                    _ => false,
                };
                if hit {
                    let shown = if name == "unwrap" {
                        "unwrap()"
                    } else {
                        "expect"
                    };
                    push(
                        &mut findings,
                        clean,
                        Rule::NoPanic,
                        t.span(),
                        format!(
                            "`{shown}` can panic; return a typed error or use a non-panicking accessor"
                        ),
                    );
                }
            } else if let Some(name) = t.ident() {
                if PANIC_MACROS.contains(&name)
                    && slice.get(i + 1).is_some_and(|n| n.is_punct("!"))
                    && slice.get(i + 2).is_some_and(|n| n.group().is_some())
                {
                    push(
                        &mut findings,
                        clean,
                        Rule::NoPanic,
                        t.span(),
                        format!(
                            "`{name}!` can panic; return a typed error or use a non-panicking accessor"
                        ),
                    );
                }
            }
        }
    });
    findings
}

/// Wall-clock and OS-entropy constructs.
pub fn wall_clock(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            let token = match name {
                "SystemTime" => Some("SystemTime"),
                "thread_rng" => Some("thread_rng"),
                "from_entropy" => Some("from_entropy"),
                "Instant"
                    if slice.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && slice.get(i + 2).and_then(Tree::ident) == Some("now") =>
                {
                    Some("Instant::now")
                }
                _ => None,
            };
            if let Some(tok) = token {
                push(
                    &mut findings,
                    clean,
                    Rule::WallClock,
                    t.span(),
                    format!(
                        "`{tok}` breaks reproducibility; simulators must use simulated time and seeded RNGs"
                    ),
                );
            }
        }
    });
    findings
}

/// `HashMap`/`HashSet` mentions in simulator-state crates.
pub fn nondeterministic_collection(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for t in slice {
            let Some(name) = t.ident() else { continue };
            if name == "HashMap" || name == "HashSet" {
                push(
                    &mut findings,
                    clean,
                    Rule::NondeterministicCollection,
                    t.span(),
                    format!(
                        "`{name}` iteration order is nondeterministic; use `BTree{}` or a sorted drain",
                        &name[4..]
                    ),
                );
            }
        }
    });
    findings
}

/// Bare `as <numeric>` casts — including ones split across lines.
pub fn bare_cast(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            if t.ident() != Some("as") {
                continue;
            }
            // `use x as y;` aliases are not casts: the previous token
            // of a cast is a value/group, never the `use` path context.
            if in_use_statement(slice, i) {
                continue;
            }
            let Some(target) = slice.get(i + 1).and_then(Tree::ident) else {
                continue;
            };
            if CAST_TARGETS.contains(&target) {
                push(
                    &mut findings,
                    clean,
                    Rule::BareCast,
                    t.span(),
                    format!(
                        "bare `as {target}` cast in unit arithmetic; use `u64::from`/`f64::from` for lossless widening or the audited helpers in `nvmtypes::convert` (`usize_from`, `u64_from_usize`, `approx_f64`, `trunc_u64`, `try_u32`)"
                    ),
                );
            }
        }
    });
    findings
}

/// Is the `as` at `slice[i]` part of a `use ... as alias` statement?
fn in_use_statement(slice: &[Tree], i: usize) -> bool {
    slice[..i]
        .iter()
        .rev()
        .take_while(|t| !t.is_punct(";"))
        .any(|t| t.ident() == Some("use"))
}

/// Direct `thread::spawn(..)` calls, plus calls through a `use`-import
/// of `spawn` (possibly aliased) — the dodge the legacy rule missed.
pub fn thread_spawn(clean: &CleanFile, trees: &[Tree], ast: &File) -> Vec<Finding> {
    // Names bound to `std::thread::spawn` by imports in this file.
    let mut spawn_aliases: Vec<String> = Vec::new();
    collect_use_entries(&ast.items, &mut |entry| {
        let p = &entry.path;
        if p.len() >= 2 && p[p.len() - 2] == "thread" && p[p.len() - 1] == "spawn" {
            spawn_aliases.push(entry.alias.clone());
        }
    });
    let message = || {
        "direct `thread::spawn` bypasses the vendored work-sharing pool; use \
         `rayon::par_iter`/`join` so `RAYON_NUM_THREADS` and the ordered-collect \
         determinism contract apply (docs/PARALLELISM.md)"
            .to_string()
    };
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if name == "thread"
                && slice.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && slice.get(i + 2).and_then(Tree::ident) == Some("spawn")
                && slice.get(i + 3).is_some_and(|n| n.group_of('(').is_some())
            {
                push(&mut findings, clean, Rule::ThreadSpawn, t.span(), message());
            } else if spawn_aliases.iter().any(|a| a == name)
                && slice.get(i + 1).is_some_and(|n| n.group_of('(').is_some())
            {
                // A bare `spawn(..)` call through the import. Method
                // calls (`scope.spawn(..)`) and path-qualified calls
                // were handled (or exempted) above.
                let preceded = i > 0 && (slice[i - 1].is_punct(".") || slice[i - 1].is_punct("::"));
                if !preceded {
                    push(&mut findings, clean, Rule::ThreadSpawn, t.span(), message());
                }
            }
        }
    });
    findings
}

fn collect_use_entries(items: &[ast::Item], f: &mut impl FnMut(&UseEntry)) {
    for item in items {
        match &item.kind {
            ItemKind::Use(entries) => entries.iter().for_each(&mut *f),
            ItemKind::Mod { items, .. } => collect_use_entries(items, f),
            _ => {}
        }
    }
}

/// `println!`/`eprintln!` in library code.
pub fn no_println_in_lib(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if (name == "println" || name == "eprintln")
                && slice.get(i + 1).is_some_and(|n| n.is_punct("!"))
                && slice.get(i + 2).is_some_and(|n| n.group_of('(').is_some())
            {
                push(
                    &mut findings,
                    clean,
                    Rule::NoPrintlnInLib,
                    t.span(),
                    format!(
                        "`{name}!` in library code; return or render a `String` and let the binary print it"
                    ),
                );
            }
        }
    });
    findings
}

/// `let _ = expr;` wildcard discards.
pub fn let_underscore_result(clean: &CleanFile, trees: &[Tree]) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::parser::walk_sibling_slices(trees, &mut |slice| {
        for (i, t) in slice.iter().enumerate() {
            if t.ident() == Some("let")
                && slice.get(i + 1).and_then(Tree::ident) == Some("_")
                && slice.get(i + 2).is_some_and(|n| n.is_punct("="))
            {
                push(
                    &mut findings,
                    clean,
                    Rule::LetUnderscoreResult,
                    t.span(),
                    "`let _ = ..` silently discards the value — and any `Err` in it; \
                     handle or propagate the `Result`, or make a deliberate discard \
                     explicit with `drop(..)`"
                        .to_string(),
                );
            }
        }
    });
    findings
}

/// Wildcard `_ =>` arms in `match`es over (or into) watched enums.
pub fn enum_wildcard(clean: &CleanFile, ast: &File) -> Vec<Finding> {
    let mut findings = Vec::new();
    ast::visit_fns(&ast.items, false, &mut |fd, _, _, _| {
        let Some(body) = &fd.body else { return };
        ast::visit_exprs(body, &mut |e| {
            let ExprKind::Match { arms, .. } = &e.kind else {
                return;
            };
            if !match_is_watched(e) {
                return;
            }
            for arm in arms {
                if arm.is_wild {
                    push(
                        &mut findings,
                        clean,
                        Rule::EnumWildcard,
                        arm.span,
                        "wildcard `_ =>` arm on a watched enum; list every variant so new media kinds cannot silently fall through".to_string(),
                    );
                }
            }
        });
    });
    findings
}

/// A match is watched when any path in its subtree (scrutinee, arm
/// patterns, guards, or bodies — nested matches included) names
/// `WatchedEnum::Variant`.
fn match_is_watched(match_expr: &Expr) -> bool {
    let mut watched = false;
    ast::visit_expr(match_expr, &mut |e| match &e.kind {
        ExprKind::Path(segs) => watched |= path_is_watched(segs),
        ExprKind::StructLit { path, .. } | ExprKind::Macro { path, .. } => {
            watched |= path_is_watched(path);
        }
        ExprKind::Match { arms, .. } => {
            for arm in arms {
                watched |= arm.pat_paths.iter().any(|p| path_is_watched(p));
            }
        }
        _ => {}
    });
    watched
}

/// Does `segs` contain `WatchedEnum::<something>`?
fn path_is_watched(segs: &[String]) -> bool {
    segs.windows(2)
        .any(|w| WATCHED_ENUMS.contains(&w[0].as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_source;
    use crate::parser::parse_trees;
    use crate::rules;

    fn prep(src: &str) -> (CleanFile, Vec<Tree>, File) {
        let clean = clean_source(src);
        let trees = parse_trees(&clean);
        let file = ast::parse_file(&trees);
        (clean, trees, file)
    }

    /// The AST port must agree with the legacy engine on everything the
    /// legacy engine can see (messages included, byte for byte).
    #[test]
    fn agrees_with_legacy_on_single_line_constructs() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }\n\
                   fn g() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
                   fn h() { let t = Instant::now(); let s = SystemTime::now(); }\n\
                   fn i(x: u32) -> u64 { x as u64 }\n\
                   fn j() { let _ = k(); println!(\"x\"); std::thread::spawn(|| {}); }\n";
        let (clean, trees, file) = prep(src);
        let pairs: Vec<(Vec<Finding>, Vec<Finding>)> = vec![
            (no_panic(&clean, &trees), rules::no_panic(&clean)),
            (
                nondeterministic_collection(&clean, &trees),
                rules::nondeterministic_collection(&clean),
            ),
            (wall_clock(&clean, &trees), rules::wall_clock(&clean)),
            (bare_cast(&clean, &trees), rules::bare_cast(&clean)),
            (
                let_underscore_result(&clean, &trees),
                rules::let_underscore_result(&clean),
            ),
            (
                no_println_in_lib(&clean, &trees),
                rules::no_println_in_lib(&clean),
            ),
            (
                thread_spawn(&clean, &trees, &file),
                rules::thread_spawn(&clean),
            ),
        ];
        for (ast_hits, legacy_hits) in pairs {
            assert_eq!(
                ast_hits.len(),
                legacy_hits.len(),
                "{ast_hits:?}\n{legacy_hits:?}"
            );
            for (a, l) in ast_hits.iter().zip(&legacy_hits) {
                assert_eq!(a.message, l.message);
                assert_eq!(a.line, l.line);
            }
        }
    }

    #[test]
    fn multiline_unwrap_is_caught_where_legacy_misses() {
        let src = "fn f() {\n  x\n    .unwrap\n    ();\n}\n";
        let (clean, trees, _) = prep(src);
        assert!(rules::no_panic(&clean).is_empty(), "legacy blind spot");
        let hits = no_panic(&clean, &trees);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn multiline_cast_is_caught_where_legacy_misses() {
        let src = "fn f(x: u32) -> u64 {\n  x as\n    u64\n}\n";
        let (clean, trees, _) = prep(src);
        assert!(rules::bare_cast(&clean).is_empty(), "legacy blind spot");
        let hits = bare_cast(&clean, &trees);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn imported_spawn_is_caught_where_legacy_misses() {
        let src = "use std::thread::spawn;\nfn f() { spawn(|| {}); }\n";
        let (clean, trees, file) = prep(src);
        assert!(rules::thread_spawn(&clean).is_empty(), "legacy blind spot");
        let hits = thread_spawn(&clean, &trees, &file);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn aliased_spawn_import_is_caught() {
        let src = "use std::thread::spawn as go;\nfn f() { go(|| {}); }\n";
        let (clean, trees, file) = prep(src);
        let hits = thread_spawn(&clean, &trees, &file);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn scoped_spawn_and_use_alias_do_not_fire() {
        let src = "use std::thread::spawn as go;\nfn f(scope: &S) { scope.go(|| {}); }\n";
        let (clean, trees, file) = prep(src);
        assert!(thread_spawn(&clean, &trees, &file).is_empty());
    }

    #[test]
    fn linked_hash_map_is_not_flagged() {
        let src = "fn f() { let m = LinkedHashMap::new(); let t = SystemTimeline::new(); }\n";
        let (clean, trees, _) = prep(src);
        assert!(nondeterministic_collection(&clean, &trees).is_empty());
        assert!(wall_clock(&clean, &trees).is_empty());
    }

    #[test]
    fn use_as_alias_is_not_a_cast() {
        let src = "use foo::bar as u64_helper;\nfn f() {}\n";
        let (clean, trees, _) = prep(src);
        assert!(bare_cast(&clean, &trees).is_empty());
    }

    #[test]
    fn enum_wildcard_matches_legacy_on_fixtures() {
        for (src, want) in [
            (
                "fn f(k: NvmKind) -> u32 {\n match k {\n  NvmKind::Slc => 1,\n  _ => 0,\n }\n}\n",
                1,
            ),
            (
                "fn f(n: u8) -> u32 {\n match n {\n  0 => 1,\n  _ => 0,\n }\n}\n",
                0,
            ),
            (
                "fn f(k: IoOp) -> u32 {\n match k {\n  IoOp::Read => 1,\n  IoOp::Write => 2,\n }\n}\n",
                0,
            ),
            (
                "fn f(i: u32) -> PageClass {\n match i % 3 {\n  0 => PageClass::Lsb,\n  1 => PageClass::Csb,\n  _ => PageClass::Msb,\n }\n}\n",
                1,
            ),
            (
                "fn f(k: IoOp) -> u32 {\n match (k, 1) {\n  (IoOp::Read, _) => 1,\n  (IoOp::Write, _) => 2,\n }\n}\n",
                0,
            ),
            (
                "fn f(k: OpKind, n: u8) -> u32 {\n match (k, n) {\n  (OpKind::Read, x) if x > 3 => { 1 }\n  (OpKind::Write, _) => 2,\n  _ => 3,\n }\n}\n",
                1,
            ),
        ] {
            let (clean, _, file) = prep(src);
            let ast_hits = enum_wildcard(&clean, &file);
            let legacy_hits = rules::enum_wildcard(&clean);
            assert_eq!(ast_hits.len(), want, "{src}\n{ast_hits:?}");
            assert_eq!(legacy_hits.len(), want, "legacy drifted: {src}");
            for (a, l) in ast_hits.iter().zip(&legacy_hits) {
                assert_eq!(a.line, l.line, "{src}");
                assert_eq!(a.message, l.message);
            }
        }
    }

    #[test]
    fn string_and_comment_false_positives_stay_dead() {
        let src = "// x.unwrap()\nconst S: &str = \"panic!( let _ = a() as u64 HashMap\";\n";
        let (clean, trees, _) = prep(src);
        assert!(no_panic(&clean, &trees).is_empty());
        assert!(bare_cast(&clean, &trees).is_empty());
        assert!(let_underscore_result(&clean, &trees).is_empty());
        assert!(nondeterministic_collection(&clean, &trees).is_empty());
    }
}
