//! Self-tests for the `simlint` gate.
//!
//! Four layers:
//!
//! 1. **Fixture corpus** (`fixtures/ws/`): a miniature workspace whose
//!    files each trigger specific rules. The scanner must find exactly
//!    the planted violations — no more (negative cases: test code,
//!    comments, strings, word boundaries, out-of-scope crates).
//! 2. **Engine comparison**: the core fixture plants violations the
//!    legacy per-line engine provably misses (multiline tokens, aliased
//!    imports, cross-function dataflow, cross-crate unit contracts);
//!    the AST engine and the semantic passes must catch every one.
//! 3. **Gate behaviour**: the `simlint` binary must exit nonzero on the
//!    fixture corpus and clean on the real workspace.
//! 4. **Ratchet**: `simlint.allow` may only burn down — totals are
//!    pinned strictly below the seed baselines, strict-crate `no_panic`
//!    entries are rejected outright, and the semantic passes carry no
//!    budget at all.

use simlint::allow::Allowlist;
use simlint::lexer::clean_source;
use simlint::rules::{self, Rule};
use simlint::{
    check, rules_for, scan_source, scan_workspace, source_crate, STRICT_LET_UNDERSCORE_CRATES,
    STRICT_NO_PANIC_CRATES, STRICT_NO_PRINTLN_CRATES,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Seed-baseline `no_panic` count; the allowlist burned this down to
/// zero, and it must stay there.
const SEED_NO_PANIC: usize = 86;
/// Seed-baseline `bare_cast` count; the allowlist must stay strictly
/// below it.
const SEED_BARE_CAST: usize = 256;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn real_root() -> PathBuf {
    simlint::workspace_root()
}

#[test]
fn fixture_corpus_triggers_every_rule_exactly() {
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    assert_eq!(report.files_scanned, 6, "fixture corpus shape changed");
    // Strict-crate panics and clocks (flashsim fixture).
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPanic, "crates/flashsim/src/lib.rs".into())),
        Some(&3),
        "unwrap + expect + panic! in non-test code; test-module unwrap exempt"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::WallClock, "crates/flashsim/src/lib.rs".into())),
        Some(&2),
        "Instant::now + SystemTime"
    );
    // Determinism and unit-safety (ssd fixture).
    assert_eq!(
        report.counts.get(&(
            Rule::NondeterministicCollection,
            "crates/ssd/src/lib.rs".into()
        )),
        Some(&2),
        "HashMap + HashSet; LinkedHashMapLike must not fire"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::BareCast, "crates/ssd/src/lib.rs".into())),
        Some(&2),
        "two real casts; comment/string casts must not fire"
    );
    // Strict-crate Result discard (flashsim fixture): the SystemTime
    // line fires wall_clock AND let_underscore_result; the test-module
    // discard is exempt.
    assert_eq!(
        report.counts.get(&(
            Rule::LetUnderscoreResult,
            "crates/flashsim/src/lib.rs".into()
        )),
        Some(&1)
    );
    // Library printing (flashsim fixture): the println and the eprintln,
    // each once — comment/string/test occurrences exempt, and the
    // `println!(` inside `eprintln!(` must not double-count.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPrintlnInLib, "crates/flashsim/src/lib.rs".into())),
        Some(&2)
    );
    // The binary entry point prints freely: the rule is lib-only.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPrintlnInLib, "src/main.rs".into())),
        None
    );
    // Permissive-crate panic (ooc fixture) — counted, but allowlistable.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPanic, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // Permissive-crate discard (ooc fixture): the bare `let _ =` only —
    // `_guard` and the typed `let _: u32` are deliberate, not counted.
    assert_eq!(
        report
            .counts
            .get(&(Rule::LetUnderscoreResult, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // Pool discipline (ooc fixture): the direct spawn only — the scoped
    // `s.spawn` must not be counted.
    assert_eq!(
        report
            .counts
            .get(&(Rule::ThreadSpawn, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // AST-only classics (core fixture): the multiline `.unwrap\n()` and
    // the `use`-aliased spawn — each invisible to the per-line engine
    // (see `semantic_fixture_is_invisible_to_the_legacy_engine`).
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPanic, "crates/core/src/lib.rs".into())),
        Some(&1),
        "the unwrap split across lines"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::ThreadSpawn, "crates/core/src/lib.rs".into())),
        Some(&1),
        "the aliased spawn call"
    );
    // Taint pass: wall clocks reaching pub returns in the flashsim and
    // ooc fixtures, plus the three planted flows in the core fixture
    // (SystemTime via a local, env::var across a private fn, and a
    // tainted Tracer::emit argument).
    assert_eq!(
        report
            .counts
            .get(&(Rule::NondetTaint, "crates/flashsim/src/lib.rs".into())),
        Some(&1),
        "Instant::now returned from `pub fn wall_clock_read`"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::NondetTaint, "crates/ooc/src/lib.rs".into())),
        Some(&1),
        "Instant::now returned from `pub fn unscoped_clock`"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::NondetTaint, "crates/core/src/lib.rs".into())),
        Some(&3),
        "local flow + interprocedural flow + sink flow"
    );
    // Unit pass: all four planted mismatches in the core fixture —
    // addition, let binding, cross-crate call argument, struct field.
    assert_eq!(
        report
            .counts
            .get(&(Rule::UnitMismatch, "crates/core/src/lib.rs".into())),
        Some(&4)
    );
    // The negatives: dimension-changing arithmetic and the enum tag
    // named `Instant` produce nothing anywhere else.
    assert_eq!(report.total(Rule::NondetTaint), 5);
    assert_eq!(report.total(Rule::UnitMismatch), 4);
    // Concurrency passes (interconnect + ssd fixtures): the Relaxed
    // publish/consume pair; the alpha->beta edges (direct nesting and
    // the interprocedural one via `grab_beta`) and the ssd fixture's
    // beta->alpha edge that closes the cycle. The Release/Acquire
    // pair, the write-free counter, the dropped guard, and the
    // consistently-ordered gamma/delta pair all stay silent.
    assert_eq!(
        report.counts.get(&(
            Rule::AtomicOrdering,
            "crates/interconnect/src/lib.rs".into()
        )),
        Some(&2),
        "Relaxed publish + Relaxed consume"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::LockOrder, "crates/interconnect/src/lib.rs".into())),
        Some(&2),
        "direct + interprocedural alpha->beta edges"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::LockOrder, "crates/ssd/src/lib.rs".into())),
        Some(&1),
        "the beta->alpha edge closing the cross-file cycle"
    );
    assert_eq!(report.total(Rule::AtomicOrdering), 2);
    assert_eq!(report.total(Rule::LockOrder), 3);
    // Hotpath pass (ssd fixture): `run_observed` is a declared hot
    // root, so the `vec![]` in its loop is per-event; the hoisted
    // `scratch` reuse (`clear`/`push`) must NOT fire.
    assert_eq!(
        report
            .counts
            .get(&(Rule::HotPathAlloc, "crates/ssd/src/lib.rs".into())),
        Some(&1),
        "the vec![] in the hot loop, and nothing else"
    );
    assert_eq!(report.total(Rule::HotPathAlloc), 1);
    // Out-of-scope rules must not fire in ooc (cast + clock present there).
    assert_eq!(
        report
            .counts
            .get(&(Rule::BareCast, "crates/ooc/src/lib.rs".into())),
        None
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::WallClock, "crates/ooc/src/lib.rs".into())),
        None
    );
    // Exhaustiveness (root-package fixture): one match *on* and one
    // classification *into* a watched enum; the unwatched match exempt.
    assert_eq!(
        report
            .counts
            .get(&(Rule::EnumWildcard, "src/main.rs".into())),
        Some(&2)
    );
    // Totals: every rule fires somewhere in the corpus.
    for rule in Rule::ALL {
        assert!(report.total(rule) > 0, "{} never fired", rule.id());
    }
}

#[test]
fn fixture_corpus_fails_the_gate() {
    // Library level: empty allowlist -> violations for every planted file.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let verdict = check(&report, &Allowlist::default());
    assert!(!verdict.ok());
    assert_eq!(
        verdict.violations.len(),
        20,
        "one violation per (rule, file)"
    );
    assert!(verdict.stale.is_empty() && verdict.forbidden.is_empty());

    // Binary level: the gate must exit nonzero on the corpus.
    let status = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture_root())
        .status()
        .expect("run simlint binary");
    assert_eq!(status.code(), Some(1), "gate must fail on the fixtures");
}

#[test]
fn strict_crate_panics_cannot_be_allowlisted() {
    // Even a fully up-to-date allowlist cannot excuse no_panic findings
    // in the strict simulator crates.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let allow = Allowlist::from_counts(&report.counts);
    let verdict = check(&report, &allow);
    assert!(verdict.violations.is_empty(), "all counts covered");
    assert!(verdict.stale.is_empty());
    // Strict-crate entries (3, all flashsim) plus the semantic-pass
    // entries (nondet_taint in three files, unit_mismatch in one,
    // atomic_ordering in one, lock_order in two), which are never
    // allowlistable anywhere.
    assert_eq!(verdict.forbidden.len(), 10, "{:?}", verdict.forbidden);
    for f in verdict.forbidden.iter().filter(|f| {
        !f.contains("nondet_taint")
            && !f.contains("unit_mismatch")
            && !f.contains("atomic_ordering")
            && !f.contains("lock_order")
    }) {
        assert!(f.contains("crates/flashsim/src/lib.rs"), "{f}");
    }
    assert!(verdict.forbidden.iter().any(|f| f.contains("`no_panic`")));
    assert!(verdict
        .forbidden
        .iter()
        .any(|f| f.contains("`let_underscore_result`")));
    assert!(verdict
        .forbidden
        .iter()
        .any(|f| f.contains("`no_println_in_lib`")));
    assert_eq!(
        verdict
            .forbidden
            .iter()
            .filter(|f| f.contains("`nondet_taint` is never allowlistable"))
            .count(),
        3
    );
    assert_eq!(
        verdict
            .forbidden
            .iter()
            .filter(|f| f.contains("`unit_mismatch` is never allowlistable"))
            .count(),
        1
    );
    assert_eq!(
        verdict
            .forbidden
            .iter()
            .filter(|f| f.contains("`atomic_ordering` is never allowlistable"))
            .count(),
        1
    );
    assert_eq!(
        verdict
            .forbidden
            .iter()
            .filter(|f| f.contains("`lock_order` is never allowlistable"))
            .count(),
        2
    );
    assert!(!verdict.ok());
}

#[test]
fn allowlist_only_ratchets_down() {
    // Granting more than reality is a stale entry: the gate forces the
    // allowlist to track the actual count exactly, so it can only shrink.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let mut counts = report.counts.clone();
    if let Some(c) = counts.get_mut(&(Rule::NoPanic, "crates/ooc/src/lib.rs".into())) {
        *c += 1; // pretend a violation was fixed without ratcheting
    }
    let inflated = Allowlist::from_counts(&counts);
    let verdict = check(&report, &inflated);
    assert!(
        verdict
            .stale
            .iter()
            .any(|s| s.contains("crates/ooc/src/lib.rs")),
        "over-granted entry must be reported as stale"
    );
    assert!(!verdict.ok());
}

#[test]
fn real_workspace_is_clean_under_its_allowlist() {
    let root = real_root();
    let report = scan_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    let verdict = check(&report, &allow);
    assert!(
        verdict.ok(),
        "workspace gate broken:\nviolations: {:?}\nstale: {:?}\nforbidden: {:?}",
        verdict.violations,
        verdict.stale,
        verdict.forbidden
    );
}

#[test]
fn allowlist_totals_stay_below_seed_baselines() {
    let text =
        std::fs::read_to_string(real_root().join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    let no_panic = allow.total(Rule::NoPanic);
    let bare_cast = allow.total(Rule::BareCast);
    assert!(
        no_panic < SEED_NO_PANIC,
        "no_panic allowance {no_panic} must stay strictly below the seed baseline {SEED_NO_PANIC}"
    );
    assert_eq!(
        no_panic, 0,
        "the no_panic debt was fully burned down (error-returning paths \
         in the bench binaries and ooc); it must not come back"
    );
    assert!(
        bare_cast < SEED_BARE_CAST,
        "bare_cast allowance {bare_cast} must stay strictly below the seed baseline {SEED_BARE_CAST}"
    );
    // Simulator-state determinism has no burn-down budget at all.
    assert_eq!(allow.total(Rule::NondeterministicCollection), 0);
    assert_eq!(allow.total(Rule::WallClock), 0);
    assert_eq!(allow.total(Rule::EnumWildcard), 0);
    // The workspace was scrubbed of `let _ =` when the rule landed, so
    // the discard rule starts — and stays — at zero budget.
    assert_eq!(allow.total(Rule::LetUnderscoreResult), 0);
    // Library printing was burned down when the rule landed (banners
    // render strings now): zero budget from day one.
    assert_eq!(allow.total(Rule::NoPrintlnInLib), 0);
    // Pool discipline: the four legacy `ooc::dooc` spawn sites migrated
    // onto the vendored pool; the budget is zero for good.
    assert_eq!(allow.total(Rule::ThreadSpawn), 0);
    // The semantic passes are never allowlistable, so they can never
    // carry a budget either.
    assert_eq!(allow.total(Rule::NondetTaint), 0);
    assert_eq!(allow.total(Rule::UnitMismatch), 0);
    assert_eq!(allow.total(Rule::AtomicOrdering), 0);
    assert_eq!(allow.total(Rule::LockOrder), 0);
    // Hot-path allocation debt: the v3 burn-down left 12 audited-benign
    // sites (API-intrinsic owned returns and metadata-small clones, each
    // carrying a "Hot-path audit" comment). The budget only shrinks.
    assert!(
        allow.total(Rule::HotPathAlloc) <= 12,
        "hotpath_alloc allowance {} must stay at or below the v3 burn-down \
         residue of 12",
        allow.total(Rule::HotPathAlloc)
    );
}

/// The core fixture plants violations structured so the legacy per-line
/// engine — run under the same rule scoping — sees an entirely clean
/// file, while the AST engine and the semantic passes catch all nine.
/// This is the regression test for why simlint grew an AST.
#[test]
fn semantic_fixture_is_invisible_to_the_legacy_engine() {
    let path = "crates/core/src/lib.rs";
    let source = std::fs::read_to_string(fixture_root().join(path)).expect("core fixture");
    let clean = clean_source(&source);

    // Legacy engine, same scope (core: no wall_clock / bare_cast): zero.
    let mut legacy = Vec::new();
    for rule in rules_for(path) {
        legacy.extend(match rule {
            Rule::NoPanic => rules::no_panic(&clean),
            Rule::NondeterministicCollection => rules::nondeterministic_collection(&clean),
            Rule::EnumWildcard => rules::enum_wildcard(&clean),
            Rule::LetUnderscoreResult => rules::let_underscore_result(&clean),
            Rule::NoPrintlnInLib => rules::no_println_in_lib(&clean),
            Rule::ThreadSpawn => rules::thread_spawn(&clean),
            // The per-line engine has no dataflow: these rules simply
            // do not exist there.
            _ => Vec::new(),
        });
    }
    assert!(
        legacy.is_empty(),
        "the per-line engine must stay blind to this file: {legacy:?}"
    );

    // AST engine (per-file rules): the multiline unwrap and the aliased
    // spawn.
    let ast_findings = scan_source(path, &source);
    assert_eq!(ast_findings.len(), 2, "{ast_findings:?}");
    assert!(ast_findings
        .iter()
        .any(|l| l.finding.rule == Rule::NoPanic && l.finding.message.contains("unwrap")));
    assert!(ast_findings
        .iter()
        .any(|l| l.finding.rule == Rule::ThreadSpawn));

    // Semantic passes (workspace scan): the planted dataflow violations,
    // with messages naming the mechanism each one needed.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let core: Vec<_> = report.findings.iter().filter(|l| l.path == path).collect();
    let taint: Vec<_> = core
        .iter()
        .filter(|l| l.finding.rule == Rule::NondetTaint)
        .collect();
    let units: Vec<_> = core
        .iter()
        .filter(|l| l.finding.rule == Rule::UnitMismatch)
        .collect();
    assert_eq!(taint.len(), 3, "{taint:?}");
    // Local dataflow: SystemTime through `let t` into the pub return.
    assert!(taint
        .iter()
        .any(|l| l.finding.message.contains("`pub fn stamp_seed`")
            && l.finding.message.contains("SystemTime")));
    // Interprocedural: env::var inside the private `knob`, surfaced at
    // the pub caller via the workspace fixpoint.
    assert!(taint
        .iter()
        .any(|l| l.finding.message.contains("`pub fn worker_count`")
            && l.finding.message.contains("knob")));
    // Sink flow: a tainted argument reaching `Tracer::emit`.
    assert!(taint
        .iter()
        .any(|l| l.finding.message.contains("Tracer::emit")));
    assert_eq!(units.len(), 4, "{units:?}");
    // Cross-crate contract: the callee's parameter is declared in the
    // ssd fixture; only the symbol index connects the two files.
    assert!(units.iter().any(|l| l
        .finding
        .message
        .contains("argument `deadline_ns` of `admit` expects ns")));
    assert!(units
        .iter()
        .any(|l| l.finding.message.contains("`+` combines")));
    assert!(units.iter().any(|l| l
        .finding
        .message
        .contains("`deadline_ns` is declared in ns")));
    assert!(units
        .iter()
        .any(|l| l.finding.message.contains("field `start_ns`")));
}

#[test]
fn no_strict_crate_no_panic_entries_in_allowlist() {
    let text =
        std::fs::read_to_string(real_root().join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    for (rule, path, count) in allow.iter() {
        let strict: &[&str] = match rule {
            Rule::NoPanic => &STRICT_NO_PANIC_CRATES,
            Rule::LetUnderscoreResult => &STRICT_LET_UNDERSCORE_CRATES,
            Rule::NoPrintlnInLib => &STRICT_NO_PRINTLN_CRATES,
            _ => continue,
        };
        let krate = source_crate(path).expect("allowlist paths are in scope");
        assert!(
            !strict.contains(&krate),
            "{path}: {count} `{}` entries in strict crate `{krate}`",
            rule.id()
        );
    }
}

#[test]
fn gate_is_clean_on_the_real_workspace() {
    let status = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(real_root())
        .status()
        .expect("run simlint binary");
    assert_eq!(status.code(), Some(0), "gate must pass on the workspace");
}
