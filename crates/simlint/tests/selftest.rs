//! Self-tests for the `simlint` gate.
//!
//! Three layers:
//!
//! 1. **Fixture corpus** (`fixtures/ws/`): a miniature workspace whose
//!    files each trigger specific rules. The scanner must find exactly
//!    the planted violations — no more (negative cases: test code,
//!    comments, strings, word boundaries, out-of-scope crates).
//! 2. **Gate behaviour**: the `simlint` binary must exit nonzero on the
//!    fixture corpus and clean on the real workspace.
//! 3. **Ratchet**: `simlint.allow` may only burn down — totals are
//!    pinned strictly below the seed baselines, and strict-crate
//!    `no_panic` entries are rejected outright.

use simlint::allow::Allowlist;
use simlint::rules::Rule;
use simlint::{
    check, scan_workspace, source_crate, STRICT_LET_UNDERSCORE_CRATES, STRICT_NO_PANIC_CRATES,
    STRICT_NO_PRINTLN_CRATES,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Seed-baseline `no_panic` count; the allowlist must stay strictly below.
const SEED_NO_PANIC: usize = 86;
/// Seed-baseline `bare_cast` count; ditto.
const SEED_BARE_CAST: usize = 256;
/// `thread_spawn` budget when the rule landed: the four legacy spawn
/// sites in `ooc::dooc` (filter x2, sched, pool). May only burn down
/// as those migrate onto the vendored pool.
const SEED_THREAD_SPAWN: usize = 4;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn real_root() -> PathBuf {
    simlint::workspace_root()
}

#[test]
fn fixture_corpus_triggers_every_rule_exactly() {
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    assert_eq!(report.files_scanned, 4, "fixture corpus shape changed");
    // Strict-crate panics and clocks (flashsim fixture).
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPanic, "crates/flashsim/src/lib.rs".into())),
        Some(&3),
        "unwrap + expect + panic! in non-test code; test-module unwrap exempt"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::WallClock, "crates/flashsim/src/lib.rs".into())),
        Some(&2),
        "Instant::now + SystemTime"
    );
    // Determinism and unit-safety (ssd fixture).
    assert_eq!(
        report.counts.get(&(
            Rule::NondeterministicCollection,
            "crates/ssd/src/lib.rs".into()
        )),
        Some(&2),
        "HashMap + HashSet; LinkedHashMapLike must not fire"
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::BareCast, "crates/ssd/src/lib.rs".into())),
        Some(&2),
        "two real casts; comment/string casts must not fire"
    );
    // Strict-crate Result discard (flashsim fixture): the SystemTime
    // line fires wall_clock AND let_underscore_result; the test-module
    // discard is exempt.
    assert_eq!(
        report.counts.get(&(
            Rule::LetUnderscoreResult,
            "crates/flashsim/src/lib.rs".into()
        )),
        Some(&1)
    );
    // Library printing (flashsim fixture): the println and the eprintln,
    // each once — comment/string/test occurrences exempt, and the
    // `println!(` inside `eprintln!(` must not double-count.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPrintlnInLib, "crates/flashsim/src/lib.rs".into())),
        Some(&2)
    );
    // The binary entry point prints freely: the rule is lib-only.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPrintlnInLib, "src/main.rs".into())),
        None
    );
    // Permissive-crate panic (ooc fixture) — counted, but allowlistable.
    assert_eq!(
        report
            .counts
            .get(&(Rule::NoPanic, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // Permissive-crate discard (ooc fixture): the bare `let _ =` only —
    // `_guard` and the typed `let _: u32` are deliberate, not counted.
    assert_eq!(
        report
            .counts
            .get(&(Rule::LetUnderscoreResult, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // Pool discipline (ooc fixture): the direct spawn only — the scoped
    // `s.spawn` must not be counted.
    assert_eq!(
        report
            .counts
            .get(&(Rule::ThreadSpawn, "crates/ooc/src/lib.rs".into())),
        Some(&1)
    );
    // Out-of-scope rules must not fire in ooc (cast + clock present there).
    assert_eq!(
        report
            .counts
            .get(&(Rule::BareCast, "crates/ooc/src/lib.rs".into())),
        None
    );
    assert_eq!(
        report
            .counts
            .get(&(Rule::WallClock, "crates/ooc/src/lib.rs".into())),
        None
    );
    // Exhaustiveness (root-package fixture): one match *on* and one
    // classification *into* a watched enum; the unwatched match exempt.
    assert_eq!(
        report
            .counts
            .get(&(Rule::EnumWildcard, "src/main.rs".into())),
        Some(&2)
    );
    // Totals: every rule fires somewhere in the corpus.
    for rule in Rule::ALL {
        assert!(report.total(rule) > 0, "{} never fired", rule.id());
    }
}

#[test]
fn fixture_corpus_fails_the_gate() {
    // Library level: empty allowlist -> violations for every planted file.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let verdict = check(&report, &Allowlist::default());
    assert!(!verdict.ok());
    assert_eq!(
        verdict.violations.len(),
        10,
        "one violation per (rule, file)"
    );
    assert!(verdict.stale.is_empty() && verdict.forbidden.is_empty());

    // Binary level: the gate must exit nonzero on the corpus.
    let status = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture_root())
        .status()
        .expect("run simlint binary");
    assert_eq!(status.code(), Some(1), "gate must fail on the fixtures");
}

#[test]
fn strict_crate_panics_cannot_be_allowlisted() {
    // Even a fully up-to-date allowlist cannot excuse no_panic findings
    // in the strict simulator crates.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let allow = Allowlist::from_counts(&report.counts);
    let verdict = check(&report, &allow);
    assert!(verdict.violations.is_empty(), "all counts covered");
    assert!(verdict.stale.is_empty());
    assert_eq!(
        verdict.forbidden.len(),
        3,
        "the flashsim no_panic, let_underscore_result and no_println_in_lib entries are forbidden"
    );
    for f in &verdict.forbidden {
        assert!(f.contains("crates/flashsim/src/lib.rs"));
    }
    assert!(verdict.forbidden.iter().any(|f| f.contains("`no_panic`")));
    assert!(verdict
        .forbidden
        .iter()
        .any(|f| f.contains("`let_underscore_result`")));
    assert!(verdict
        .forbidden
        .iter()
        .any(|f| f.contains("`no_println_in_lib`")));
    assert!(!verdict.ok());
}

#[test]
fn allowlist_only_ratchets_down() {
    // Granting more than reality is a stale entry: the gate forces the
    // allowlist to track the actual count exactly, so it can only shrink.
    let report = scan_workspace(&fixture_root()).expect("fixture scan");
    let mut counts = report.counts.clone();
    if let Some(c) = counts.get_mut(&(Rule::NoPanic, "crates/ooc/src/lib.rs".into())) {
        *c += 1; // pretend a violation was fixed without ratcheting
    }
    let inflated = Allowlist::from_counts(&counts);
    let verdict = check(&report, &inflated);
    assert!(
        verdict
            .stale
            .iter()
            .any(|s| s.contains("crates/ooc/src/lib.rs")),
        "over-granted entry must be reported as stale"
    );
    assert!(!verdict.ok());
}

#[test]
fn real_workspace_is_clean_under_its_allowlist() {
    let root = real_root();
    let report = scan_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    let verdict = check(&report, &allow);
    assert!(
        verdict.ok(),
        "workspace gate broken:\nviolations: {:?}\nstale: {:?}\nforbidden: {:?}",
        verdict.violations,
        verdict.stale,
        verdict.forbidden
    );
}

#[test]
fn allowlist_totals_stay_below_seed_baselines() {
    let text =
        std::fs::read_to_string(real_root().join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    let no_panic = allow.total(Rule::NoPanic);
    let bare_cast = allow.total(Rule::BareCast);
    assert!(
        no_panic < SEED_NO_PANIC,
        "no_panic allowance {no_panic} must stay strictly below the seed baseline {SEED_NO_PANIC}"
    );
    assert!(
        bare_cast < SEED_BARE_CAST,
        "bare_cast allowance {bare_cast} must stay strictly below the seed baseline {SEED_BARE_CAST}"
    );
    // Simulator-state determinism has no burn-down budget at all.
    assert_eq!(allow.total(Rule::NondeterministicCollection), 0);
    assert_eq!(allow.total(Rule::WallClock), 0);
    assert_eq!(allow.total(Rule::EnumWildcard), 0);
    // The workspace was scrubbed of `let _ =` when the rule landed, so
    // the discard rule starts — and stays — at zero budget.
    assert_eq!(allow.total(Rule::LetUnderscoreResult), 0);
    // Library printing was burned down when the rule landed (banners
    // render strings now): zero budget from day one.
    assert_eq!(allow.total(Rule::NoPrintlnInLib), 0);
    // Pool discipline: only the legacy spawn sites, burning down.
    let spawns = allow.total(Rule::ThreadSpawn);
    assert!(
        spawns <= SEED_THREAD_SPAWN,
        "thread_spawn allowance {spawns} must stay at or below the {SEED_THREAD_SPAWN} legacy sites"
    );
}

#[test]
fn no_strict_crate_no_panic_entries_in_allowlist() {
    let text =
        std::fs::read_to_string(real_root().join("simlint.allow")).expect("simlint.allow exists");
    let allow = Allowlist::parse(&text).expect("simlint.allow parses");
    for (rule, path, count) in allow.iter() {
        let strict: &[&str] = match rule {
            Rule::NoPanic => &STRICT_NO_PANIC_CRATES,
            Rule::LetUnderscoreResult => &STRICT_LET_UNDERSCORE_CRATES,
            Rule::NoPrintlnInLib => &STRICT_NO_PRINTLN_CRATES,
            _ => continue,
        };
        let krate = source_crate(path).expect("allowlist paths are in scope");
        assert!(
            !strict.contains(&krate),
            "{path}: {count} `{}` entries in strict crate `{krate}`",
            rule.id()
        );
    }
}

#[test]
fn gate_is_clean_on_the_real_workspace() {
    let status = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(real_root())
        .status()
        .expect("run simlint binary");
    assert_eq!(status.code(), Some(0), "gate must pass on the workspace");
}
