//! Property tests for the `nvmtypes::convert` checked-conversion helpers.
//!
//! These helpers are the single audited choke point `simlint` steers all
//! unit arithmetic through (its `bare_cast` rule); the properties here
//! pin the contract that makes that steering safe: in-range round trips
//! are exact, narrowings reject or saturate instead of wrapping, and the
//! explicitly-approximate path is exact below 2^53.

use nvmtypes::{
    approx_f64, trunc_u64, try_u32, u32_from, u64_from_usize, usize_from, usize_from_u32,
};
use proptest::prelude::*;

proptest! {
    // --- round trips (lossless in range) -----------------------------

    #[test]
    fn u64_usize_round_trip(n in prop::num::u64::ANY) {
        // Targets are 64-bit here, so every u64 survives the round trip.
        prop_assert_eq!(u64_from_usize(usize_from(n)), n);
    }

    #[test]
    fn u32_usize_round_trip(n in prop::num::u32::ANY) {
        prop_assert_eq!(u64_from_usize(usize_from_u32(n)), u64::from(n));
    }

    #[test]
    fn u32_narrowing_round_trip(n in prop::num::u32::ANY) {
        let wide = u64::from(n);
        prop_assert_eq!(try_u32(wide), Some(n));
        prop_assert_eq!(u32_from(wide), n);
    }

    // --- overflow rejection ------------------------------------------

    #[test]
    fn try_u32_rejects_everything_above_u32_max(n in (u64::from(u32::MAX) + 1)..=u64::MAX) {
        prop_assert_eq!(try_u32(n), None);
    }

    // --- approximate path ---------------------------------------------

    #[test]
    fn approx_is_exact_below_2_53(n in 0u64..(1u64 << 53)) {
        // Integers up to 2^53 are exactly representable as f64, so the
        // explicitly-approximate helper is in fact exact on this range
        // and truncation inverts it.
        prop_assert_eq!(trunc_u64(approx_f64(n)), n);
    }

    #[test]
    fn approx_is_monotone(a in prop::num::u64::ANY, b in prop::num::u64::ANY) {
        // Even above 2^53 (where rounding to the nearest double loses
        // low bits) the mapping must never reorder quantities.
        if a <= b {
            prop_assert!(approx_f64(a) <= approx_f64(b));
        } else {
            prop_assert!(approx_f64(a) >= approx_f64(b));
        }
    }

    // --- truncation saturates, never wraps ---------------------------

    #[test]
    fn trunc_is_saturating_and_ordered(x in -1.0e30f64..1.0e30) {
        let t = trunc_u64(x);
        if x <= 0.0 {
            prop_assert_eq!(t, 0);
        } else if x < approx_f64(u64::MAX) {
            // Truncation is within 1 of the real value below the ceiling.
            prop_assert!(approx_f64(t) <= x);
            prop_assert!(x - approx_f64(t) < 1.0 || t == u64::MAX);
        } else {
            prop_assert_eq!(t, u64::MAX);
        }
    }

    #[test]
    fn trunc_inverts_ceil_of_positive_ratios(num in 1u64..1_000_000_000, den in 1u64..1_000_000) {
        // The simulator's canonical use: ns = ceil(bytes / rate) re-entering
        // integer time. ceil of a positive finite ratio is >= 1 and exact.
        let ratio = approx_f64(num) / approx_f64(den);
        let ns = trunc_u64(ratio.ceil());
        prop_assert!(ns >= 1);
        prop_assert!(approx_f64(ns) >= ratio);
        prop_assert!(approx_f64(ns) - ratio < 1.0);
    }
}

#[test]
fn trunc_zeroes_nan() {
    assert_eq!(trunc_u64(f64::NAN), 0);
    assert_eq!(trunc_u64(f64::NEG_INFINITY), 0);
    assert_eq!(trunc_u64(f64::INFINITY), u64::MAX);
}
