//! SSD structural geometry: channels, packages, dies, planes, blocks, pages.
//!
//! The paper's simulated device (§4.1): *"Each of these NVM types are
//! simulated in equivalent SSD architectures equipped with 8 channels,
//! 64 NVM packages, and a total of 128 NVM dies."* — i.e. 8 packages per
//! channel and 2 dies per package. NAND dies additionally carry 2 planes.

use crate::kind::NvmKind;
use serde::{Deserialize, Serialize};

/// Structural geometry of a simulated SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdGeometry {
    /// Number of independent channels (shared buses).
    pub channels: u32,
    /// NVM packages attached to each channel.
    pub packages_per_channel: u32,
    /// Dies stacked in each package.
    pub dies_per_package: u32,
    /// Planes per die (concurrent cell arrays sharing the die's registers).
    pub planes_per_die: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
}

impl SsdGeometry {
    /// The paper's 8-channel / 64-package / 128-die device with the page
    /// size of `kind`. PCM gets more (smaller) blocks per plane so the
    /// device capacity stays in the same class despite 64-byte pages.
    pub fn paper(kind: NvmKind) -> SsdGeometry {
        let (blocks_per_plane, pages_per_block) = match kind {
            // NAND: 2048 blocks x 128 pages/plane.
            NvmKind::Slc | NvmKind::Mlc | NvmKind::Tlc => (2048, 128),
            // PCM: tiny 64 B pages; keep 128-page (8 KiB) emulated erase
            // blocks but many more of them per plane.
            NvmKind::Pcm => (262_144, 128),
        };
        SsdGeometry {
            channels: 8,
            packages_per_channel: 8,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane,
            pages_per_block,
        }
    }

    /// A small geometry for fast unit tests: 2 channels, 2 packages per
    /// channel, 2 dies per package, 2 planes.
    pub fn tiny() -> SsdGeometry {
        SsdGeometry {
            channels: 2,
            packages_per_channel: 2,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 32,
        }
    }

    /// Total number of packages in the device.
    pub fn total_packages(&self) -> u32 {
        self.channels * self.packages_per_channel
    }

    /// Total number of dies in the device.
    pub fn total_dies(&self) -> u32 {
        self.total_packages() * self.dies_per_package
    }

    /// Dies attached to one channel.
    pub fn dies_per_channel(&self) -> u32 {
        self.packages_per_channel * self.dies_per_package
    }

    /// Pages per die across all its planes.
    pub fn pages_per_die(&self) -> u64 {
        u64::from(self.planes_per_die)
            * u64::from(self.blocks_per_plane)
            * u64::from(self.pages_per_block)
    }

    /// Pages per single plane.
    pub fn pages_per_plane(&self) -> u64 {
        u64::from(self.blocks_per_plane) * u64::from(self.pages_per_block)
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.pages_per_die() * u64::from(self.total_dies())
    }

    /// Raw capacity in bytes for a given page size.
    pub fn capacity_bytes(&self, page_size: u32) -> u64 {
        self.total_pages() * u64::from(page_size)
    }

    /// Number of distinct `(die, plane)` pairs — the width of the device's
    /// maximum striping pattern.
    pub fn total_plane_slots(&self) -> u64 {
        u64::from(self.total_dies()) * u64::from(self.planes_per_die)
    }

    /// A well-defined copy of this geometry: every dimension clamped to
    /// at least 1. A zero-sized dimension has no physical meaning and
    /// would poison downstream index arithmetic; the simulators sanitize
    /// rather than panic on such (deserialised or hand-built) configs.
    #[must_use]
    pub fn sanitized(mut self) -> SsdGeometry {
        self.channels = self.channels.max(1);
        self.packages_per_channel = self.packages_per_channel.max(1);
        self.dies_per_package = self.dies_per_package.max(1);
        self.planes_per_die = self.planes_per_die.max(1);
        self.blocks_per_plane = self.blocks_per_plane.max(1);
        self.pages_per_block = self.pages_per_block.max(1);
        self
    }

    /// Checks internal consistency; useful for deserialised configs.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        for (name, v) in [
            ("channels", self.channels),
            ("packages_per_channel", self.packages_per_channel),
            ("dies_per_package", self.dies_per_package),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
        ] {
            if v == 0 {
                return Err(crate::error::SimError::invalid_config(
                    format!("geometry.{name}"),
                    "must be non-zero",
                ));
            }
        }
        Ok(())
    }
}

/// Global die index in `0..geometry.total_dies()`.
///
/// Dies are numbered channel-major: die `i` lives on channel
/// `i % channels`, package `(i / channels) % packages_per_channel`,
/// die-in-package `i / (channels * packages_per_channel)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DieIndex(pub u32);

impl DieIndex {
    /// Channel this die sits on.
    pub fn channel(self, g: &SsdGeometry) -> u32 {
        self.0 % g.channels
    }

    /// Global package index (`0..total_packages`) this die belongs to.
    pub fn package(self, g: &SsdGeometry) -> u32 {
        self.0 % g.total_packages()
    }

    /// Builds the die index for (channel, package-in-channel, die-in-package).
    pub fn from_parts(g: &SsdGeometry, channel: u32, package: u32, die: u32) -> DieIndex {
        debug_assert!(channel < g.channels);
        debug_assert!(package < g.packages_per_channel);
        debug_assert!(die < g.dies_per_package);
        DieIndex(die * g.total_packages() + package * g.channels + channel)
    }
}

/// A fully resolved physical location inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysLoc {
    /// Channel index.
    pub channel: u32,
    /// Package index within the channel.
    pub package: u32,
    /// Die index within the package.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Page index within the plane (block * pages_per_block + page).
    pub page: u64,
}

impl PhysLoc {
    /// Global die index of this location.
    pub fn die_index(&self, g: &SsdGeometry) -> DieIndex {
        DieIndex::from_parts(g, self.channel, self.package, self.die)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_section_4_1() {
        for kind in NvmKind::ALL {
            let g = SsdGeometry::paper(kind);
            assert_eq!(g.channels, 8);
            assert_eq!(g.total_packages(), 64);
            assert_eq!(g.total_dies(), 128);
            g.validate().unwrap();
        }
    }

    #[test]
    fn nand_capacity_is_plausible() {
        // TLC: 128 dies * 2 planes * 2048 blocks * 128 pages * 8 KiB = 512 GiB.
        let g = SsdGeometry::paper(NvmKind::Tlc);
        assert_eq!(g.capacity_bytes(8192), 512 * crate::time::GIB);
    }

    #[test]
    fn pcm_capacity_is_plausible() {
        // PCM: 128 dies * 2 planes * 262144 blocks * 128 pages * 64 B = 512 GiB.
        let g = SsdGeometry::paper(NvmKind::Pcm);
        assert_eq!(g.capacity_bytes(64), 512 * crate::time::GIB);
    }

    #[test]
    fn die_index_round_trip() {
        let g = SsdGeometry::paper(NvmKind::Tlc);
        for ch in 0..g.channels {
            for pkg in 0..g.packages_per_channel {
                for d in 0..g.dies_per_package {
                    let idx = DieIndex::from_parts(&g, ch, pkg, d);
                    assert!(idx.0 < g.total_dies());
                    assert_eq!(idx.channel(&g), ch);
                    assert_eq!(idx.package(&g), pkg * g.channels + ch);
                }
            }
        }
    }

    #[test]
    fn die_indices_are_unique() {
        let g = SsdGeometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels {
            for pkg in 0..g.packages_per_channel {
                for d in 0..g.dies_per_package {
                    assert!(seen.insert(DieIndex::from_parts(&g, ch, pkg, d)));
                }
            }
        }
        assert_eq!(seen.len() as u32, g.total_dies());
    }

    #[test]
    fn validate_rejects_zero_fields() {
        let mut g = SsdGeometry::tiny();
        g.channels = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn plane_slots() {
        let g = SsdGeometry::paper(NvmKind::Tlc);
        assert_eq!(g.total_plane_slots(), 256);
    }
}
