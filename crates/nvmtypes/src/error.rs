//! Shared error vocabulary for the workspace.
//!
//! The simulator crates return typed errors instead of panicking
//! (`no_panic` invariant, docs/INVARIANTS.md) and instead of ad-hoc
//! `String`s: a `String` error cannot be matched on, carries no source
//! chain, and invites `unwrap` at call sites. [`SimError`] is the one
//! error enum configuration parsing and validation speak across
//! `nvmtypes`, `fs`, `ssd`, `trace` and `core`.

use std::fmt;

/// Workspace-wide simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration field failed validation (zero-sized geometry
    /// dimension, out-of-range filesystem parameter, …).
    InvalidConfig {
        /// Which field (dotted path, e.g. `geometry.channels`).
        field: String,
        /// What constraint it violated.
        reason: String,
    },
    /// A textual input (trace file, fault plan, matrix file) failed to
    /// parse.
    Parse {
        /// What was being parsed (`posix trace`, `fault plan`, …).
        what: String,
        /// 1-based line number, when known (0 = unknown).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A worker thread panicked; the panic was caught at `join()` and
    /// surfaced as an error instead of being swallowed.
    WorkerPanic {
        /// Which worker (pipeline filter name, scheduler worker index, …).
        worker: String,
    },
    /// A channel endpoint hung up while the pipeline still had data to
    /// move (send or receive on a disconnected channel).
    ChannelClosed {
        /// Which stage observed the disconnect.
        stage: String,
    },
    /// A simulated hardware resource was exhausted (e.g. spare blocks
    /// for bad-block remapping).
    ResourceExhausted {
        /// Which resource ran out.
        resource: String,
    },
    /// On-device bytes failed an integrity check (bad magic, CRC
    /// mismatch, impossible geometry): the storage itself is corrupt.
    /// Recovery code returns this instead of guessing — a guessed-at
    /// journal is how committed data quietly disappears.
    Corruption {
        /// Which on-disk structure was being decoded (`superblock`,
        /// `journal record`, `file entry`, …).
        what: String,
        /// Sector address of the corrupt bytes.
        sector: u64,
        /// What the integrity check found.
        reason: String,
    },
    /// Simulated power was lost mid-run; the device accepts no further
    /// I/O. Carried up so callers stop issuing instead of silently
    /// continuing against a dead device.
    PowerLoss {
        /// Sector writes fully persisted before the lights went out.
        writes_persisted: u64,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(field: impl Into<String>, reason: impl Into<String>) -> SimError {
        SimError::InvalidConfig {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::Parse`].
    pub fn parse(what: impl Into<String>, line: usize, reason: impl Into<String>) -> SimError {
        SimError::Parse {
            what: what.into(),
            line,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::WorkerPanic`].
    pub fn worker_panic(worker: impl Into<String>) -> SimError {
        SimError::WorkerPanic {
            worker: worker.into(),
        }
    }

    /// Convenience constructor for [`SimError::ChannelClosed`].
    pub fn channel_closed(stage: impl Into<String>) -> SimError {
        SimError::ChannelClosed {
            stage: stage.into(),
        }
    }

    /// Convenience constructor for [`SimError::Corruption`].
    pub fn corruption(what: impl Into<String>, sector: u64, reason: impl Into<String>) -> SimError {
        SimError::Corruption {
            what: what.into(),
            sector,
            reason: reason.into(),
        }
    }

    /// True for [`SimError::PowerLoss`] — the one error the crash
    /// harness expects and absorbs (everything else is a real failure).
    pub fn is_power_loss(&self) -> bool {
        matches!(self, SimError::PowerLoss { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: `{field}` {reason}")
            }
            SimError::Parse { what, line, reason } => {
                if *line == 0 {
                    write!(f, "parse error in {what}: {reason}")
                } else {
                    write!(f, "parse error in {what} at line {line}: {reason}")
                }
            }
            SimError::WorkerPanic { worker } => {
                write!(f, "worker `{worker}` panicked")
            }
            SimError::ChannelClosed { stage } => {
                write!(f, "channel closed early at `{stage}`")
            }
            SimError::ResourceExhausted { resource } => {
                write!(f, "resource exhausted: {resource}")
            }
            SimError::Corruption {
                what,
                sector,
                reason,
            } => {
                write!(f, "corrupt {what} at sector {sector}: {reason}")
            }
            SimError::PowerLoss { writes_persisted } => {
                write!(
                    f,
                    "power lost after {writes_persisted} persisted sector writes"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::invalid_config("geometry.channels", "must be non-zero");
        assert_eq!(
            e.to_string(),
            "invalid config: `geometry.channels` must be non-zero"
        );
        let e = SimError::parse("fault plan", 3, "unknown key `foo`");
        assert_eq!(
            e.to_string(),
            "parse error in fault plan at line 3: unknown key `foo`"
        );
        let e = SimError::parse("posix trace", 0, "empty input");
        assert_eq!(e.to_string(), "parse error in posix trace: empty input");
        let e = SimError::WorkerPanic {
            worker: "filter[2]".into(),
        };
        assert_eq!(e.to_string(), "worker `filter[2]` panicked");
        let e = SimError::ChannelClosed {
            stage: "producer".into(),
        };
        assert_eq!(e.to_string(), "channel closed early at `producer`");
        let e = SimError::ResourceExhausted {
            resource: "spare blocks".into(),
        };
        assert_eq!(e.to_string(), "resource exhausted: spare blocks");
        let e = SimError::corruption("journal record", 42, "crc mismatch");
        assert_eq!(
            e.to_string(),
            "corrupt journal record at sector 42: crc mismatch"
        );
        assert!(!e.is_power_loss());
        let e = SimError::PowerLoss {
            writes_persisted: 7,
        };
        assert_eq!(e.to_string(), "power lost after 7 persisted sector writes");
        assert!(e.is_power_loss());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::invalid_config("x", "y"));
    }
}
