//! Table 1 of the paper: per-medium page sizes and operation latencies.
//!
//! | medium | page | read | write | erase |
//! |--------|------|------|-------|-------|
//! | SLC    | 2 KiB | 25 µs | 250 µs | 1.5 ms |
//! | MLC    | 4 KiB | 50 µs | 250–2200 µs | 2.5 ms |
//! | TLC    | 8 KiB | 150 µs | 440–6000 µs | 3 ms |
//! | PCM    | 64 B  | 0.115–0.135 µs | 35 µs | 35 µs |
//!
//! MLC and TLC write ranges are realised through [`PageClass`]: the LSB page
//! takes the low end, the MSB page the high end (CSB in between for TLC).
//! PCM read latency varies slightly with sensing position; we spread the
//! 115–135 ns range deterministically across page offsets.

use crate::kind::{NvmKind, PageClass};
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

const US: Nanos = 1_000;

/// Latency and page-size description of one NVM medium (one Table-1 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaTiming {
    /// Which medium this timing describes.
    pub kind: NvmKind,
    /// Page size in bytes (the unit of a read/program operation).
    pub page_size: u32,
    /// Base page read latency in ns.
    pub t_read: Nanos,
    /// Read latency jitter span in ns (PCM: 20 ns across the 115–135 ns
    /// datasheet range; NAND: 0).
    pub t_read_span: Nanos,
    /// Program latency of an LSB (fast) page in ns.
    pub t_write_lsb: Nanos,
    /// Program latency of a CSB page in ns (TLC only; equals LSB otherwise).
    pub t_write_csb: Nanos,
    /// Program latency of an MSB (slow) page in ns (equals LSB for SLC/PCM).
    pub t_write_msb: Nanos,
    /// Block erase latency in ns (PCM: emulated NOR-style block erase).
    pub t_erase: Nanos,
    /// Command/address/status overhead per die operation on the bus, ns.
    pub t_cmd: Nanos,
    /// Read-retry cadence: one extra sensing pass (shifted read-reference
    /// voltages) is amortised over every `read_retry_every` pages read.
    /// 0 disables (Table 1's nominal latencies). Denser, older NAND needs
    /// retries more often; enable via [`MediaTiming::with_read_retry`] for
    /// the endurance ablation.
    pub read_retry_every: u64,
}

impl MediaTiming {
    /// Table-1 timing for the given medium.
    pub fn table1(kind: NvmKind) -> MediaTiming {
        match kind {
            NvmKind::Slc => MediaTiming {
                kind,
                page_size: 2048,
                t_read: 25 * US,
                t_read_span: 0,
                t_write_lsb: 250 * US,
                t_write_csb: 250 * US,
                t_write_msb: 250 * US,
                t_erase: 1_500 * US,
                t_cmd: 300,
                read_retry_every: 0,
            },
            NvmKind::Mlc => MediaTiming {
                kind,
                page_size: 4096,
                t_read: 50 * US,
                t_read_span: 0,
                t_write_lsb: 250 * US,
                t_write_csb: 250 * US,
                t_write_msb: 2_200 * US,
                t_erase: 2_500 * US,
                t_cmd: 300,
                read_retry_every: 0,
            },
            NvmKind::Tlc => MediaTiming {
                kind,
                page_size: 8192,
                t_read: 150 * US,
                t_read_span: 0,
                t_write_lsb: 440 * US,
                t_write_csb: 3_220 * US,
                t_write_msb: 6_000 * US,
                t_erase: 3_000 * US,
                t_cmd: 300,
                read_retry_every: 0,
            },
            NvmKind::Pcm => MediaTiming {
                kind,
                page_size: 64,
                t_read: 115,
                t_read_span: 20,
                t_write_lsb: 35 * US,
                t_write_csb: 35 * US,
                t_write_msb: 35 * US,
                t_erase: 35 * US,
                t_cmd: 60,
                read_retry_every: 0,
            },
        }
    }

    /// Enables amortised read retries: one extra sense per `every` pages.
    pub fn with_read_retry(mut self, every: u64) -> MediaTiming {
        self.read_retry_every = every;
        self
    }

    /// Read latency for the page at `page_index` within its block.
    ///
    /// NAND reads are uniform; PCM reads are spread deterministically over
    /// the datasheet's 115–135 ns range by page offset.
    pub fn read_latency(&self, page_index: u64) -> Nanos {
        if self.t_read_span == 0 {
            self.t_read
        } else {
            self.t_read + (page_index % (self.t_read_span + 1))
        }
    }

    /// Program latency for a page of the given class.
    pub fn write_latency(&self, class: PageClass) -> Nanos {
        match class {
            PageClass::Lsb => self.t_write_lsb,
            PageClass::Csb => self.t_write_csb,
            PageClass::Msb => self.t_write_msb,
        }
    }

    /// Program latency of the page at `page_index` within its block,
    /// applying the medium's LSB/CSB/MSB pattern.
    pub fn write_latency_at(&self, page_index: u64) -> Nanos {
        self.write_latency(PageClass::of_page(self.kind, page_index))
    }

    /// Mean program latency across the medium's page classes, ns.
    pub fn mean_write_latency(&self) -> Nanos {
        match self.kind {
            NvmKind::Slc | NvmKind::Pcm => self.t_write_lsb,
            NvmKind::Mlc => (self.t_write_lsb + self.t_write_msb) / 2,
            NvmKind::Tlc => (self.t_write_lsb + self.t_write_csb + self.t_write_msb) / 3,
        }
    }

    /// Peak cell-level read bandwidth of a single die in bytes/ns, assuming
    /// all `planes` of the die stream reads concurrently (multi-plane mode).
    pub fn die_read_bw(&self, planes: u32) -> f64 {
        (f64::from(self.page_size) * f64::from(planes)) / crate::convert::approx_f64(self.t_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_page_sizes() {
        assert_eq!(MediaTiming::table1(NvmKind::Slc).page_size, 2048);
        assert_eq!(MediaTiming::table1(NvmKind::Mlc).page_size, 4096);
        assert_eq!(MediaTiming::table1(NvmKind::Tlc).page_size, 8192);
        assert_eq!(MediaTiming::table1(NvmKind::Pcm).page_size, 64);
    }

    #[test]
    fn table1_read_latencies() {
        assert_eq!(MediaTiming::table1(NvmKind::Slc).t_read, 25_000);
        assert_eq!(MediaTiming::table1(NvmKind::Mlc).t_read, 50_000);
        assert_eq!(MediaTiming::table1(NvmKind::Tlc).t_read, 150_000);
        // PCM: 115 ns base, up to 135 ns with span.
        let pcm = MediaTiming::table1(NvmKind::Pcm);
        assert_eq!(pcm.t_read, 115);
        for i in 0..64 {
            let l = pcm.read_latency(i);
            assert!((115..=135).contains(&l));
        }
    }

    #[test]
    fn table1_write_ranges() {
        let mlc = MediaTiming::table1(NvmKind::Mlc);
        assert_eq!(mlc.write_latency(PageClass::Lsb), 250_000);
        assert_eq!(mlc.write_latency(PageClass::Msb), 2_200_000);
        let tlc = MediaTiming::table1(NvmKind::Tlc);
        assert_eq!(tlc.write_latency(PageClass::Lsb), 440_000);
        assert_eq!(tlc.write_latency(PageClass::Msb), 6_000_000);
    }

    #[test]
    fn table1_erase_latencies() {
        assert_eq!(MediaTiming::table1(NvmKind::Slc).t_erase, 1_500_000);
        assert_eq!(MediaTiming::table1(NvmKind::Mlc).t_erase, 2_500_000);
        assert_eq!(MediaTiming::table1(NvmKind::Tlc).t_erase, 3_000_000);
        assert_eq!(MediaTiming::table1(NvmKind::Pcm).t_erase, 35_000);
    }

    #[test]
    fn write_latency_follows_page_pattern() {
        let tlc = MediaTiming::table1(NvmKind::Tlc);
        assert_eq!(tlc.write_latency_at(0), 440_000);
        assert_eq!(tlc.write_latency_at(1), 3_220_000);
        assert_eq!(tlc.write_latency_at(2), 6_000_000);
        assert_eq!(tlc.write_latency_at(3), 440_000);
    }

    #[test]
    fn pcm_reads_drastically_outperform_flash() {
        // §2.3: PCM "read performance drastically out-performs flash".
        let pcm = MediaTiming::table1(NvmKind::Pcm);
        let slc = MediaTiming::table1(NvmKind::Slc);
        // Per-byte read time, lower is faster.
        let pcm_per_byte = pcm.t_read as f64 / pcm.page_size as f64;
        let slc_per_byte = slc.t_read as f64 / slc.page_size as f64;
        assert!(pcm_per_byte < slc_per_byte);
    }

    #[test]
    fn mean_write_latency_is_between_extremes() {
        let tlc = MediaTiming::table1(NvmKind::Tlc);
        let m = tlc.mean_write_latency();
        assert!(m > tlc.t_write_lsb && m < tlc.t_write_msb);
    }

    #[test]
    fn read_retry_knob_defaults_off() {
        for kind in NvmKind::ALL {
            assert_eq!(MediaTiming::table1(kind).read_retry_every, 0);
        }
        let t = MediaTiming::table1(NvmKind::Tlc).with_read_retry(16);
        assert_eq!(t.read_retry_every, 16);
    }

    #[test]
    fn die_read_bw_scales_with_planes() {
        let tlc = MediaTiming::table1(NvmKind::Tlc);
        let one = tlc.die_read_bw(1);
        let two = tlc.die_read_bw(2);
        assert!((two / one - 2.0).abs() < 1e-12);
        // TLC single-plane: 8192 B / 150 µs ≈ 0.0546 B/ns ≈ 54.6 MB/s.
        assert!((one - 8192.0 / 150_000.0).abs() < 1e-12);
    }
}
