//! # nvmtypes — shared vocabulary for the `oocnvm` workspace
//!
//! This crate holds the types every other crate in the workspace speaks:
//!
//! * [`NvmKind`] — the four NVM media evaluated by the paper (SLC, MLC and
//!   TLC NAND flash, plus phase-change memory).
//! * [`MediaTiming`] — the Table-1 latency matrix (page size, read, write
//!   and erase latencies per medium), including the LSB/CSB/MSB program
//!   latency variation of multi-level NAND.
//! * [`SsdGeometry`] — channels / packages / dies / planes / blocks / pages,
//!   defaulting to the paper's 8-channel, 64-package, 128-die device.
//! * [`HostRequest`] / [`IoOp`] — byte-addressed I/O requests as seen at the
//!   host interface.
//!
//! Everything here is plain data: no simulation logic lives in this crate.
//!
//! Reference: Jung et al., *Exploring the Future of Out-Of-Core Computing
//! with Compute-Local Non-Volatile Memory*, SC '13, Table 1 and §2.3/§4.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod convert;
pub mod energy;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod kind;
pub mod latency;
pub mod request;
pub mod time;

pub use bus::BusTiming;
pub use convert::{
    approx_f64, trunc_u64, try_u32, u32_from, u64_from_usize, usize_from, usize_from_u32,
};
pub use energy::MediaEnergy;
pub use error::SimError;
pub use fault::{
    CrashFaultProfile, CrashPoint, CrashVerdict, FaultPlan, FaultRng, LinkFaultProfile,
    MediaFaultProfile, NodeFaultProfile,
};
pub use geometry::{DieIndex, PhysLoc, SsdGeometry};
pub use kind::{NvmKind, PageClass};
pub use latency::MediaTiming;
pub use request::{HostRequest, IoOp};
pub use time::{bytes_per_ns_from_mb_s, mb_per_s, transfer_time, Nanos, GIB, KIB, MIB};
