//! NVM channel-bus timing (the ONFi-style bus shared by the packages of a
//! channel). Constructors for concrete standards (ONFi-3 SDR-400, future
//! DDR-800) live in the `interconnect` crate; this is just the data.

use serde::Serialize;

/// Transfer-rate description of one NVM channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BusTiming {
    /// Human-readable standard name (e.g. `"ONFi3-SDR-400"`).
    pub name: &'static str,
    /// Payload rate in bytes per nanosecond (== GB/s).
    pub bytes_per_ns: f64,
}

impl BusTiming {
    /// Time in ns (rounded up) to move `bytes` over this bus.
    pub fn transfer_ns(&self, bytes: u64) -> crate::time::Nanos {
        crate::time::transfer_time(bytes, self.bytes_per_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_ns_matches_rate() {
        let bus = BusTiming {
            name: "test",
            bytes_per_ns: 0.4,
        };
        // 8192 bytes at 0.4 B/ns = 20480 ns.
        assert_eq!(bus.transfer_ns(8192), 20_480);
    }
}
