//! NVM media kinds and page program classes.

use serde::{Deserialize, Serialize};

/// The four NVM media evaluated by the paper (§2.3, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmKind {
    /// Single-level-cell NAND flash: one bit per cell, 2 KiB pages,
    /// fast and uniform program latency, highest endurance.
    Slc,
    /// Multi-level-cell NAND flash: two bits per cell, 4 KiB pages,
    /// paired LSB/MSB pages with asymmetric program latency.
    Mlc,
    /// Triple-level-cell NAND flash: three bits per cell, 8 KiB pages,
    /// LSB/CSB/MSB page triples with strongly asymmetric program latency.
    Tlc,
    /// Phase-change memory (GST): 64-byte pages, near-DRAM read latency,
    /// writes via SET/RESET; managed behind a NOR-flash-like interface with
    /// emulated block erases (§2.3).
    Pcm,
}

impl NvmKind {
    /// All four kinds in the order the paper's figures list them.
    pub const ALL: [NvmKind; 4] = [NvmKind::Slc, NvmKind::Mlc, NvmKind::Tlc, NvmKind::Pcm];

    /// Short uppercase label as used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            NvmKind::Slc => "SLC",
            NvmKind::Mlc => "MLC",
            NvmKind::Tlc => "TLC",
            NvmKind::Pcm => "PCM",
        }
    }

    /// Number of bits stored per NAND cell; PCM is treated as 1 here
    /// (it has no shared-page program asymmetry).
    pub fn bits_per_cell(self) -> u32 {
        match self {
            NvmKind::Slc | NvmKind::Pcm => 1,
            NvmKind::Mlc => 2,
            NvmKind::Tlc => 3,
        }
    }

    /// Whether this medium is NAND flash (erase-before-write at block
    /// granularity, ONFi-style bus) as opposed to PCM.
    pub fn is_nand(self) -> bool {
        !matches!(self, NvmKind::Pcm)
    }
}

impl std::fmt::Display for NvmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Program-latency class of a NAND page within its word line.
///
/// Multi-level NAND programs the bits of one physical cell through separate
/// logical pages: the LSB page programs quickly, the MSB (and, for TLC, the
/// CSB) pages require successively finer charge placement and are much
/// slower. This is the "intrinsic latency variation" NANDFlashSim models
/// (§4.1, [21]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Least-significant-bit page (fast program).
    Lsb,
    /// Center-significant-bit page (TLC only; medium program).
    Csb,
    /// Most-significant-bit page (slow program).
    Msb,
}

impl PageClass {
    /// Class of the `page_index`-th page of a block for a given medium.
    ///
    /// SLC and PCM have uniform program latency, so every page is `Lsb`.
    /// MLC alternates LSB/MSB; TLC cycles LSB/CSB/MSB.
    pub fn of_page(kind: NvmKind, page_index: u64) -> PageClass {
        match kind {
            NvmKind::Slc | NvmKind::Pcm => PageClass::Lsb,
            NvmKind::Mlc => {
                if page_index.is_multiple_of(2) {
                    PageClass::Lsb
                } else {
                    PageClass::Msb
                }
            }
            NvmKind::Tlc => {
                let r = page_index % 3;
                if r == 0 {
                    PageClass::Lsb
                } else if r == 1 {
                    PageClass::Csb
                } else {
                    PageClass::Msb
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(NvmKind::Slc.label(), "SLC");
        assert_eq!(NvmKind::Pcm.to_string(), "PCM");
    }

    #[test]
    fn bits_per_cell() {
        assert_eq!(NvmKind::Slc.bits_per_cell(), 1);
        assert_eq!(NvmKind::Mlc.bits_per_cell(), 2);
        assert_eq!(NvmKind::Tlc.bits_per_cell(), 3);
    }

    #[test]
    fn slc_and_pcm_are_uniform() {
        for i in 0..16 {
            assert_eq!(PageClass::of_page(NvmKind::Slc, i), PageClass::Lsb);
            assert_eq!(PageClass::of_page(NvmKind::Pcm, i), PageClass::Lsb);
        }
    }

    #[test]
    fn mlc_alternates_lsb_msb() {
        assert_eq!(PageClass::of_page(NvmKind::Mlc, 0), PageClass::Lsb);
        assert_eq!(PageClass::of_page(NvmKind::Mlc, 1), PageClass::Msb);
        assert_eq!(PageClass::of_page(NvmKind::Mlc, 2), PageClass::Lsb);
    }

    #[test]
    fn tlc_cycles_three_classes() {
        let classes: Vec<_> = (0..6)
            .map(|i| PageClass::of_page(NvmKind::Tlc, i))
            .collect();
        assert_eq!(
            classes,
            [
                PageClass::Lsb,
                PageClass::Csb,
                PageClass::Msb,
                PageClass::Lsb,
                PageClass::Csb,
                PageClass::Msb
            ]
        );
    }

    #[test]
    fn nand_predicate() {
        assert!(NvmKind::Tlc.is_nand());
        assert!(!NvmKind::Pcm.is_nand());
    }
}
