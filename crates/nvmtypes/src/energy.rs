//! Per-operation energy parameters.
//!
//! The paper's introduction motivates NVM acceleration partly by power:
//! distributed DRAM + high-performance networks carry "high energy use
//! ... over time", while SSDs are "low-power". This module gives the
//! simulator the constants to quantify that argument. Values are
//! representative of published 2x-nm NAND and PCM prototype
//! characterisations (order-of-magnitude correct; the workspace's energy
//! results are comparative, not absolute).

use crate::kind::NvmKind;
use serde::Serialize;

/// Energy characteristics of one NVM medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MediaEnergy {
    /// Which medium.
    pub kind: NvmKind,
    /// Energy to sense one page, nanojoules.
    pub read_nj_per_page: f64,
    /// Energy to program one page (mean over page classes), nJ.
    pub program_nj_per_page: f64,
    /// Energy to erase one block, nJ.
    pub erase_nj_per_block: f64,
    /// Static power per die while idle, milliwatts.
    pub idle_mw_per_die: f64,
    /// Bus transfer energy, nJ per byte moved on a channel.
    pub bus_nj_per_byte: f64,
}

impl MediaEnergy {
    /// Representative energy figures per medium.
    ///
    /// NAND: sensing costs grow with bits/cell; programming is dominated
    /// by ISPP pulse counts (MSB pages need many); erase pulses are
    /// millijoule-class per block. PCM: reads are current-sense cheap,
    /// SET/RESET writes expensive per bit but pages are tiny.
    pub fn typical(kind: NvmKind) -> MediaEnergy {
        match kind {
            NvmKind::Slc => MediaEnergy {
                kind,
                read_nj_per_page: 6_000.0,
                program_nj_per_page: 30_000.0,
                erase_nj_per_block: 1_200_000.0,
                idle_mw_per_die: 3.0,
                bus_nj_per_byte: 0.04,
            },
            NvmKind::Mlc => MediaEnergy {
                kind,
                read_nj_per_page: 10_000.0,
                program_nj_per_page: 90_000.0,
                erase_nj_per_block: 1_600_000.0,
                idle_mw_per_die: 3.0,
                bus_nj_per_byte: 0.04,
            },
            NvmKind::Tlc => MediaEnergy {
                kind,
                read_nj_per_page: 18_000.0,
                program_nj_per_page: 250_000.0,
                erase_nj_per_block: 2_000_000.0,
                idle_mw_per_die: 3.0,
                bus_nj_per_byte: 0.04,
            },
            NvmKind::Pcm => MediaEnergy {
                kind,
                read_nj_per_page: 2.0,
                program_nj_per_page: 120.0,
                erase_nj_per_block: 15_000.0,
                idle_mw_per_die: 1.0,
                bus_nj_per_byte: 0.04,
            },
        }
    }

    /// Read energy per byte, nJ (page energy amortised over the page).
    pub fn read_nj_per_byte(&self, page_size: u32) -> f64 {
        self.read_nj_per_page / f64::from(page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_read_energy_grows_with_density() {
        let slc = MediaEnergy::typical(NvmKind::Slc);
        let mlc = MediaEnergy::typical(NvmKind::Mlc);
        let tlc = MediaEnergy::typical(NvmKind::Tlc);
        assert!(slc.read_nj_per_page < mlc.read_nj_per_page);
        assert!(mlc.read_nj_per_page < tlc.read_nj_per_page);
    }

    #[test]
    fn pcm_reads_are_cheapest_per_byte() {
        use crate::latency::MediaTiming;
        for kind in [NvmKind::Slc, NvmKind::Mlc, NvmKind::Tlc] {
            let nand =
                MediaEnergy::typical(kind).read_nj_per_byte(MediaTiming::table1(kind).page_size);
            let pcm = MediaEnergy::typical(NvmKind::Pcm)
                .read_nj_per_byte(MediaTiming::table1(NvmKind::Pcm).page_size);
            assert!(pcm < nand, "{kind:?}");
        }
    }

    #[test]
    fn programs_cost_more_than_reads() {
        for kind in NvmKind::ALL {
            let e = MediaEnergy::typical(kind);
            assert!(e.program_nj_per_page > e.read_nj_per_page);
        }
    }
}
