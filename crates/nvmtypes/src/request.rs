//! Byte-addressed I/O requests as seen at the host interface.

use serde::{Deserialize, Serialize};

/// Direction of an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Data flows device -> host.
    Read,
    /// Data flows host -> device.
    Write,
}

impl IoOp {
    /// `true` for [`IoOp::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoOp::Read)
    }
}

/// One request arriving at the storage device (post-file-system): a
/// contiguous byte extent in the device's logical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRequest {
    /// Read or write.
    pub op: IoOp,
    /// Starting byte offset in the device's logical address space.
    pub offset: u64,
    /// Length in bytes (non-zero).
    pub len: u64,
    /// If `true` the device must drain all outstanding requests before this
    /// one is issued, and must complete it before any later request issues.
    /// File systems use this for dependent metadata lookups and journal
    /// commits.
    pub sync: bool,
}

impl HostRequest {
    /// Convenience constructor for an asynchronous read.
    pub fn read(offset: u64, len: u64) -> HostRequest {
        HostRequest {
            op: IoOp::Read,
            offset,
            len,
            sync: false,
        }
    }

    /// Convenience constructor for an asynchronous write.
    pub fn write(offset: u64, len: u64) -> HostRequest {
        HostRequest {
            op: IoOp::Write,
            offset,
            len,
            sync: false,
        }
    }

    /// Marks the request as a synchronous barrier (see [`HostRequest::sync`]).
    pub fn synchronous(mut self) -> HostRequest {
        self.sync = true;
        self
    }

    /// Exclusive end offset of the extent.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// First device page covered, for a given page size.
    pub fn first_page(&self, page_size: u32) -> u64 {
        self.offset / u64::from(page_size)
    }

    /// Number of device pages covered (including partial head/tail pages).
    pub fn page_count(&self, page_size: u32) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let ps = u64::from(page_size);
        let first = self.offset / ps;
        let last = (self.end() - 1) / ps;
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_aligned() {
        let r = HostRequest::read(0, 8192 * 4);
        assert_eq!(r.page_count(8192), 4);
        assert_eq!(r.first_page(8192), 0);
    }

    #[test]
    fn page_count_unaligned_spans_extra_pages() {
        // 1 byte into page 0 through 1 byte into page 2 => 3 pages.
        let r = HostRequest::read(1, 2 * 8192);
        assert_eq!(r.page_count(8192), 3);
    }

    #[test]
    fn page_count_zero_len() {
        let r = HostRequest::read(4096, 0);
        assert_eq!(r.page_count(8192), 0);
    }

    #[test]
    fn sync_builder() {
        let r = HostRequest::write(0, 512).synchronous();
        assert!(r.sync);
        assert!(!r.op.is_read());
    }

    #[test]
    fn end_is_exclusive() {
        let r = HostRequest::read(100, 50);
        assert_eq!(r.end(), 150);
    }
}
