//! Checked numeric conversions for unit arithmetic.
//!
//! The simulator mixes `u32` geometry counts, `u64` byte/nanosecond
//! quantities, and `f64` bandwidth/energy figures. A bare `as` cast at
//! each mixing point hides where precision can be lost; `simlint`'s
//! `bare_cast` rule steers every such conversion through this module (or
//! through std's lossless `From`/`TryFrom`), so the lossy spots are
//! named, documented, and auditable in one place.
//!
//! Conventions:
//!
//! * `u64::from(x)` / `f64::from(x)` — use std directly for lossless
//!   widenings; no wrapper is provided.
//! * [`usize_from`] / [`u64_from_usize`] — index↔quantity conversions
//!   that are lossless on the 64-bit targets the simulator supports and
//!   saturate (with a debug assertion) anywhere else.
//! * [`approx_f64`] — an *explicitly approximate* `u64 → f64` for
//!   ratios, axes, and reports, where ULP error above 2^53 is
//!   acceptable by design.
//! * [`trunc_u64`] / [`try_u32`] — the two narrowing directions, with
//!   saturation and `Option` respectively.
//!
//! The handful of `as` casts implementing these helpers are the
//! allowlisted remainder for this file in `simlint.allow`.

/// Converts a `u64` quantity to a `usize` index.
///
/// Lossless on 64-bit targets (everything the simulator supports); on a
/// narrower target it saturates to `usize::MAX` and trips a debug
/// assertion rather than wrapping silently.
#[inline]
#[must_use]
pub fn usize_from(n: u64) -> usize {
    debug_assert!(usize::try_from(n).is_ok(), "index {n} exceeds usize::MAX");
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Converts a `u32` count to a `usize` index (lossless on 32- and
/// 64-bit targets).
#[inline]
#[must_use]
pub fn usize_from_u32(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Converts a `usize` index back to a `u64` quantity.
///
/// Lossless on every target Rust supports (`usize` is at most 64 bits).
#[inline]
#[must_use]
pub fn u64_from_usize(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Explicitly approximate `u64 → f64` for ratios and reporting.
///
/// Above 2^53 the nearest representable double is returned; callers use
/// this for bandwidth/utilisation/percentage arithmetic where that is
/// fine, never for values that flow back into integer simulated time.
#[inline]
#[must_use]
pub fn approx_f64(n: u64) -> f64 {
    n as f64
}

/// Truncating, saturating `f64 → u64` (NaN maps to 0).
///
/// This is Rust's own saturating `as` semantics, given a name: use it
/// after `ceil()`/rounding when a computed duration or size re-enters
/// integer arithmetic.
#[inline]
#[must_use]
pub fn trunc_u64(x: f64) -> u64 {
    x as u64
}

/// Checked `u64 → u32` narrowing for geometry-sized values.
#[inline]
#[must_use]
pub fn try_u32(n: u64) -> Option<u32> {
    u32::try_from(n).ok()
}

/// Saturating `u64 → u32` narrowing for values bounded by construction
/// (die/channel/plane indices already reduced modulo a `u32` geometry
/// count). Saturates and trips a debug assertion if the bound is ever
/// violated.
#[inline]
#[must_use]
pub fn u32_from(n: u64) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "value {n} exceeds u32::MAX");
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_exact_in_range() {
        for n in [0u64, 1, 4096, u64::from(u32::MAX)] {
            assert_eq!(u64_from_usize(usize_from(n)), n);
        }
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
    }

    #[test]
    fn trunc_saturates_and_zeroes_nan() {
        assert_eq!(trunc_u64(3.9), 3);
        assert_eq!(trunc_u64(-1.0), 0);
        assert_eq!(trunc_u64(f64::INFINITY), u64::MAX);
        assert_eq!(trunc_u64(f64::NAN), 0);
    }

    #[test]
    fn try_u32_rejects_overflow() {
        assert_eq!(try_u32(12), Some(12));
        assert_eq!(try_u32(u64::from(u32::MAX) + 1), None);
    }

    #[test]
    fn approx_is_exact_below_2_53() {
        let n = (1u64 << 53) - 1;
        assert_eq!(approx_f64(n), n as f64);
        assert_eq!(trunc_u64(approx_f64(n)), n);
    }
}
