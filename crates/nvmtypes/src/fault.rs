//! Deterministic fault-injection vocabulary: the [`FaultPlan`] every
//! simulator layer consumes, and the seeded stream-split [`FaultRng`]
//! that drives it.
//!
//! The paper's comparison assumes perfect hardware; compute-local NVM,
//! however, puts the flash inside the failure domain of every compute
//! node. This module describes the error processes the workspace
//! injects — media bit errors scaling with wear, program/erase
//! failures, read disturb, link CRC errors, node loss — as *plain
//! data*. The mechanics (ECC retry, bad-block remap, link replay,
//! checkpoint/restart) live in the crates that own the affected layer.
//!
//! Two invariants, pinned by `tests/determinism.rs`:
//!
//! * same seed + same plan ⇒ byte-identical reports (the RNG is a
//!   self-contained SplitMix64/xorshift generator, one independent
//!   stream per fault process, never OS entropy);
//! * [`FaultPlan::none`] ⇒ behaviour byte-identical to a build without
//!   fault injection at all (every hook early-outs on zero rates).

use crate::convert::approx_f64;
use crate::kind::NvmKind;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// 2⁵³ as `f64`: the denominator turning a 53-bit integer into a
/// uniform sample in `[0, 1)`.
const F64_UNIT: f64 = 9_007_199_254_740_992.0;

/// Stream id for media (bit-error / program / erase / disturb) faults.
pub const STREAM_MEDIA: u64 = 1;
/// Stream id for interconnect (CRC/replay) faults.
pub const STREAM_LINK: u64 = 2;
/// Stream id for node-loss events.
pub const STREAM_NODE: u64 = 3;
/// Stream id for power-loss / torn-write draws.
pub const STREAM_CRASH: u64 = 4;

/// Deterministic fault-process PRNG.
///
/// SplitMix64 state advance with an xorshift-multiply output mix: tiny,
/// seedable, and — critically — *splittable*: [`FaultRng::split`]
/// derives an independent stream per fault process, so adding a
/// sampling site to one layer never perturbs the draw sequence of
/// another (media faults stay identical when link faults are enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> FaultRng {
        // One warm-up mix so nearby seeds (0, 1, 2, …) decorrelate.
        let mut rng = FaultRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        let _warmup = rng.next_u64();
        rng
    }

    /// Derives an independent stream keyed by `stream` (use the
    /// `STREAM_*` constants). Splitting is pure: it does not advance
    /// `self`.
    pub fn split(&self, stream: u64) -> FaultRng {
        FaultRng::new(
            self.state
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .wrapping_add(stream.wrapping_mul(0x94d0_49bb_1331_11eb)),
        )
    }

    /// Next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        approx_f64(self.next_u64() >> 11) / F64_UNIT
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    ///
    /// `p <= 0` returns `false` *without advancing the stream*, so a
    /// zero-rate plan consumes no randomness and stays byte-identical
    /// to a build with no fault hooks at all.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            let _draw = self.next_u64();
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform draw in `0..n` (`n = 0` yields 0 without advancing).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift bound mapping; bias is < 2⁻⁵³ for the small
        // ranges the fault models use (block counts, iteration counts).
        let x = self.next_u64() >> 11;
        let scaled = approx_f64(x) / F64_UNIT * approx_f64(n);
        crate::convert::trunc_u64(scaled).min(n - 1)
    }
}

/// Media-level error processes (flashsim layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaFaultProfile {
    /// Base probability that a page read at zero wear on SLC needs ECC
    /// beyond the inline (free) tier. Scaled per medium by
    /// [`MediaFaultProfile::kind_scale`] and with wear by
    /// `pe_wear_factor`.
    pub page_error_prob: f64,
    /// Additional error probability per 1000 P/E cycles on the block's
    /// die (linear wear model).
    pub pe_wear_factor: f64,
    /// Probability a page program fails and must be retried once at
    /// full program latency.
    pub program_fail_prob: f64,
    /// Probability a block erase fails; a failed erase marks the block
    /// bad (FTL remaps it to a spare).
    pub erase_fail_prob: f64,
    /// Reads of a block before read disturb forces one refresh
    /// (re-program) penalty and resets the counter. 0 disables.
    /// PCM does not exhibit read disturb; the hook ignores it there.
    pub read_disturb_limit: u64,
    /// ECC read-retry tiers available after the inline tier. A page
    /// whose error demand exceeds this is uncorrectable: the read still
    /// completes (host sees degraded data penalty) and the block is
    /// marked bad.
    pub ecc_tiers: u32,
    /// Extra sensing latency per escalating retry tier, ns. Tier `t`
    /// (1-based) costs `t * tier_extra_ns` on top of the re-read.
    pub tier_extra_ns: Nanos,
}

impl MediaFaultProfile {
    /// All rates zero: media behave as the datasheet promises.
    pub fn none() -> MediaFaultProfile {
        MediaFaultProfile {
            page_error_prob: 0.0,
            pe_wear_factor: 0.0,
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            read_disturb_limit: 0,
            ecc_tiers: 3,
            tier_extra_ns: 40_000,
        }
    }

    /// Relative raw bit-error-rate scale per medium: denser NAND cells
    /// hold more levels per cell and err more; PCM's resistive read is
    /// cleaner than any flash sense.
    pub fn kind_scale(kind: NvmKind) -> f64 {
        match kind {
            NvmKind::Slc => 1.0,
            NvmKind::Mlc => 4.0,
            NvmKind::Tlc => 16.0,
            NvmKind::Pcm => 0.125,
        }
    }

    /// True iff every media error process is disabled.
    pub fn is_none(&self) -> bool {
        self.page_error_prob <= 0.0
            && self.pe_wear_factor <= 0.0
            && self.program_fail_prob <= 0.0
            && self.erase_fail_prob <= 0.0
            && self.read_disturb_limit == 0
    }

    /// Per-read error probability for `kind` at `pe_cycles` wear.
    pub fn read_error_prob(&self, kind: NvmKind, pe_cycles: u64) -> f64 {
        if self.page_error_prob <= 0.0 && self.pe_wear_factor <= 0.0 {
            return 0.0;
        }
        let wear = self.pe_wear_factor * approx_f64(pe_cycles) / 1000.0;
        ((self.page_error_prob + wear) * MediaFaultProfile::kind_scale(kind)).min(1.0)
    }
}

/// Interconnect-level error processes (PCIe/SATA host links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultProfile {
    /// Probability a host-link transfer is hit by a CRC error and must
    /// be replayed.
    pub crc_error_prob: f64,
    /// Replay attempts before the transfer goes through regardless
    /// (the link-layer guarantees delivery; this bounds added latency).
    pub max_replays: u32,
    /// Base replay backoff, ns; doubles per successive replay of the
    /// same transfer (bounded exponential backoff).
    pub replay_backoff_ns: Nanos,
    /// Every `retrain_every`-th CRC error forces a link retrain.
    /// 0 = never retrain.
    pub retrain_every: u64,
    /// Link-retrain penalty, ns (speed renegotiation stalls the lane).
    pub retrain_ns: Nanos,
}

impl LinkFaultProfile {
    /// All rates zero: links deliver every transfer first try.
    pub fn none() -> LinkFaultProfile {
        LinkFaultProfile {
            crc_error_prob: 0.0,
            max_replays: 4,
            replay_backoff_ns: 2_000,
            retrain_every: 0,
            retrain_ns: 10_000_000,
        }
    }

    /// True iff link errors are disabled.
    pub fn is_none(&self) -> bool {
        self.crc_error_prob <= 0.0
    }
}

/// Power-loss processes against a stable block device (the UFS layer).
///
/// Unlike the rate-driven profiles above, power loss is *scheduled*: the
/// crash-consistency harness sweeps `power_loss_at_write` over every
/// write index of a journaled transaction, so the interesting knob is a
/// deterministic position, not a probability. The only probabilistic
/// part is whether the in-flight sector write tears (persists a partial
/// prefix) or vanishes entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFaultProfile {
    /// Power fails *during* the Nth device sector write (1-based):
    /// writes `1..N-1` persist fully, write `N` is torn or dropped, and
    /// the device accepts no further I/O. 0 disables power loss.
    pub power_loss_at_write: u64,
    /// Probability the in-flight write at power loss persists a partial
    /// sector prefix (a torn write) instead of nothing at all.
    pub torn_write_prob: f64,
}

impl CrashFaultProfile {
    /// Power never fails.
    pub fn none() -> CrashFaultProfile {
        CrashFaultProfile {
            power_loss_at_write: 0,
            torn_write_prob: 0.0,
        }
    }

    /// True iff power loss is disabled.
    pub fn is_none(&self) -> bool {
        self.power_loss_at_write == 0
    }
}

/// What happens to one device sector write under a [`CrashPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVerdict {
    /// The write persists fully; the device keeps running.
    Persist,
    /// Power fails mid-write: only the first `keep_bytes` of the new
    /// data reach the media, the rest of the sector keeps its previous
    /// contents, and the device is dead afterwards.
    Torn {
        /// Bytes of the new data that persisted (`<` the write length).
        keep_bytes: u64,
    },
    /// Power fails before the write reaches the media: nothing persists
    /// and the device is dead afterwards.
    Dropped,
}

/// Deterministic power-loss injector: counts device sector writes and
/// fires at the scheduled one, optionally tearing the in-flight write.
///
/// The crash harness builds one `CrashPoint` per matrix entry
/// ([`CrashPoint::at_write`]) to simulate power loss after *every*
/// device write of a journaled transaction; plan-driven runs derive one
/// from the `[crash]` section via [`CrashPoint::from_profile`], which
/// returns `None` for a zero profile so the crash-free path carries no
/// hook at all (the byte-identity invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPoint {
    at_write: u64,
    torn_prob: f64,
    writes_seen: u64,
    fired: bool,
    rng: FaultRng,
}

impl CrashPoint {
    /// Builds the injector a profile describes, or `None` when the
    /// profile schedules no power loss (zero-cost crash-free path).
    pub fn from_profile(profile: &CrashFaultProfile, rng: FaultRng) -> Option<CrashPoint> {
        if profile.is_none() {
            return None;
        }
        Some(CrashPoint {
            at_write: profile.power_loss_at_write,
            torn_prob: profile.torn_write_prob,
            writes_seen: 0,
            fired: false,
            rng,
        })
    }

    /// Harness constructor: power fails during write `n` (1-based),
    /// torn with certainty when `torn` is set, dropped otherwise. The
    /// seed feeds the tear-length draw.
    pub fn at_write(n: u64, torn: bool, seed: u64) -> CrashPoint {
        CrashPoint {
            at_write: n.max(1),
            torn_prob: if torn { 1.0 } else { 0.0 },
            writes_seen: 0,
            fired: false,
            rng: FaultRng::new(seed).split(STREAM_CRASH),
        }
    }

    /// Adjudicates the next sector write of `len_bytes` bytes. Once the
    /// scheduled write is reached every subsequent write (including that
    /// one) is lost; callers stop issuing I/O on the first non-persist
    /// verdict.
    pub fn on_write(&mut self, len_bytes: u64) -> CrashVerdict {
        if self.fired {
            return CrashVerdict::Dropped;
        }
        self.writes_seen += 1;
        if self.writes_seen < self.at_write {
            return CrashVerdict::Persist;
        }
        self.fired = true;
        if self.rng.gen_bool(self.torn_prob) {
            CrashVerdict::Torn {
                keep_bytes: self.rng.gen_range(len_bytes),
            }
        } else {
            CrashVerdict::Dropped
        }
    }

    /// True once power has been lost.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Sector writes adjudicated so far (persisted ones plus the fatal
    /// one).
    pub fn writes_seen(&self) -> u64 {
        self.writes_seen
    }
}

/// Node/cluster-level error processes (solver layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFaultProfile {
    /// Probability the node is lost during any one solver iteration.
    pub crash_prob_per_iter: f64,
    /// Solver iterations between checkpoints of the eigensolver state
    /// to (simulated) NVM. 0 disables checkpointing: a crash then
    /// restarts the solve from scratch.
    pub checkpoint_every: u32,
    /// Fixed restart penalty per crash, ns (reboot + rejoin + reload).
    pub restart_penalty_ns: Nanos,
    /// Crashes after which the run gives up and reports failure
    /// (bounds worst-case runtime under absurd rates).
    pub max_crashes: u32,
}

impl NodeFaultProfile {
    /// No node ever crashes.
    pub fn none() -> NodeFaultProfile {
        NodeFaultProfile {
            crash_prob_per_iter: 0.0,
            checkpoint_every: 0,
            restart_penalty_ns: 0,
            max_crashes: 16,
        }
    }

    /// True iff node loss is disabled.
    pub fn is_none(&self) -> bool {
        self.crash_prob_per_iter <= 0.0
    }
}

/// The complete, seeded description of every fault process in a run.
///
/// A plan is plain data: embed it in a device config, print it, parse
/// it from the TOML-ish text format ([`FaultPlan::parse`]). The default
/// plan is [`FaultPlan::none`] — all tier-1 paper figures run under it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; each fault process derives its own stream from it.
    pub seed: u64,
    /// Media-level error processes.
    pub media: MediaFaultProfile,
    /// Host-link error processes.
    pub link: LinkFaultProfile,
    /// Node-loss / checkpoint processes.
    pub node: NodeFaultProfile,
    /// Power-loss / torn-write processes (block-device layer).
    pub crash: CrashFaultProfile,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The zero plan: no fault process active; simulators must behave
    /// byte-identically to a build without fault hooks.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            media: MediaFaultProfile::none(),
            link: LinkFaultProfile::none(),
            node: NodeFaultProfile::none(),
            crash: CrashFaultProfile::none(),
        }
    }

    /// A mild error regime: occasional ECC retries and rare CRC
    /// replays, the sort a healthy deployment sees.
    pub fn light(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            media: MediaFaultProfile {
                page_error_prob: 1e-4,
                pe_wear_factor: 1e-4,
                program_fail_prob: 1e-6,
                erase_fail_prob: 1e-5,
                read_disturb_limit: 100_000,
                ..MediaFaultProfile::none()
            },
            link: LinkFaultProfile {
                crc_error_prob: 1e-5,
                retrain_every: 64,
                ..LinkFaultProfile::none()
            },
            node: NodeFaultProfile::none(),
            crash: CrashFaultProfile::none(),
        }
    }

    /// A worn device on a flaky fabric: frequent retries, occasional
    /// bad blocks, periodic retrains.
    pub fn moderate(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            media: MediaFaultProfile {
                page_error_prob: 2e-3,
                pe_wear_factor: 2e-3,
                program_fail_prob: 1e-4,
                erase_fail_prob: 5e-4,
                read_disturb_limit: 10_000,
                ..MediaFaultProfile::none()
            },
            link: LinkFaultProfile {
                crc_error_prob: 5e-4,
                retrain_every: 32,
                ..LinkFaultProfile::none()
            },
            node: NodeFaultProfile {
                crash_prob_per_iter: 0.0,
                checkpoint_every: 8,
                restart_penalty_ns: 500_000_000,
                max_crashes: 16,
            },
            crash: CrashFaultProfile::none(),
        }
    }

    /// End-of-life media with node loss in play: the regime the
    /// reliability sweep uses to stress recovery paths.
    pub fn heavy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            media: MediaFaultProfile {
                page_error_prob: 2e-2,
                pe_wear_factor: 1e-2,
                program_fail_prob: 1e-3,
                erase_fail_prob: 5e-3,
                read_disturb_limit: 1_000,
                ..MediaFaultProfile::none()
            },
            link: LinkFaultProfile {
                crc_error_prob: 5e-3,
                retrain_every: 16,
                ..LinkFaultProfile::none()
            },
            node: NodeFaultProfile {
                crash_prob_per_iter: 0.02,
                checkpoint_every: 4,
                restart_penalty_ns: 2_000_000_000,
                max_crashes: 16,
            },
            crash: CrashFaultProfile::none(),
        }
    }

    /// True iff no fault process is active (rates all zero).
    pub fn is_none(&self) -> bool {
        self.media.is_none() && self.link.is_none() && self.node.is_none() && self.crash.is_none()
    }

    /// The root RNG for this plan; layers call
    /// [`FaultRng::split`] with their `STREAM_*` id.
    pub fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }

    /// Parses the TOML-ish plan format:
    ///
    /// ```text
    /// seed = 42
    /// [media]
    /// page_error_prob = 1e-3
    /// ecc_tiers = 3
    /// [link]
    /// crc_error_prob = 1e-4
    /// [node]
    /// crash_prob_per_iter = 0.01
    /// checkpoint_every = 8
    /// [crash]
    /// power_loss_at_write = 17
    /// torn_write_prob = 0.5
    /// ```
    ///
    /// Unknown sections or keys are errors (a typo silently reverting
    /// to defaults would fake a healthy device). Omitted keys keep the
    /// [`FaultPlan::none`] defaults. `#` starts a comment.
    pub fn parse(text: &str) -> Result<FaultPlan, crate::error::SimError> {
        use crate::error::SimError;
        let mut plan = FaultPlan::none();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| {
                    SimError::parse("fault plan", lineno, "unterminated section header")
                })?;
                match name.trim() {
                    "media" | "link" | "node" | "crash" => {
                        section = name.trim().to_string();
                    }
                    other => {
                        return Err(SimError::parse(
                            "fault plan",
                            lineno,
                            format!("unknown section `[{other}]`"),
                        ));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| SimError::parse("fault plan", lineno, "expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            let fail = |reason: String| SimError::parse("fault plan", lineno, reason);
            let as_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|e| fail(format!("bad number `{value}`: {e}")))
            };
            let as_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|e| fail(format!("bad integer `{value}`: {e}")))
            };
            let as_u32 = || {
                value
                    .parse::<u32>()
                    .map_err(|e| fail(format!("bad integer `{value}`: {e}")))
            };
            match (section.as_str(), key) {
                ("", "seed") => plan.seed = as_u64()?,
                ("media", "page_error_prob") => plan.media.page_error_prob = as_f64()?,
                ("media", "pe_wear_factor") => plan.media.pe_wear_factor = as_f64()?,
                ("media", "program_fail_prob") => plan.media.program_fail_prob = as_f64()?,
                ("media", "erase_fail_prob") => plan.media.erase_fail_prob = as_f64()?,
                ("media", "read_disturb_limit") => plan.media.read_disturb_limit = as_u64()?,
                ("media", "ecc_tiers") => plan.media.ecc_tiers = as_u32()?,
                ("media", "tier_extra_ns") => plan.media.tier_extra_ns = as_u64()?,
                ("link", "crc_error_prob") => plan.link.crc_error_prob = as_f64()?,
                ("link", "max_replays") => plan.link.max_replays = as_u32()?,
                ("link", "replay_backoff_ns") => plan.link.replay_backoff_ns = as_u64()?,
                ("link", "retrain_every") => plan.link.retrain_every = as_u64()?,
                ("link", "retrain_ns") => plan.link.retrain_ns = as_u64()?,
                ("node", "crash_prob_per_iter") => plan.node.crash_prob_per_iter = as_f64()?,
                ("node", "checkpoint_every") => plan.node.checkpoint_every = as_u32()?,
                ("node", "restart_penalty_ns") => plan.node.restart_penalty_ns = as_u64()?,
                ("node", "max_crashes") => plan.node.max_crashes = as_u32()?,
                ("crash", "power_loss_at_write") => plan.crash.power_loss_at_write = as_u64()?,
                ("crash", "torn_write_prob") => plan.crash.torn_write_prob = as_f64()?,
                (sec, key) => {
                    let place = if sec.is_empty() {
                        "top level".to_string()
                    } else {
                        format!("section `[{sec}]`")
                    };
                    return Err(fail(format!("unknown key `{key}` in {place}")));
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let mut c = FaultRng::new(8);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn split_streams_are_independent_and_pure() {
        let root = FaultRng::new(42);
        let mut m1 = root.split(STREAM_MEDIA);
        let mut m2 = root.split(STREAM_MEDIA);
        let mut l = root.split(STREAM_LINK);
        assert_eq!(m1.next_u64(), m2.next_u64(), "split must be pure");
        // Streams differ from each other and from the root sequence.
        let mut root2 = root.clone();
        assert_ne!(m1.next_u64(), l.next_u64());
        assert_ne!(root2.next_u64(), root.split(STREAM_NODE).next_u64());
    }

    #[test]
    fn zero_probability_consumes_no_randomness() {
        let mut a = FaultRng::new(3);
        let mut b = FaultRng::new(3);
        for _ in 0..100 {
            assert!(!a.gen_bool(0.0));
            assert!(!a.gen_bool(-1.0));
        }
        assert_eq!(a.next_u64(), b.next_u64(), "stream advanced on zero rate");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = FaultRng::new(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = approx_f64(crate::convert::u64_from_usize(hits)) / f64::from(n);
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = FaultRng::new(5);
        for n in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(n) < n);
            }
        }
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::light(1).is_none());
        assert!(!FaultPlan::moderate(1).is_none());
        assert!(!FaultPlan::heavy(1).is_none());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn read_error_prob_scales_with_kind_and_wear() {
        let m = MediaFaultProfile {
            page_error_prob: 1e-3,
            pe_wear_factor: 1e-3,
            ..MediaFaultProfile::none()
        };
        let base = m.read_error_prob(NvmKind::Slc, 0);
        assert!((base - 1e-3).abs() < 1e-12);
        assert!(m.read_error_prob(NvmKind::Tlc, 0) > m.read_error_prob(NvmKind::Mlc, 0));
        assert!(m.read_error_prob(NvmKind::Pcm, 0) < base);
        assert!(m.read_error_prob(NvmKind::Slc, 5000) > base);
        assert!(m.read_error_prob(NvmKind::Tlc, u64::MAX / 2) <= 1.0);
    }

    #[test]
    fn parse_round_trip() {
        let text = "\
# worn device on a flaky link
seed = 42
[media]
page_error_prob = 2e-3
pe_wear_factor = 1e-3
ecc_tiers = 4
tier_extra_ns = 50000
[link]
crc_error_prob = 1e-4   # per transfer
retrain_every = 32
[node]
crash_prob_per_iter = 0.01
checkpoint_every = 8
";
        let plan = FaultPlan::parse(text).expect("plan parses");
        assert_eq!(plan.seed, 42);
        assert!((plan.media.page_error_prob - 2e-3).abs() < 1e-15);
        assert_eq!(plan.media.ecc_tiers, 4);
        assert_eq!(plan.media.tier_extra_ns, 50_000);
        assert!((plan.link.crc_error_prob - 1e-4).abs() < 1e-15);
        assert_eq!(plan.link.retrain_every, 32);
        assert!((plan.node.crash_prob_per_iter - 0.01).abs() < 1e-15);
        assert_eq!(plan.node.checkpoint_every, 8);
        // Omitted keys keep `none()` defaults.
        assert_eq!(plan.link.max_replays, LinkFaultProfile::none().max_replays);
    }

    #[test]
    fn parse_reads_the_crash_section() {
        let plan = FaultPlan::parse(
            "[crash]\npower_loss_at_write = 17   # mid-journal\ntorn_write_prob = 0.5\n",
        )
        .expect("crash section parses");
        assert_eq!(plan.crash.power_loss_at_write, 17);
        assert!((plan.crash.torn_write_prob - 0.5).abs() < 1e-15);
        assert!(!plan.is_none(), "a scheduled power loss is a live plan");
        // Omitting the section keeps the disabled default.
        let none = FaultPlan::parse("seed = 1\n").expect("plan parses");
        assert!(none.crash.is_none());
        assert!(none.is_none());
    }

    #[test]
    fn parse_rejects_bad_crash_keys() {
        assert!(FaultPlan::parse("[crash]\nbogus = 1\n").is_err());
        assert!(FaultPlan::parse("[crash]\npower_loss_at_write = -3\n").is_err());
        assert!(FaultPlan::parse("[crash]\ntorn_write_prob = maybe\n").is_err());
        assert!(FaultPlan::parse("[crash]\npower_loss_at_write = 1.5\n").is_err());
    }

    #[test]
    fn crash_point_fires_exactly_once_at_the_scheduled_write() {
        let mut cp = CrashPoint::at_write(3, false, 9);
        assert_eq!(cp.on_write(4096), CrashVerdict::Persist);
        assert_eq!(cp.on_write(4096), CrashVerdict::Persist);
        assert!(!cp.fired());
        assert_eq!(cp.on_write(4096), CrashVerdict::Dropped);
        assert!(cp.fired());
        assert_eq!(cp.writes_seen(), 3);
        // Dead devices stay dead.
        assert_eq!(cp.on_write(4096), CrashVerdict::Dropped);
        assert_eq!(cp.writes_seen(), 3);
    }

    #[test]
    fn crash_point_tears_deterministically_under_a_seed() {
        let keep = |seed: u64| -> CrashVerdict {
            let mut cp = CrashPoint::at_write(1, true, seed);
            cp.on_write(4096)
        };
        let a = keep(5);
        assert_eq!(a, keep(5), "tear length must be a pure function of seed");
        assert!(
            matches!(a, CrashVerdict::Torn { keep_bytes } if keep_bytes < 4096),
            "torn crash point produced {a:?}"
        );
        // Different seeds explore different tear lengths eventually.
        let distinct: std::collections::BTreeSet<u64> = (0..32)
            .filter_map(|s| match keep(s) {
                CrashVerdict::Torn { keep_bytes } => Some(keep_bytes),
                _ => None,
            })
            .collect();
        assert!(distinct.len() > 4, "tear lengths degenerate: {distinct:?}");
    }

    #[test]
    fn zero_crash_profile_builds_no_hook() {
        let root = FaultRng::new(1).split(STREAM_CRASH);
        assert!(CrashPoint::from_profile(&CrashFaultProfile::none(), root.clone()).is_none());
        let live = CrashFaultProfile {
            power_loss_at_write: 2,
            torn_write_prob: 0.0,
        };
        let mut cp = CrashPoint::from_profile(&live, root).expect("live profile builds a hook");
        assert_eq!(cp.on_write(4096), CrashVerdict::Persist);
        assert_eq!(cp.on_write(4096), CrashVerdict::Dropped);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_sections() {
        assert!(FaultPlan::parse("[weather]\n").is_err());
        assert!(FaultPlan::parse("[media]\nbogus = 1\n").is_err());
        assert!(FaultPlan::parse("page_error_prob = 1e-3\n").is_err());
        assert!(FaultPlan::parse("[media]\npage_error_prob = zebra\n").is_err());
        assert!(FaultPlan::parse("[media\n").is_err());
        assert!(FaultPlan::parse("just words\n").is_err());
        let err = FaultPlan::parse("\n\n[media]\nbogus = 1\n")
            .expect_err("unknown key")
            .to_string();
        assert!(err.contains("line 4"), "got: {err}");
    }

    #[test]
    fn empty_text_parses_to_none() {
        let plan = FaultPlan::parse("").expect("empty plan");
        assert_eq!(plan, FaultPlan::none());
    }
}
