//! Simulation time and bandwidth conversion helpers.
//!
//! The whole workspace measures time in integer **nanoseconds** ([`Nanos`]).
//! Bandwidths are carried as `f64` bytes-per-nanosecond internally (which is
//! numerically identical to GB/s) and reported as MB/s, matching the axes of
//! the paper's figures.

/// Simulation timestamp / duration in nanoseconds.
pub type Nanos = u64;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * 1024;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Nanoseconds per microsecond.
pub const US: Nanos = 1_000;
/// Nanoseconds per millisecond.
pub const MS: Nanos = 1_000_000;
/// Nanoseconds per second.
pub const SEC: Nanos = 1_000_000_000;

/// Converts a decimal MB/s figure (as used on the paper's axes) to bytes
/// per nanosecond.
///
/// `1 MB/s == 1e6 bytes / 1e9 ns == 1e-3 bytes/ns`.
#[inline]
pub fn bytes_per_ns_from_mb_s(mb_per_sec: f64) -> f64 {
    mb_per_sec * 1e-3
}

/// Reports a transfer of `bytes` over `dur` nanoseconds as decimal MB/s.
///
/// Returns 0.0 for a zero-length duration so callers need not special-case
/// empty runs.
#[inline]
pub fn mb_per_s(bytes: u64, dur: Nanos) -> f64 {
    if dur == 0 {
        return 0.0;
    }
    (crate::convert::approx_f64(bytes) / crate::convert::approx_f64(dur)) * 1e3
}

/// Time (ns, rounded up) to move `bytes` at `bytes_per_ns`.
///
/// # Panics
/// Panics in debug builds if `bytes_per_ns` is not strictly positive.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_ns: f64) -> Nanos {
    debug_assert!(bytes_per_ns > 0.0, "bandwidth must be positive");
    crate::convert::trunc_u64((crate::convert::approx_f64(bytes) / bytes_per_ns).ceil())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_s_round_trip() {
        // 1 GiB in 1 second is ~1073.7 MB/s.
        let bw = mb_per_s(GIB, SEC);
        assert!((bw - 1073.741824).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_is_zero_bandwidth() {
        assert_eq!(mb_per_s(12345, 0), 0.0);
    }

    #[test]
    fn bytes_per_ns_matches_gb_s() {
        // 4000 MB/s == 4 GB/s == 4 bytes/ns.
        assert!((bytes_per_ns_from_mb_s(4000.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 10 bytes at 3 bytes/ns -> ceil(3.33) = 4 ns.
        assert_eq!(transfer_time(10, 3.0), 4);
        assert_eq!(transfer_time(0, 3.0), 0);
    }

    #[test]
    fn unit_constants_consistent() {
        assert_eq!(MIB, KIB * KIB);
        assert_eq!(GIB, KIB * MIB);
        assert_eq!(SEC, 1_000 * MS);
        assert_eq!(MS, 1_000 * US);
    }
}
