//! Small dense linear-algebra kernels.
//!
//! Everything an LOBPCG implementation needs beyond the sparse operator:
//! column-major dense matrices, products, Cholesky, modified Gram–Schmidt,
//! and a cyclic Jacobi eigensolver for the (at most `3m x 3m`)
//! Rayleigh–Ritz problems. Sizes here are tiny compared to `n`, so clarity
//! beats blocking; the `n x m` tall-skinny operations are parallelised
//! over rows with rayon where it pays.

use rayon::prelude::*;

/// Column-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Column-major storage, `len == nrows * ncols`.
    pub data: Vec<f64>,
}

impl DMatrix {
    /// Zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> DMatrix {
        DMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> DMatrix {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major nested-slice literal (for tests).
    pub fn from_rows(rows: &[&[f64]]) -> DMatrix {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = DMatrix::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// `self * other` (naive, column-major friendly).
    pub fn matmul(&self, other: &DMatrix) -> DMatrix {
        assert_eq!(self.ncols, other.nrows, "dimension mismatch");
        let mut out = DMatrix::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let b = other[(k, j)];
                if b == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let o_col = out.col_mut(j);
                for i in 0..self.nrows {
                    o_col[i] += a_col[i] * b;
                }
            }
        }
        out
    }

    /// `self^T * other` — the Gram-type product, parallelised over output
    /// columns (each is an independent set of dot products over `nrows`).
    pub fn transpose_mul(&self, other: &DMatrix) -> DMatrix {
        assert_eq!(self.nrows, other.nrows, "dimension mismatch");
        let n = self.nrows;
        let mut out = DMatrix::zeros(self.ncols, other.ncols);
        let cols: Vec<Vec<f64>> = (0..other.ncols)
            .into_par_iter()
            .map(|j| {
                let b = other.col(j);
                (0..self.ncols)
                    .map(|i| {
                        let a = self.col(i);
                        (0..n).map(|r| a[r] * b[r]).sum()
                    })
                    .collect()
            })
            .collect();
        for (j, col) in cols.into_iter().enumerate() {
            out.col_mut(j).copy_from_slice(&col);
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &DMatrix) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Horizontal concatenation `[self | others...]`.
    pub fn hcat(blocks: &[&DMatrix]) -> DMatrix {
        assert!(!blocks.is_empty());
        let nrows = blocks[0].nrows;
        let ncols: usize = blocks.iter().map(|b| b.ncols).sum();
        let mut out = DMatrix::zeros(nrows, ncols);
        let mut at = 0;
        for b in blocks {
            assert_eq!(b.nrows, nrows, "row mismatch in hcat");
            for j in 0..b.ncols {
                out.col_mut(at + j).copy_from_slice(b.col(j));
            }
            at += b.ncols;
        }
        out
    }

    /// Copy of columns `lo..hi`.
    pub fn cols_range(&self, lo: usize, hi: usize) -> DMatrix {
        assert!(lo <= hi && hi <= self.ncols);
        let mut out = DMatrix::zeros(self.nrows, hi - lo);
        for j in lo..hi {
            out.col_mut(j - lo).copy_from_slice(self.col(j));
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.nrows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.nrows + i]
    }
}

/// Cholesky factorisation `A = L L^T` of a symmetric positive-definite
/// matrix; returns the lower-triangular `L`, or `None` if a pivot fails
/// (not positive definite to working precision).
pub fn cholesky(a: &DMatrix) -> Option<DMatrix> {
    assert_eq!(a.nrows, a.ncols, "cholesky needs a square matrix");
    let n = a.nrows;
    let mut l = DMatrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Some(l)
}

/// Modified Gram–Schmidt orthonormalisation of the columns of `s`,
/// dropping columns whose residual norm falls below `tol` (rank
/// deficiency). Returns the orthonormal basis and the indices of the
/// original columns that survived.
pub fn mgs_orthonormalize(s: &DMatrix, tol: f64) -> (DMatrix, Vec<usize>) {
    let n = s.nrows;
    let mut q_cols: Vec<Vec<f64>> = Vec::with_capacity(s.ncols);
    let mut kept = Vec::with_capacity(s.ncols);
    for j in 0..s.ncols {
        let mut v = s.col(j).to_vec();
        // Two MGS passes for numerical robustness.
        for _ in 0..2 {
            for q in &q_cols {
                let dot: f64 = (0..n).map(|r| q[r] * v[r]).sum();
                for r in 0..n {
                    v[r] -= dot * q[r];
                }
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > tol {
            for x in &mut v {
                *x /= norm;
            }
            q_cols.push(v);
            kept.push(j);
        }
    }
    let mut q = DMatrix::zeros(n, q_cols.len());
    for (j, col) in q_cols.into_iter().enumerate() {
        q.col_mut(j).copy_from_slice(&col);
    }
    (q, kept)
}

/// Cyclic Jacobi eigensolver for a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// `eigenvectors` column `k` corresponding to eigenvalue `k`. Intended for
/// the small (≤ ~64x64) Rayleigh–Ritz matrices of LOBPCG.
pub fn jacobi_eigh(a: &DMatrix) -> (Vec<f64>, DMatrix) {
    assert_eq!(a.nrows, a.ncols, "jacobi_eigh needs a square matrix");
    let n = a.nrows;
    let mut m = a.clone();
    let mut v = DMatrix::eye(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-13 * (1.0 + m.fro_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let vals: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
    let mut vecs = DMatrix::zeros(n, n);
    for (k, &(_, src)) in pairs.iter().enumerate() {
        vecs.col_mut(k).copy_from_slice(v.col(src));
    }
    (vals, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DMatrix::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_mul_is_gram() {
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]);
        let g = a.transpose_mul(&a);
        assert_eq!(g, DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 5.0]]));
    }

    #[test]
    fn cholesky_round_trip() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        // L * L^T == A.
        let mut lt = DMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                lt[(i, j)] = l[(j, i)];
            }
        }
        let back = l.matmul(&lt);
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn mgs_produces_orthonormal_columns() {
        let s = DMatrix::from_rows(&[
            &[1.0, 1.0, 0.5],
            &[1.0, 0.0, 0.5],
            &[0.0, 1.0, 0.5],
            &[0.0, 0.0, 0.5],
        ]);
        let (q, kept) = mgs_orthonormalize(&s, 1e-12);
        assert_eq!(kept.len(), 3);
        let g = q.transpose_mul(&q);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-10, "G[{i}{j}]={}", g[(i, j)]);
            }
        }
    }

    #[test]
    fn mgs_drops_dependent_columns() {
        let s = DMatrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let (q, kept) = mgs_orthonormalize(&s, 1e-10);
        assert_eq!(q.ncols, 1);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, _) = jacobi_eigh(&a);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigh(&a);
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        // A v = λ v for the first pair.
        let v0 = vecs.col(0);
        let av0 = [2.0 * v0[0] + v0[1], v0[0] + 2.0 * v0[1]];
        assert!((av0[0] - vals[0] * v0[0]).abs() < 1e-9);
        assert!((av0[1] - vals[0] * v0[1]).abs() < 1e-9);
    }

    #[test]
    fn jacobi_matches_laplacian_spectrum() {
        // Tridiagonal 1D Laplacian (n=8): λ_k = 2 - 2 cos(kπ/(n+1)).
        let n = 8;
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let (vals, _) = jacobi_eigh(&a);
        for (k, &v) in vals.iter().enumerate() {
            let analytic =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((v - analytic).abs() < 1e-9, "λ_{k}: {v} vs {analytic}");
        }
    }

    #[test]
    fn hcat_and_cols_range() {
        let a = DMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DMatrix::from_rows(&[&[3.0], &[4.0]]);
        let c = DMatrix::hcat(&[&a, &b]);
        assert_eq!(c.ncols, 2);
        assert_eq!(c.cols_range(1, 2), b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = DMatrix::zeros(2, 1);
        let b = DMatrix::from_rows(&[&[1.0], &[2.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a, DMatrix::from_rows(&[&[2.0], &[4.0]]));
    }
}
