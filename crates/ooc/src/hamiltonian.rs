//! Synthetic nuclear-CI Hamiltonian generator.
//!
//! The paper's matrices come from MFDn configuration-interaction
//! calculations (§2.1): huge, sparse, symmetric, with a strong diagonal,
//! dense-ish bands near the diagonal from single-particle excitations, and
//! scattered off-diagonal interaction blocks from two-body terms. This
//! generator reproduces that structure deterministically at any size, so
//! the out-of-core eigensolver exercises the same access patterns the
//! paper traces (large sequential panel sweeps, read-dominant).

use crate::sparse::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic Hamiltonian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HamiltonianSpec {
    /// Dimension of the many-body basis (matrix size).
    pub n: usize,
    /// Half-width of the dense band around the diagonal.
    pub band: usize,
    /// Scattered two-body couplings per row (symmetrised).
    pub couplings_per_row: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HamiltonianSpec {
    /// A small spec for tests.
    pub fn tiny(n: usize) -> HamiltonianSpec {
        HamiltonianSpec {
            n,
            band: 4,
            couplings_per_row: 2,
            seed: 42,
        }
    }

    /// A medium spec whose serialised panels reach hundreds of MiB —
    /// enough to exercise out-of-core streaming.
    pub fn medium(n: usize) -> HamiltonianSpec {
        HamiltonianSpec {
            n,
            band: 16,
            couplings_per_row: 8,
            seed: 20130817,
        }
    }

    /// Generates the symmetric CSR matrix.
    ///
    /// The diagonal grows with the row index (shell structure), making the
    /// low eigenpairs well separated — the regime LOBPCG targets.
    pub fn generate(&self) -> CsrMatrix {
        assert!(self.n >= 2, "matrix must be at least 2x2");
        let n = self.n;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Collect the strict upper triangle, then mirror.
        let mut upper: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            // Band coupling with decaying magnitude.
            for d in 1..=self.band {
                let j = i + d;
                if j >= n {
                    break;
                }
                let v = -1.0 / d as f64 * (1.0 + 0.1 * rng.gen_range(-1.0..1.0));
                upper[i].push((j as u32, v));
            }
            // Scattered two-body couplings beyond the band.
            for _ in 0..self.couplings_per_row {
                let span = n - i - 1;
                if span <= self.band {
                    break;
                }
                let j = i + self.band + 1 + rng.gen_range(0..span - self.band);
                let v = 0.2 * rng.gen_range(-1.0..1.0);
                upper[i].push((j as u32, v));
            }
            upper[i].sort_by_key(|&(c, _)| c);
            upper[i].dedup_by_key(|&mut (c, _)| c);
        }
        // Assemble full symmetric rows.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for &(j, v) in &upper[i] {
                rows[i].push((j, v));
                rows[j as usize].push((i as u32, v));
            }
        }
        for (i, row) in rows.iter_mut().enumerate() {
            // Shell-structured diagonal keeps the matrix comfortably
            // diagonally dominant and the low spectrum well separated.
            let off_sum: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
            let diag = 1.0 + 0.01 * i as f64 + off_sum;
            row.push((i as u32, diag));
            row.sort_by_key(|&(c, _)| c);
        }
        CsrMatrix::from_rows(n, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_matrix_is_valid_and_symmetric() {
        let h = HamiltonianSpec::tiny(200).generate();
        h.validate().unwrap();
        assert!(h.is_symmetric(1e-12));
        assert_eq!(h.n, 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = HamiltonianSpec::tiny(100).generate();
        let b = HamiltonianSpec::tiny(100).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s = HamiltonianSpec::tiny(100);
        let a = s.generate();
        s.seed += 1;
        let b = s.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn density_scales_with_parameters() {
        let sparse = HamiltonianSpec {
            n: 300,
            band: 2,
            couplings_per_row: 1,
            seed: 1,
        }
        .generate();
        let dense = HamiltonianSpec {
            n: 300,
            band: 12,
            couplings_per_row: 6,
            seed: 1,
        }
        .generate();
        assert!(dense.nnz() > 3 * sparse.nnz());
    }

    #[test]
    fn diagonal_dominance_holds() {
        let h = HamiltonianSpec::tiny(150).generate();
        for i in 0..h.n {
            let (lo, hi) = (h.row_ptr[i] as usize, h.row_ptr[i + 1] as usize);
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in lo..hi {
                if h.col_idx[k] as usize == i {
                    diag = h.values[k];
                } else {
                    off += h.values[k].abs();
                }
            }
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }
}
