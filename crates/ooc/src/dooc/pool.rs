//! The immutable keyed data pool with memory management and prefetching.

use nvmtypes::SimError;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss/eviction counters.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Lookups satisfied from memory.
    pub hits: AtomicU64,
    /// Lookups that had to load.
    pub misses: AtomicU64,
    /// Entries evicted to stay within budget.
    pub evictions: AtomicU64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed);
        let m = self.misses.load(Ordering::Relaxed);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

struct Entry {
    data: Arc<Vec<u8>>,
    last_use: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    used: u64,
    clock: u64,
}

/// An immutable, keyed, memory-budgeted data pool.
///
/// Semantics follow DOoC's storage layer: once a key is written its bytes
/// never change (re-inserting the same key is a no-op), so readers can
/// hold zero-copy references without coherency protocol. When inserting
/// would exceed the budget, least-recently-used entries are evicted.
pub struct DataPool {
    capacity: u64,
    inner: Mutex<Inner>,
    /// Counters for tests and tuning.
    pub stats: PoolStats,
}

impl DataPool {
    /// Pool with a byte budget.
    pub fn new(capacity_bytes: u64) -> DataPool {
        DataPool {
            capacity: capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used: 0,
                clock: 0,
            }),
            stats: PoolStats::default(),
        }
    }

    /// Budget in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Whether `key` is resident (does not count as a hit/miss).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Looks a key up, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_use = clock;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an immutable value. Re-inserting an existing key keeps the
    /// original bytes (immutability) and returns the resident value.
    pub fn insert(&self, key: &str, data: Vec<u8>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(key) {
            e.last_use = clock;
            return Arc::clone(&e.data);
        }
        let size = data.len() as u64;
        // Evict LRU entries until the new value fits (entries larger than
        // the whole budget are admitted alone).
        while inner.used + size > self.capacity && !inner.map.is_empty() {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.used -= e.data.len() as u64;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let arc = Arc::new(data);
        inner.used += size;
        inner.map.insert(
            key.to_string(),
            Entry {
                data: Arc::clone(&arc),
                last_use: clock,
            },
        );
        arc
    }

    /// Returns the resident value or loads, inserts and returns it.
    pub fn get_or_load<F: FnOnce() -> Vec<u8>>(&self, key: &str, loader: F) -> Arc<Vec<u8>> {
        if let Some(v) = self.get(key) {
            return v;
        }
        let data = loader();
        self.insert(key, data)
    }
}

/// Background prefetcher: a dedicated worker pool that loads keys into
/// a shared [`DataPool`] ahead of the computation.
///
/// Call [`Prefetcher::shutdown`] when done to learn whether any loader
/// panicked; plain `Drop` still joins the workers but has nowhere to
/// report a failure.
pub struct Prefetcher {
    workers: Option<rayon::ThreadPool>,
    pool: Arc<DataPool>,
    outstanding: Arc<(Mutex<usize>, Condvar)>,
    failed_loads: Arc<AtomicU64>,
}

impl Prefetcher {
    /// Starts `workers` prefetch threads feeding `pool`.
    pub fn new(pool: Arc<DataPool>, workers: usize) -> Prefetcher {
        assert!(workers >= 1);
        Prefetcher {
            workers: Some(rayon::ThreadPoolBuilder::new().num_threads(workers).build()),
            pool,
            outstanding: Arc::new((Mutex::new(0usize), Condvar::new())),
            failed_loads: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Queues a prefetch. A prefetch is best-effort: if the workers are
    /// already gone the load is recorded in [`Prefetcher::failed_loads`]
    /// (and surfaced by `shutdown`) rather than panicking.
    pub fn prefetch<F: FnOnce() -> Vec<u8> + Send + 'static>(&self, key: &str, loader: F) {
        let (lock, _) = &*self.outstanding;
        *lock.lock() += 1;
        let Some(workers) = self.workers.as_ref() else {
            // Shut down (only reachable mid-drop): the load can never
            // happen, so record the failure and release any waiter.
            self.record_failed_load();
            return;
        };
        let key = key.to_string();
        let pool = Arc::clone(&self.pool);
        let outstanding = Arc::clone(&self.outstanding);
        let failed_loads = Arc::clone(&self.failed_loads);
        workers.spawn(move || {
            if !pool.contains(&key) {
                // Catch loader panics so the outstanding count is always
                // decremented — otherwise one bad loader would deadlock
                // every later `drain()`.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(loader)) {
                    Ok(data) => {
                        pool.insert(&key, data);
                    }
                    Err(_) => {
                        failed_loads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let (lock, cv) = &*outstanding;
            let mut n = lock.lock();
            *n -= 1;
            cv.notify_all();
        });
    }

    /// Counts a load that could not run and releases its drain waiter.
    fn record_failed_load(&self) {
        self.failed_loads.fetch_add(1, Ordering::Relaxed);
        let (lock, cv) = &*self.outstanding;
        let mut n = lock.lock();
        *n -= 1;
        cv.notify_all();
    }

    /// Blocks until every queued prefetch has landed (or failed).
    pub fn drain(&self) {
        let (lock, cv) = &*self.outstanding;
        let mut n = lock.lock();
        while *n > 0 {
            cv.wait(&mut n);
        }
    }

    /// Loaders that panicked so far (their keys were not inserted).
    pub fn failed_loads(&self) -> u64 {
        self.failed_loads.load(Ordering::Relaxed)
    }

    /// Drains outstanding work, stops the workers and joins them.
    ///
    /// # Errors
    /// Returns [`SimError::WorkerPanic`] when any queued loader panicked
    /// (the failure count is in the worker label) or when a prefetch job
    /// itself died outside the loader.
    pub fn shutdown(mut self) -> Result<(), SimError> {
        self.drain();
        if let Some(workers) = self.workers.take() {
            let panicked = workers.join();
            if panicked > 0 {
                return Err(SimError::worker_panic(format!(
                    "{panicked} prefetch job(s)"
                )));
            }
        }
        let failed = self.failed_loads();
        if failed > 0 {
            return Err(SimError::worker_panic(format!(
                "{failed} prefetch loader(s)"
            )));
        }
        Ok(())
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Guarded: `shutdown()` already took `workers`, so this only
        // joins when the prefetcher is dropped without an explicit
        // shutdown (failures are then unreportable but not swallowed
        // silently — they are counted in `failed_loads`).
        drop(self.workers.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let pool = DataPool::new(1024);
        pool.insert("a", vec![1, 2, 3]);
        assert_eq!(*pool.get("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(pool.used(), 3);
    }

    #[test]
    fn immutability_keeps_first_write() {
        let pool = DataPool::new(1024);
        pool.insert("a", vec![1]);
        let v = pool.insert("a", vec![9, 9]);
        assert_eq!(*v, vec![1]);
        assert_eq!(pool.used(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let pool = DataPool::new(10);
        pool.insert("a", vec![0; 4]);
        pool.insert("b", vec![0; 4]);
        pool.get("a"); // refresh a
        pool.insert("c", vec![0; 4]); // evicts b (LRU)
        assert!(pool.contains("a"));
        assert!(!pool.contains("b"));
        assert!(pool.contains("c"));
        assert_eq!(pool.stats.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn budget_is_respected() {
        let pool = DataPool::new(100);
        for i in 0..50 {
            pool.insert(&format!("k{i}"), vec![0; 10]);
        }
        assert!(pool.used() <= 100);
    }

    #[test]
    fn get_or_load_only_loads_on_miss() {
        let pool = DataPool::new(1024);
        let mut calls = 0;
        pool.get_or_load("k", || {
            calls += 1;
            vec![7]
        });
        assert_eq!(calls, 1);
        let v = pool.get_or_load("k", || panic!("must not reload"));
        assert_eq!(*v, vec![7]);
        assert!(pool.stats.hit_ratio() > 0.0);
    }

    #[test]
    fn prefetcher_loads_in_background() {
        let pool = Arc::new(DataPool::new(1 << 20));
        let pf = Prefetcher::new(Arc::clone(&pool), 4);
        for i in 0..32 {
            pf.prefetch(&format!("panel{i}"), move || vec![i as u8; 100]);
        }
        pf.drain();
        for i in 0..32 {
            let v = pool.get(&format!("panel{i}")).expect("prefetched");
            assert_eq!(v.len(), 100);
            assert_eq!(v[0], i as u8);
        }
    }

    #[test]
    fn prefetch_skips_resident_keys() {
        let pool = Arc::new(DataPool::new(1 << 20));
        pool.insert("k", vec![1]);
        let pf = Prefetcher::new(Arc::clone(&pool), 2);
        pf.prefetch("k", || panic!("must not reload resident key"));
        pf.drain();
        assert_eq!(*pool.get("k").unwrap(), vec![1]);
        pf.shutdown().unwrap();
    }

    #[test]
    fn clean_shutdown_returns_ok() {
        let pool = Arc::new(DataPool::new(1 << 20));
        let pf = Prefetcher::new(Arc::clone(&pool), 2);
        pf.prefetch("a", || vec![1]);
        pf.shutdown().unwrap();
        assert!(pool.contains("a"));
    }

    #[test]
    fn panicking_loader_does_not_deadlock_and_is_reported() {
        let pool = Arc::new(DataPool::new(1 << 20));
        let pf = Prefetcher::new(Arc::clone(&pool), 2);
        pf.prefetch("bad", || panic!("injected loader failure"));
        pf.prefetch("good", || vec![7]);
        pf.drain(); // must not hang on the failed load
        assert_eq!(pf.failed_loads(), 1);
        assert!(!pool.contains("bad"));
        assert!(pool.contains("good"));
        let err = pf.shutdown().unwrap_err();
        assert!(
            matches!(err, SimError::WorkerPanic { .. }),
            "expected WorkerPanic, got {err}"
        );
    }
}
