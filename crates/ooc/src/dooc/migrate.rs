//! Data migration between pools (§3.1).
//!
//! "In our approach, we extend the functionality of DOoC+LAF ... to enable
//! migration of data between data pools as well as between a monolithic
//! data pool and an individual node's memory." A migration copies
//! immutable arrays from a source pool (e.g. the ION-backed monolithic
//! pool) into a destination pool (a compute node's local-NVM pool) ahead
//! of the computation — the paper's pre-loading phase.

use crate::dooc::pool::DataPool;
use rayon::prelude::*;
use serde::Serialize;
use std::sync::Arc;

/// Outcome of one migration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MigrationReport {
    /// Keys copied into the destination.
    pub moved: u64,
    /// Bytes copied.
    pub moved_bytes: u64,
    /// Keys skipped because the destination already held them
    /// (immutability makes this a safe no-op).
    pub already_present: u64,
    /// Keys requested but absent from the source.
    pub missing: u64,
}

/// Copies `keys` from `src` to `dst`. Returns per-key accounting.
///
/// Immutability (DOoC's semantics) makes migration trivially coherent:
/// a key either exists with its final bytes or does not exist yet, so a
/// concurrent reader can never observe a torn array.
pub fn migrate(src: &DataPool, dst: &DataPool, keys: &[String]) -> MigrationReport {
    let mut report = MigrationReport::default();
    for key in keys {
        if dst.contains(key) {
            report.already_present += 1;
            continue;
        }
        match src.get(key) {
            Some(data) => {
                report.moved += 1;
                report.moved_bytes += data.len() as u64;
                dst.insert(key, data.as_ref().clone());
            }
            None => report.missing += 1,
        }
    }
    report
}

/// Migrates every key of `src` matched by `filter` into `dst` on the
/// thread pool, split into `workers` chunks (migration is bandwidth
/// work; the paper overlaps it with "previous application execution").
pub fn migrate_matching<F>(
    src: &Arc<DataPool>,
    dst: &Arc<DataPool>,
    keys: &[String],
    workers: usize,
    filter: F,
) -> MigrationReport
where
    F: Fn(&str) -> bool + Send + Sync,
{
    assert!(workers >= 1);
    let selected: Vec<String> = keys.iter().filter(|k| filter(k)).cloned().collect();
    let chunks: Vec<&[String]> = selected
        .chunks(selected.len().div_ceil(workers).max(1))
        .collect();
    let reports: Vec<MigrationReport> = chunks
        .into_par_iter()
        .map(|chunk| migrate(src, dst, chunk))
        .collect();
    let mut total = MigrationReport::default();
    for r in reports {
        total.moved += r.moved;
        total.moved_bytes += r.moved_bytes;
        total.already_present += r.already_present;
        total.missing += r.missing;
    }
    total
}

/// Drains selected keys out of a pool into plain node memory (the
/// "monolithic data pool -> individual node's memory" direction).
/// Returns owned `(key, bytes)` pairs; entries stay resident in the pool
/// (immutability means no ownership transfer is needed).
pub fn checkout(pool: &DataPool, keys: &[String]) -> Vec<(String, Vec<u8>)> {
    keys.iter()
        .filter_map(|k| pool.get(k).map(|d| (k.clone(), d.as_ref().clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_pool(n: u64, size: usize) -> Arc<DataPool> {
        let pool = Arc::new(DataPool::new(1 << 30));
        for i in 0..n {
            pool.insert(&format!("k{i}"), vec![i as u8; size]);
        }
        pool
    }

    fn keys(n: u64) -> Vec<String> {
        (0..n).map(|i| format!("k{i}")).collect()
    }

    #[test]
    fn migrate_copies_everything_once() {
        let src = filled_pool(10, 100);
        let dst = Arc::new(DataPool::new(1 << 20));
        let rep = migrate(&src, &dst, &keys(10));
        assert_eq!(rep.moved, 10);
        assert_eq!(rep.moved_bytes, 1000);
        assert_eq!(rep.missing, 0);
        for k in keys(10) {
            assert!(dst.contains(&k));
        }
        // Second migration is a no-op.
        let rep2 = migrate(&src, &dst, &keys(10));
        assert_eq!(rep2.moved, 0);
        assert_eq!(rep2.already_present, 10);
    }

    #[test]
    fn migrate_reports_missing_keys() {
        let src = filled_pool(2, 10);
        let dst = Arc::new(DataPool::new(1 << 20));
        let rep = migrate(&src, &dst, &keys(5));
        assert_eq!(rep.moved, 2);
        assert_eq!(rep.missing, 3);
    }

    #[test]
    fn migrated_bytes_are_identical() {
        let src = filled_pool(4, 64);
        let dst = Arc::new(DataPool::new(1 << 20));
        migrate(&src, &dst, &keys(4));
        for i in 0..4u64 {
            let k = format!("k{i}");
            assert_eq!(*src.get(&k).unwrap(), *dst.get(&k).unwrap());
        }
    }

    #[test]
    fn parallel_migration_moves_the_filtered_set() {
        let src = filled_pool(64, 32);
        let dst = Arc::new(DataPool::new(1 << 20));
        let rep = migrate_matching(&src, &dst, &keys(64), 4, |k| {
            // Even-numbered keys only.
            k[1..].parse::<u64>().unwrap() % 2 == 0
        });
        assert_eq!(rep.moved, 32);
        assert_eq!(rep.moved_bytes, 32 * 32);
        assert!(dst.contains("k0"));
        assert!(!dst.contains("k1"));
    }

    #[test]
    fn checkout_returns_owned_copies_and_keeps_residency() {
        let pool = filled_pool(3, 16);
        let out = checkout(&pool, &keys(3));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, v)| v.len() == 16));
        for k in keys(3) {
            assert!(pool.contains(&k));
        }
    }
}
