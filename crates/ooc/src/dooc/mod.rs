//! DOoC+LAF / DataCutter-style middleware (§2.1 of the paper).
//!
//! The paper's application does not talk to storage directly: it runs on
//! **DOoC**, "a distributed data storage and scheduler with OoC
//! capabilities", which sits atop **DataCutter**, "a middleware that
//! abstracts dataflows via the concept of filters and streams". This
//! module rebuilds those three layers:
//!
//! * [`pool`] — the distributed data-storage layer: an immutable, keyed
//!   data pool with an explicit memory budget, LRU eviction, and
//!   background prefetching ("supports basic prefetching, automatic
//!   memory management ... large disk-located arrays are immutable once
//!   written, removing any need for complicated coherency mechanisms");
//! * [`sched`] — the hierarchical data-aware scheduler: a dependency-DAG
//!   executor that prefers ready tasks whose inputs are already resident
//!   ("cognizant of data-dependencies and performs task reordering to
//!   maximize parallelism and performance");
//! * [`filter`] — DataCutter's filter/stream abstraction: filters
//!   transform flows of chunks between producers and consumers over
//!   bounded channels;
//! * [`migrate`] — §3.1's extension: data migration between pools and
//!   between a monolithic pool and a node's memory (the pre-load path).

pub mod filter;
pub mod migrate;
pub mod pool;
pub mod sched;

pub use filter::{Filter, Pipeline};
pub use migrate::{checkout, migrate, migrate_matching, MigrationReport};
pub use pool::{DataPool, PoolStats, Prefetcher};
pub use sched::{TaskGraph, TaskId};
