//! DataCutter-style filters and streams.
//!
//! "Filters perform computations on flows of data, which are represented
//! as streams running between producers and consumers" (§2.1). A
//! [`Pipeline`] wires a chain of [`Filter`]s together with bounded
//! channels and runs each filter on its own thread, so a slow stage
//! applies backpressure instead of buffering unboundedly.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

/// A stage in a dataflow: consumes chunks, emits chunks.
pub trait Filter: Send {
    /// Handles one incoming chunk, emitting any number of chunks.
    fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes));
    /// Called once after the input stream ends; may flush buffered state.
    fn finish(&mut self, _emit: &mut dyn FnMut(Bytes)) {}
}

/// A linear chain of filters connected by bounded streams.
pub struct Pipeline {
    filters: Vec<Box<dyn Filter>>,
    /// Stream (channel) capacity between stages.
    pub stream_depth: usize,
}

impl Pipeline {
    /// Empty pipeline with a stream depth of 8 chunks.
    pub fn new() -> Pipeline {
        Pipeline {
            filters: Vec::new(),
            stream_depth: 8,
        }
    }

    /// Appends a stage.
    pub fn then<F: Filter + 'static>(mut self, filter: F) -> Pipeline {
        self.filters.push(Box::new(filter));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Feeds `source` through every stage, returning the terminal stream's
    /// chunks in order.
    pub fn run<I>(self, source: I) -> Vec<Bytes>
    where
        I: IntoIterator<Item = Bytes> + Send + 'static,
        I::IntoIter: Send,
    {
        let depth = self.stream_depth.max(1);
        let (first_tx, mut prev_rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(depth);
        let mut handles = Vec::with_capacity(self.filters.len());
        for mut f in self.filters {
            let (tx, rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(depth);
            let input = prev_rx;
            handles.push(std::thread::spawn(move || {
                let mut emit = |chunk: Bytes| {
                    // Downstream hang-ups just terminate the flow early.
                    let _ = tx.send(chunk);
                };
                while let Ok(chunk) = input.recv() {
                    f.process(chunk, &mut emit);
                }
                f.finish(&mut emit);
            }));
            prev_rx = rx;
        }
        // Producer feeds the first stream from this thread... but that
        // deadlocks on bounded channels; feed from a thread instead.
        let producer = std::thread::spawn(move || {
            for chunk in source {
                if first_tx.send(chunk).is_err() {
                    break;
                }
            }
        });
        let out: Vec<Bytes> = prev_rx.iter().collect();
        let _ = producer.join();
        for h in handles {
            let _ = h.join();
        }
        out
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every byte value.
    struct Doubler;
    impl Filter for Doubler {
        fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes)) {
            emit(Bytes::from(
                chunk
                    .iter()
                    .map(|&b| b.wrapping_mul(2))
                    .collect::<Vec<u8>>(),
            ));
        }
    }

    /// Drops chunks whose first byte is odd.
    struct EvenOnly;
    impl Filter for EvenOnly {
        fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes)) {
            if chunk.first().is_some_and(|b| b % 2 == 0) {
                emit(chunk);
            }
        }
    }

    /// Counts chunks, emitting the total at end-of-stream.
    struct Counter(u64);
    impl Filter for Counter {
        fn process(&mut self, _chunk: Bytes, _emit: &mut dyn FnMut(Bytes)) {
            self.0 += 1;
        }
        fn finish(&mut self, emit: &mut dyn FnMut(Bytes)) {
            emit(Bytes::from(self.0.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn single_stage_transforms() {
        let out = Pipeline::new()
            .then(Doubler)
            .run(vec![Bytes::from_static(&[1, 2]), Bytes::from_static(&[3])]);
        assert_eq!(
            out,
            vec![Bytes::from_static(&[2, 4]), Bytes::from_static(&[6])]
        );
    }

    #[test]
    fn stages_compose_in_order() {
        // Double then filter: 1 -> 2 (kept), 2 -> 4 (kept), 3 -> 6 (kept):
        // all even after doubling. Filter-then-double would differ.
        let out = Pipeline::new()
            .then(Doubler)
            .then(EvenOnly)
            .run((1u8..=3).map(|b| Bytes::from(vec![b])));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn finish_flushes_aggregates() {
        let out = Pipeline::new()
            .then(Counter(0))
            .run((0..100u8).map(|b| Bytes::from(vec![b])));
        assert_eq!(out.len(), 1);
        assert_eq!(u64::from_le_bytes(out[0][..8].try_into().unwrap()), 100);
    }

    #[test]
    fn bounded_streams_apply_backpressure_without_deadlock() {
        // Many more chunks than the stream depth.
        let mut p = Pipeline::new().then(Doubler).then(Doubler);
        p.stream_depth = 2;
        let out = p.run((0..1000u32).map(|i| Bytes::from(vec![(i % 251) as u8])));
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let chunks = vec![Bytes::from_static(b"abc")];
        let out = Pipeline::new().run(chunks.clone());
        assert_eq!(out, chunks);
    }
}
