//! DataCutter-style filters and streams.
//!
//! "Filters perform computations on flows of data, which are represented
//! as streams running between producers and consumers" (§2.1). A
//! [`Pipeline`] wires a chain of [`Filter`]s together with bounded
//! channels and runs each filter on its own thread, so a slow stage
//! applies backpressure instead of buffering unboundedly.

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use nvmtypes::SimError;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A stage in a dataflow: consumes chunks, emits chunks.
pub trait Filter: Send {
    /// Handles one incoming chunk, emitting any number of chunks.
    fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes));
    /// Called once after the input stream ends; may flush buffered state.
    fn finish(&mut self, _emit: &mut dyn FnMut(Bytes)) {}
}

/// A linear chain of filters connected by bounded streams.
pub struct Pipeline {
    filters: Vec<Box<dyn Filter>>,
    /// Stream (channel) capacity between stages.
    pub stream_depth: usize,
}

impl Pipeline {
    /// Empty pipeline with a stream depth of 8 chunks.
    pub fn new() -> Pipeline {
        Pipeline {
            filters: Vec::new(),
            stream_depth: 8,
        }
    }

    /// Appends a stage.
    pub fn then<F: Filter + 'static>(mut self, filter: F) -> Pipeline {
        self.filters.push(Box::new(filter));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Feeds `source` through every stage, returning the terminal stream's
    /// chunks in order.
    ///
    /// # Errors
    /// Returns [`SimError::WorkerPanic`] when a stage (or the producer)
    /// panics, and [`SimError::ChannelClosed`] when a stage's downstream
    /// hangs up while it still has chunks to emit. A healthy run drains
    /// every stream, so neither can occur without a real fault.
    pub fn run<I>(self, source: I) -> Result<Vec<Bytes>, SimError>
    where
        I: IntoIterator<Item = Bytes> + Send + 'static,
        I::IntoIter: Send,
    {
        let depth = self.stream_depth.max(1);
        let stages = self.filters.len();
        // Every stage plus the producer blocks on its stream, so each
        // needs a live worker of its own.
        let worker_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(stages + 1)
            .build();
        // Stage outcomes come back over a channel (pool jobs have no join
        // handle): `Err(())` records a caught panic in that stage.
        type Outcome = Result<Result<(), SimError>, ()>;
        let (res_tx, res_rx) = unbounded::<(usize, Outcome)>();

        let (first_tx, mut prev_rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(depth);
        for (i, mut f) in self.filters.into_iter().enumerate() {
            let (tx, rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(depth);
            let input = prev_rx;
            let res_tx = res_tx.clone();
            worker_pool.spawn(move || {
                let body = move || -> Result<(), SimError> {
                    // A send failure means the downstream stage died early;
                    // record it so the stage can stop and report instead of
                    // silently dropping the rest of the flow.
                    let disconnected = Cell::new(false);
                    let mut emit = |chunk: Bytes| {
                        if tx.send(chunk).is_err() {
                            disconnected.set(true);
                        }
                    };
                    while let Ok(chunk) = input.recv() {
                        f.process(chunk, &mut emit);
                        if disconnected.get() {
                            return Err(SimError::channel_closed(format!("filter[{i}]")));
                        }
                    }
                    f.finish(&mut emit);
                    if disconnected.get() {
                        return Err(SimError::channel_closed(format!("filter[{i}]")));
                    }
                    Ok(())
                };
                // Catching here guarantees an outcome message per stage
                // (a panicking stage also drops its sender, so the flow
                // downstream of it still terminates).
                let outcome = catch_unwind(AssertUnwindSafe(body)).map_err(|_| ());
                let _pipeline_gone = res_tx.send((i, outcome));
            });
            prev_rx = rx;
        }
        // Producer feeds the first stream from this thread... but that
        // deadlocks on bounded channels; feed from a worker instead. A
        // producer-side send failure is not reported here: the stage that
        // hung up reports its own panic/disconnect below.
        worker_pool.spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                for chunk in source {
                    if first_tx.send(chunk).is_err() {
                        break;
                    }
                }
            }));
            let _pipeline_gone = res_tx.send((stages, outcome.map(Ok).map_err(|_| ())));
        });
        let out: Vec<Bytes> = prev_rx.iter().collect();

        let mut outcomes: Vec<Option<Outcome>> = (0..=stages).map(|_| None).collect();
        for _ in 0..=stages {
            match res_rx.recv() {
                Ok((i, outcome)) => outcomes[i] = Some(outcome),
                Err(_) => break,
            }
        }
        drop(worker_pool);
        // Panics outrank disconnects: an upstream disconnect is usually
        // the *consequence* of a downstream panic, so report the cause.
        let mut panicked: Option<SimError> = None;
        let mut closed: Option<SimError> = None;
        if !matches!(outcomes[stages], Some(Ok(_))) {
            panicked = Some(SimError::worker_panic("pipeline producer"));
        }
        for (i, outcome) in outcomes.into_iter().take(stages).enumerate() {
            match outcome {
                Some(Ok(Ok(()))) => {}
                Some(Ok(Err(e))) => {
                    if closed.is_none() {
                        closed = Some(e);
                    }
                }
                Some(Err(())) | None => {
                    if panicked.is_none() {
                        panicked = Some(SimError::worker_panic(format!("filter[{i}]")));
                    }
                }
            }
        }
        match panicked.or(closed) {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every byte value.
    struct Doubler;
    impl Filter for Doubler {
        fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes)) {
            emit(Bytes::from(
                chunk
                    .iter()
                    .map(|&b| b.wrapping_mul(2))
                    .collect::<Vec<u8>>(),
            ));
        }
    }

    /// Drops chunks whose first byte is odd.
    struct EvenOnly;
    impl Filter for EvenOnly {
        fn process(&mut self, chunk: Bytes, emit: &mut dyn FnMut(Bytes)) {
            if chunk.first().is_some_and(|b| b % 2 == 0) {
                emit(chunk);
            }
        }
    }

    /// Counts chunks, emitting the total at end-of-stream.
    struct Counter(u64);
    impl Filter for Counter {
        fn process(&mut self, _chunk: Bytes, _emit: &mut dyn FnMut(Bytes)) {
            self.0 += 1;
        }
        fn finish(&mut self, emit: &mut dyn FnMut(Bytes)) {
            emit(Bytes::from(self.0.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn single_stage_transforms() {
        let out = Pipeline::new()
            .then(Doubler)
            .run(vec![Bytes::from_static(&[1, 2]), Bytes::from_static(&[3])])
            .unwrap();
        assert_eq!(
            out,
            vec![Bytes::from_static(&[2, 4]), Bytes::from_static(&[6])]
        );
    }

    #[test]
    fn stages_compose_in_order() {
        // Double then filter: 1 -> 2 (kept), 2 -> 4 (kept), 3 -> 6 (kept):
        // all even after doubling. Filter-then-double would differ.
        let out = Pipeline::new()
            .then(Doubler)
            .then(EvenOnly)
            .run((1u8..=3).map(|b| Bytes::from(vec![b])))
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn finish_flushes_aggregates() {
        let out = Pipeline::new()
            .then(Counter(0))
            .run((0..100u8).map(|b| Bytes::from(vec![b])))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(u64::from_le_bytes(out[0][..8].try_into().unwrap()), 100);
    }

    #[test]
    fn bounded_streams_apply_backpressure_without_deadlock() {
        // Many more chunks than the stream depth.
        let mut p = Pipeline::new().then(Doubler).then(Doubler);
        p.stream_depth = 2;
        let out = p
            .run((0..1000u32).map(|i| Bytes::from(vec![(i % 251) as u8])))
            .unwrap();
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let chunks = vec![Bytes::from_static(b"abc")];
        let out = Pipeline::new().run(chunks.clone()).unwrap();
        assert_eq!(out, chunks);
    }

    /// Panics on the first chunk it sees.
    struct Exploder;
    impl Filter for Exploder {
        fn process(&mut self, _chunk: Bytes, _emit: &mut dyn FnMut(Bytes)) {
            panic!("injected stage failure");
        }
    }

    #[test]
    fn stage_panic_surfaces_as_worker_panic() {
        let err = Pipeline::new()
            .then(Doubler)
            .then(Exploder)
            .run((0..100u8).map(|b| Bytes::from(vec![b])))
            .unwrap_err();
        assert!(
            matches!(err, SimError::WorkerPanic { .. }),
            "expected WorkerPanic, got {err}"
        );
    }

    #[test]
    fn producer_panic_surfaces_as_worker_panic() {
        let err = Pipeline::new()
            .then(Doubler)
            .run((0..10u8).map(|b| {
                assert!(b < 5, "injected producer failure");
                Bytes::from(vec![b])
            }))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::WorkerPanic {
                worker: "pipeline producer".into()
            }
        );
    }
}
