//! The hierarchical data-aware task scheduler.

use crate::dooc::pool::DataPool;
use nvmtypes::SimError;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Identifier of a task within a [`TaskGraph`].
pub type TaskId = usize;

type TaskFn = Box<dyn FnOnce() + Send>;

struct Task {
    name: String,
    inputs: Vec<String>,
    run: TaskFn,
    deps_left: usize,
    dependents: Vec<TaskId>,
}

/// A dependency DAG of tasks executed by a small worker pool.
///
/// The scheduler is *data-aware* in DOoC's sense: among ready tasks it
/// dispatches the one with the most declared inputs already resident in
/// the data pool, so computation chases the prefetcher instead of
/// stalling on cold data.
pub struct TaskGraph {
    tasks: Vec<Task>,
    pool: Option<Arc<DataPool>>,
}

impl Default for TaskGraph {
    fn default() -> Self {
        TaskGraph::new()
    }
}

impl TaskGraph {
    /// Empty graph without data-awareness.
    pub fn new() -> TaskGraph {
        TaskGraph {
            tasks: Vec::new(),
            pool: None,
        }
    }

    /// Empty graph scoring readiness against `pool` residency.
    pub fn with_pool(pool: Arc<DataPool>) -> TaskGraph {
        TaskGraph {
            tasks: Vec::new(),
            pool: Some(pool),
        }
    }

    /// Adds a task depending on `deps`; returns its id.
    ///
    /// # Panics
    /// Panics if a dependency id is unknown (forward references are not
    /// allowed, which also keeps the graph acyclic by construction).
    pub fn add_task<F>(&mut self, name: &str, deps: &[TaskId], run: F) -> TaskId
    where
        F: FnOnce() + Send + 'static,
    {
        self.add_task_with_inputs(name, deps, &[], run)
    }

    /// Adds a task that also declares the pool keys it will read, for
    /// data-aware ordering.
    pub fn add_task_with_inputs<F>(
        &mut self,
        name: &str,
        deps: &[TaskId],
        inputs: &[&str],
        run: F,
    ) -> TaskId
    where
        F: FnOnce() + Send + 'static,
    {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        self.tasks.push(Task {
            name: name.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            run: Box::new(run),
            deps_left: deps.len(),
            dependents: Vec::new(),
        });
        for &d in deps {
            self.tasks[d].dependents.push(id);
        }
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Executes the whole graph on `workers` threads, returning task names
    /// in dispatch order.
    ///
    /// # Errors
    /// Returns [`SimError::WorkerPanic`] naming the first task whose body
    /// panicked. The panic is caught on the worker thread, already-running
    /// tasks are allowed to finish, and no further tasks are dispatched.
    pub fn execute(self, workers: usize) -> Result<Vec<String>, SimError> {
        assert!(workers >= 1);
        let pool = self.pool.clone();
        let mut deps_left: Vec<usize> = self.tasks.iter().map(|t| t.deps_left).collect();
        let dependents: Vec<Vec<TaskId>> =
            self.tasks.iter().map(|t| t.dependents.clone()).collect();
        let names: Vec<String> = self.tasks.iter().map(|t| t.name.clone()).collect();
        let inputs: Vec<Vec<String>> = self.tasks.iter().map(|t| t.inputs.clone()).collect();
        let mut bodies: HashMap<TaskId, TaskFn> = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| (i, t.run))
            .collect();

        let (done_tx, done_rx) = crossbeam::channel::unbounded::<(TaskId, bool)>();
        let worker_pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build();

        let mut ready: Vec<TaskId> = (0..deps_left.len())
            .filter(|&i| deps_left[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(deps_left.len());
        let mut running = 0usize;
        let mut remaining = deps_left.len();

        let mut failure: Option<SimError> = None;
        'dispatch: while remaining > 0 {
            // Dispatch as many ready tasks as workers allow, best-scored
            // (most resident inputs) first.
            while running < workers && !ready.is_empty() {
                let Some(best) = ready
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &t)| match &pool {
                        Some(p) => inputs[t].iter().filter(|k| p.contains(k)).count(),
                        None => 0,
                    })
                    .map(|(i, _)| i)
                else {
                    break;
                };
                let task = ready.swap_remove(best);
                let Some(body) = bodies.remove(&task) else {
                    // A task dispatched twice would be a scheduler bug;
                    // surface it as an error instead of panicking.
                    failure = Some(SimError::worker_panic(format!(
                        "task `{}` (body already taken)",
                        names[task]
                    )));
                    break 'dispatch;
                };
                order.push(names[task].clone());
                let done_tx = done_tx.clone();
                worker_pool.spawn(move || {
                    // Catch panics so a failing task body is reported as a
                    // completion (ok = false) instead of deadlocking the
                    // dispatch loop.
                    let ok = catch_unwind(AssertUnwindSafe(body)).is_ok();
                    let _pool_shutting_down = done_tx.send((task, ok));
                });
                running += 1;
            }
            let Ok((finished, ok)) = done_rx.recv() else {
                failure = Some(SimError::channel_closed("scheduler completions"));
                break 'dispatch;
            };
            running -= 1;
            remaining -= 1;
            if !ok {
                failure = Some(SimError::worker_panic(format!(
                    "task `{}`",
                    names[finished]
                )));
                break;
            }
            for &dep in &dependents[finished] {
                deps_left[dep] -= 1;
                if deps_left[dep] == 0 {
                    ready.push(dep);
                }
            }
        }
        // Let already-dispatched tasks run to completion. Dropping our
        // completion sender first means `recv` errors (instead of
        // blocking forever) if a job was lost.
        drop(done_tx);
        while running > 0 {
            match done_rx.recv() {
                Ok((finished, ok)) => {
                    running -= 1;
                    if !ok && failure.is_none() {
                        failure = Some(SimError::worker_panic(format!(
                            "task `{}`",
                            names[finished]
                        )));
                    }
                }
                Err(_) => break,
            }
        }
        let panicked = worker_pool.join();
        if panicked > 0 && failure.is_none() {
            failure = Some(SimError::worker_panic(format!(
                "{panicked} scheduler job(s)"
            )));
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(order),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn dependencies_execute_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let l1 = Arc::clone(&log);
        let a = g.add_task("a", &[], move || l1.lock().unwrap().push("a"));
        let l2 = Arc::clone(&log);
        let b = g.add_task("b", &[a], move || l2.lock().unwrap().push("b"));
        let l3 = Arc::clone(&log);
        g.add_task("c", &[a, b], move || l3.lock().unwrap().push("c"));
        g.execute(4).unwrap();
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        // With 4 workers, 4 barrier-synchronised tasks can only finish if
        // they truly run concurrently.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut g = TaskGraph::new();
        for i in 0..4 {
            let b = Arc::clone(&barrier);
            g.add_task(&format!("t{i}"), &[], move || {
                b.wait();
            });
        }
        g.execute(4).unwrap(); // would deadlock if serialised
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for i in 0..20 {
            let c = Arc::clone(&count);
            let deps: Vec<TaskId> = if i % 3 == 0 { prev.clone() } else { Vec::new() };
            let id = g.add_task(&format!("t{i}"), &deps, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            prev.push(id);
            if prev.len() > 3 {
                prev.remove(0);
            }
        }
        g.execute(3).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn data_aware_ordering_prefers_resident_inputs() {
        let pool = Arc::new(DataPool::new(1 << 20));
        pool.insert("hot", vec![1]);
        let mut g = TaskGraph::with_pool(Arc::clone(&pool));
        // Two ready tasks; the one whose input is resident must dispatch
        // first on a single worker.
        g.add_task_with_inputs("cold", &[], &["missing"], || {});
        g.add_task_with_inputs("hot", &[], &["hot"], || {});
        let order = g.execute(1).unwrap();
        assert_eq!(order[0], "hot");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependencies_rejected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &[5], || {});
    }

    #[test]
    fn panicking_task_surfaces_as_error() {
        let ran_after = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let bad = g.add_task("bad", &[], || panic!("injected task failure"));
        let r = Arc::clone(&ran_after);
        g.add_task("after", &[bad], move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        let err = g.execute(2).unwrap_err();
        assert_eq!(
            err,
            nvmtypes::SimError::WorkerPanic {
                worker: "task `bad`".into()
            }
        );
        // Dependents of the failed task must not have been dispatched.
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
    }
}
