//! # ooc — the out-of-core application substrate
//!
//! The paper's workload (§2.1) is a configuration-interaction nuclear
//! structure calculation: a parallel iterative eigensolver — LOBPCG — whose
//! dominant cost is repeatedly multiplying the enormous sparse many-body
//! Hamiltonian `H` against a tall skinny block of vectors `Ψ` (10–20
//! columns), with `H` preprocessed once and streamed from capacity storage
//! every iteration. This crate builds that application for real:
//!
//! * [`dense`] — the small dense kernels an eigensolver needs (column-major
//!   matrices, Cholesky, modified Gram–Schmidt, a cyclic Jacobi symmetric
//!   eigensolver for the Rayleigh–Ritz step);
//! * [`sparse`] — CSR sparse matrices with rayon-parallel `SpMM`;
//! * [`hamiltonian`] — a synthetic sparse symmetric "nuclear CI"
//!   Hamiltonian generator (banded many-body structure plus scattered
//!   interaction blocks), substituting for the MFDn matrices the paper
//!   reads from Carver's storage;
//! * [`store`] — the out-of-core matrix store: `H` is serialised into row
//!   panels on a simulated device and every panel read is captured as a
//!   POSIX-level trace record (§4.2's tracing methodology);
//! * [`lobpcg`] — the locally optimal block preconditioned conjugate
//!   gradient eigensolver [Knyazev '01], reading `H` through the store
//!   each iteration;
//! * [`dooc`] — the DOoC+LAF / DataCutter middleware layer (§2.1): an
//!   immutable keyed data pool with memory management and prefetching, a
//!   data-aware task scheduler, and a filter/stream dataflow runner;
//! * [`checkpoint`] — solver checkpoint/restart under simulated node
//!   loss, driven by the deterministic fault plan in `nvmtypes::fault`
//!   (docs/FAULT_MODEL.md).
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod dense;
pub mod dooc;
pub mod hamiltonian;
pub mod lobpcg;
pub mod matrixmarket;
pub mod sparse;
pub mod store;
pub mod ufs_store;

pub use checkpoint::{solve_with_recovery, RecoveredResult, RecoveryStats, SolverCheckpoint};
pub use dense::DMatrix;
pub use hamiltonian::HamiltonianSpec;
pub use lobpcg::{Lobpcg, LobpcgOptions, LobpcgResult, SolverState};
pub use matrixmarket::{from_matrix_market, to_matrix_market};
pub use sparse::CsrMatrix;
pub use store::{OocMatrix, OocStore};
pub use ufs_store::{UfsMatrix, UfsOperator};
