//! CSR sparse matrices with rayon-parallel sparse × dense-block products.

use crate::dense::DMatrix;
use rayon::prelude::*;

/// Compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Rows (== columns; the workspace only needs square operators).
    pub n: usize,
    /// Row pointers, `len == n + 1`.
    pub row_ptr: Vec<u64>,
    /// Column indices, ascending within each row.
    pub col_idx: Vec<u32>,
    /// Values, parallel to `col_idx`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from per-row `(col, value)` lists (must be sorted by column).
    pub fn from_rows(n: usize, rows: Vec<Vec<(u32, f64)>>) -> CsrMatrix {
        assert_eq!(rows.len(), n);
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0u64);
        for row in rows {
            let mut prev: Option<u32> = None;
            for (c, v) in row {
                assert!((c as usize) < n, "column out of range");
                if let Some(p) = prev {
                    assert!(c > p, "columns must be strictly ascending");
                }
                prev = Some(c);
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u64);
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Entry accessor (O(log row length)); 0.0 for structural zeros.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Checks structural validity (monotone pointers, sorted columns).
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.n + 1 {
            return Err("row_ptr length".into());
        }
        if self.row_ptr.first() != Some(&0)
            || self.row_ptr.last().copied() != Some(self.nnz() as u64)
        {
            return Err("row_ptr endpoints".into());
        }
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            if lo > hi {
                return Err(format!("row {i}: non-monotone row_ptr"));
            }
            for w in self.col_idx[lo..hi].windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i}: unsorted columns"));
                }
            }
            if let Some(&last) = self.col_idx[lo..hi].last() {
                if last as usize >= self.n {
                    return Err(format!("row {i}: column out of range"));
                }
            }
        }
        Ok(())
    }

    /// Is the matrix numerically symmetric?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in lo..hi {
                let j = self.col_idx[k] as usize;
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Sparse × dense block: `Y = A * X`, parallel over rows.
    pub fn spmm(&self, x: &DMatrix) -> DMatrix {
        assert_eq!(x.nrows, self.n, "operand height mismatch");
        let m = x.ncols;
        let mut y = DMatrix::zeros(self.n, m);
        // Split Y into row chunks and process independently: the row-major
        // scatter into a column-major Y is handled by chunking columns of Y
        // per thread instead — compute into a row-major buffer then copy.
        let rows: Vec<Vec<f64>> = (0..self.n)
            .into_par_iter()
            .map(|i| {
                let mut acc = vec![0.0f64; m];
                let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
                for k in lo..hi {
                    let j = self.col_idx[k] as usize;
                    let v = self.values[k];
                    for (c, a) in acc.iter_mut().enumerate() {
                        *a += v * x.col(c)[j];
                    }
                }
                acc
            })
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            for (c, v) in row.into_iter().enumerate() {
                y.col_mut(c)[i] = v;
            }
        }
        y
    }

    /// Applies only rows `[r0, r1)` of the operator: `Y[r0..r1, :] += A[r0..r1, :] * X`.
    /// This is the panel kernel the out-of-core SpMM streams with.
    pub fn spmm_rows_into(&self, r0: usize, r1: usize, x: &DMatrix, y: &mut DMatrix) {
        assert!(r0 <= r1 && r1 <= self.n);
        assert_eq!(x.nrows, self.n);
        assert_eq!(y.nrows, self.n);
        assert_eq!(x.ncols, y.ncols);
        for i in r0..r1 {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in lo..hi {
                let j = self.col_idx[k] as usize;
                let v = self.values[k];
                for c in 0..x.ncols {
                    y.col_mut(c)[i] += v * x.col(c)[j];
                }
            }
        }
    }

    /// Dense copy (tests only; O(n^2) memory).
    pub fn to_dense(&self) -> DMatrix {
        let mut d = DMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in lo..hi {
                d[(i, self.col_idx[k] as usize)] = self.values[k];
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[2,-1,0],[-1,2,-1],[0,-1,2]]
        CsrMatrix::from_rows(
            3,
            vec![
                vec![(0, 2.0), (1, -1.0)],
                vec![(0, -1.0), (1, 2.0), (2, -1.0)],
                vec![(1, -1.0), (2, 2.0)],
            ],
        )
    }

    #[test]
    fn construction_and_validation() {
        let a = small();
        a.validate().unwrap();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(1, 2), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn spmm_matches_dense() {
        let a = small();
        let x = DMatrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[0.0, 3.0]]);
        let y = a.spmm(&x);
        let want = a.to_dense().matmul(&x);
        for i in 0..3 {
            for j in 0..2 {
                assert!((y[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn panel_kernel_matches_full_spmm() {
        let a = small();
        let x = DMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let full = a.spmm(&x);
        let mut y = DMatrix::zeros(3, 1);
        a.spmm_rows_into(0, 2, &x, &mut y);
        a.spmm_rows_into(2, 3, &x, &mut y);
        for i in 0..3 {
            assert!((y[(i, 0)] - full[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_columns() {
        CsrMatrix::from_rows(2, vec![vec![(1, 1.0), (0, 1.0)], vec![]]);
    }

    #[test]
    fn asymmetry_detected() {
        let a = CsrMatrix::from_rows(2, vec![vec![(1, 5.0)], vec![]]);
        assert!(!a.is_symmetric(1e-12));
    }
}
