//! Checkpoint/restart for the LOBPCG solver under simulated node loss.
//!
//! The paper's application runs for hours on thousands of nodes, so the
//! fault model (docs/FAULT_MODEL.md) has to answer: what does losing a
//! node mid-solve cost, and how much does periodic checkpointing of the
//! solver block to compute-local NVM buy back? This module implements
//! the mechanism: [`SolverCheckpoint`] snapshots the expensive solver
//! state (`X`, `P`, Ritz values) between iterations, and
//! [`solve_with_recovery`] drives [`Lobpcg`] while sampling node crashes
//! from the deterministic fault stream, restoring from the latest
//! checkpoint (or restarting from scratch when none exists) and
//! accounting every nanosecond of overhead in [`RecoveryStats`].

use crate::dense::DMatrix;
use crate::lobpcg::{Lobpcg, LobpcgResult, Operator, SolverState};
use nvmtypes::fault::NodeFaultProfile;
use nvmtypes::{u64_from_usize, usize_from_u32, FaultRng, Nanos};

/// Simulated checkpoint write bandwidth to compute-local NVM, bytes per
/// nanosecond (3 B/ns = 3 GB/s, a PCIe-attached NVM write stream).
pub const CHECKPOINT_BYTES_PER_NS: u64 = 3;

/// A snapshot of the solver state taken between iterations.
///
/// Holds exactly what a restarted node cannot cheaply recompute: the
/// iterate block `X`, the conjugate directions `P` and the current Ritz
/// values/residuals. `AX` is *not* stored — restoring re-applies the
/// operator once, which is cheaper than doubling the checkpoint size.
#[derive(Debug, Clone)]
pub struct SolverCheckpoint {
    iteration: usize,
    x: DMatrix,
    p: Option<DMatrix>,
    theta: Vec<f64>,
    residuals: Vec<f64>,
    // Carried along (not counted in `bytes()`): recomputable from the
    // operator diagonal, but must survive restore or the post-crash
    // iteration would silently lose its preconditioner.
    inv_diag: Option<Vec<f64>>,
}

impl SolverCheckpoint {
    /// Snapshots `st` (cheap clone of the solver block; no operator work).
    pub fn capture(st: &SolverState) -> SolverCheckpoint {
        SolverCheckpoint {
            iteration: st.iterations,
            x: st.x.clone(),
            p: st.p.clone(),
            theta: st.theta.clone(),
            residuals: st.residuals.clone(),
            inv_diag: st.inv_diag.clone(),
        }
    }

    /// Iteration the snapshot was taken at.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Serialised size of the snapshot (what a checkpoint write moves to
    /// NVM): every f64 payload plus a small fixed header.
    pub fn bytes(&self) -> u64 {
        let floats = self.x.data.len()
            + self.p.as_ref().map_or(0, |p| p.data.len())
            + self.theta.len()
            + self.residuals.len();
        8 * u64_from_usize(floats) + 32
    }

    /// Rebuilds a live [`SolverState`] from the snapshot, re-applying the
    /// operator to recover `AX` (counted in `total_applies + 1`).
    pub fn restore(&self, op: &dyn Operator, total_applies: usize) -> SolverState {
        let ax = op.apply(&self.x);
        SolverState {
            x: self.x.clone(),
            ax,
            p: self.p.clone(),
            theta: self.theta.clone(),
            residuals: self.residuals.clone(),
            iterations: self.iteration,
            converged: false,
            done: false,
            applies: total_applies + 1,
            inv_diag: self.inv_diag.clone(),
        }
    }
}

/// Overhead accounting for one recovered solve. All-zero when the node
/// profile is `none()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Node crashes injected (capped at the profile's `max_crashes`).
    pub node_losses: u64,
    /// Checkpoints written to simulated NVM.
    pub checkpoints: u64,
    /// Total bytes of checkpoint state written.
    pub checkpoint_bytes: u64,
    /// Iterations of completed work discarded by crashes and redone.
    pub iterations_replayed: u64,
    /// Time spent writing checkpoints, ns.
    pub checkpoint_ns: Nanos,
    /// Time lost to node restarts (the profile's restart penalty), ns.
    pub restart_ns: Nanos,
}

impl RecoveryStats {
    /// Total overhead the fault plan added to the solve, ns.
    pub fn total_overhead_ns(&self) -> Nanos {
        self.checkpoint_ns + self.restart_ns
    }
}

/// A solve outcome together with its recovery overhead.
#[derive(Debug, Clone)]
pub struct RecoveredResult {
    /// The eigensolve outcome (same convergence contract as
    /// [`Lobpcg::solve`]).
    pub result: LobpcgResult,
    /// What surviving the fault plan cost.
    pub recovery: RecoveryStats,
}

/// Runs `solver` on `op` under the node-fault profile, drawing crash
/// events from `rng` (the caller passes the `STREAM_NODE` split of the
/// plan's root stream).
///
/// Before each iteration a crash is sampled with `crash_prob_per_iter`;
/// on a crash the solver loses its in-memory state, pays
/// `restart_penalty_ns`, and resumes from the latest checkpoint — or
/// from the seeded initial state when no checkpoint exists yet. Every
/// `checkpoint_every` iterations the block is written to simulated NVM
/// at [`CHECKPOINT_BYTES_PER_NS`]. A `none()` profile performs the exact
/// [`Lobpcg::solve`] instruction sequence and never touches `rng`.
pub fn solve_with_recovery(
    solver: &Lobpcg,
    op: &dyn Operator,
    profile: &NodeFaultProfile,
    rng: &mut FaultRng,
) -> RecoveredResult {
    if profile.is_none() {
        return RecoveredResult {
            result: solver.solve(op),
            recovery: RecoveryStats::default(),
        };
    }
    let mut st = solver.init(op);
    let mut stats = RecoveryStats::default();
    let mut checkpoint: Option<SolverCheckpoint> = None;
    let mut crashes: u32 = 0;
    while !st.done() && st.iterations() < solver.options.max_iters {
        if crashes < profile.max_crashes && rng.gen_bool(profile.crash_prob_per_iter) {
            crashes += 1;
            stats.node_losses += 1;
            stats.restart_ns += profile.restart_penalty_ns;
            match &checkpoint {
                Some(cp) => {
                    stats.iterations_replayed += u64_from_usize(st.iterations() - cp.iteration());
                    st = cp.restore(op, st.applies);
                }
                None => {
                    // No checkpoint yet: full restart from the seeded
                    // initial block; all completed work is redone.
                    stats.iterations_replayed += u64_from_usize(st.iterations());
                    let lost_applies = st.applies;
                    st = solver.init(op);
                    st.applies += lost_applies;
                }
            }
            continue;
        }
        solver.step(op, &mut st);
        let every = usize_from_u32(profile.checkpoint_every);
        if every > 0 && !st.done() && st.iterations() % every == 0 {
            let cp = SolverCheckpoint::capture(&st);
            stats.checkpoints += 1;
            stats.checkpoint_bytes += cp.bytes();
            stats.checkpoint_ns += cp.bytes() / CHECKPOINT_BYTES_PER_NS;
            checkpoint = Some(cp);
        }
    }
    RecoveredResult {
        result: st.into_result(),
        recovery: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lobpcg::LobpcgOptions;
    use crate::sparse::CsrMatrix;
    use nvmtypes::fault::{FaultPlan, STREAM_NODE};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push(((i - 1) as u32, -1.0));
            }
            row.push((i as u32, 2.0));
            if i + 1 < n {
                row.push(((i + 1) as u32, -1.0));
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(n, rows)
    }

    fn solver() -> Lobpcg {
        Lobpcg::new(LobpcgOptions {
            block_size: 3,
            max_iters: 500,
            tol: 1e-7,
            seed: 3,
            precondition: false,
        })
    }

    fn node_rng(seed: u64) -> FaultRng {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
        .rng()
        .split(STREAM_NODE)
    }

    #[test]
    fn none_profile_matches_plain_solve_exactly() {
        let a = laplacian(120);
        let plain = solver().solve(&a);
        let mut rng = node_rng(1);
        let before = rng.clone();
        let rec = solve_with_recovery(&solver(), &a, &NodeFaultProfile::none(), &mut rng);
        assert_eq!(rec.recovery, RecoveryStats::default());
        assert_eq!(rec.result.eigenvalues, plain.eigenvalues);
        assert_eq!(rec.result.iterations, plain.iterations);
        // A none() profile must not consume any randomness.
        assert_eq!(rng, before);
    }

    #[test]
    fn crashes_with_checkpoints_still_converge_to_same_eigenvalues() {
        let a = laplacian(120);
        let plain = solver().solve(&a);
        let profile = NodeFaultProfile {
            crash_prob_per_iter: 0.10,
            checkpoint_every: 5,
            restart_penalty_ns: 1_000_000,
            max_crashes: 8,
        };
        let mut rng = node_rng(2);
        let rec = solve_with_recovery(&solver(), &a, &profile, &mut rng);
        assert!(rec.result.converged, "residuals {:?}", rec.result.residuals);
        assert!(rec.recovery.node_losses > 0, "want at least one crash");
        assert!(rec.recovery.checkpoints > 0);
        assert!(rec.recovery.checkpoint_bytes > 0);
        assert_eq!(
            rec.recovery.restart_ns,
            rec.recovery.node_losses * 1_000_000
        );
        for (got, want) in rec.result.eigenvalues.iter().zip(&plain.eigenvalues) {
            assert!(
                (got - want).abs() < 1e-6,
                "eigenvalue drifted: {got} vs {want}"
            );
        }
        // Replayed work plus surviving iterations must cover the plain
        // solve's iteration count (crashes never shorten the math).
        assert!(
            rec.result.iterations + rec.recovery.iterations_replayed as usize >= plain.iterations
        );
    }

    #[test]
    fn crashes_without_checkpoints_restart_from_scratch() {
        let a = laplacian(90);
        let profile = NodeFaultProfile {
            crash_prob_per_iter: 0.05,
            checkpoint_every: 0, // checkpointing disabled
            restart_penalty_ns: 500,
            max_crashes: 4,
        };
        let mut rng = node_rng(3);
        let rec = solve_with_recovery(&solver(), &a, &profile, &mut rng);
        assert!(rec.result.converged);
        assert_eq!(rec.recovery.checkpoints, 0);
        assert!(rec.recovery.node_losses > 0);
        assert!(rec.recovery.iterations_replayed > 0);
    }

    #[test]
    fn recovery_is_deterministic_for_a_seed() {
        let a = laplacian(120);
        let profile = NodeFaultProfile {
            crash_prob_per_iter: 0.08,
            checkpoint_every: 6,
            restart_penalty_ns: 2_000,
            max_crashes: 8,
        };
        let mut r1 = node_rng(9);
        let mut r2 = node_rng(9);
        let a1 = solve_with_recovery(&solver(), &a, &profile, &mut r1);
        let a2 = solve_with_recovery(&solver(), &a, &profile, &mut r2);
        assert_eq!(a1.recovery, a2.recovery);
        assert_eq!(a1.result.eigenvalues, a2.result.eigenvalues);
        assert_eq!(a1.result.iterations, a2.result.iterations);
    }

    #[test]
    fn checkpoint_restore_replays_to_identical_iterate() {
        let a = laplacian(90);
        let s = solver();
        let mut st = s.init(&a);
        for _ in 0..6 {
            s.step(&a, &mut st);
        }
        let cp = SolverCheckpoint::capture(&st);
        assert_eq!(cp.iteration(), 6);
        assert!(cp.bytes() > 0);
        let restored = cp.restore(&a, st.applies);
        assert_eq!(restored.iterations(), 6);
        assert_eq!(restored.applies, st.applies + 1);
        // The restored X block is byte-identical to the snapshot source.
        assert_eq!(restored.x.data, st.x.data);
    }
}
