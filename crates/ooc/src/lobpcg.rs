//! The locally optimal block preconditioned conjugate gradient eigensolver.
//!
//! LOBPCG [Knyazev '01, the paper's [42]] finds the lowest `m` eigenpairs
//! of a symmetric operator by Rayleigh–Ritz over the subspace
//! `span[X, W, P]` — current iterates, preconditioned residuals, and the
//! previous search directions. Its dominant cost, and the whole point of
//! the paper's I/O study, is the repeated application of the operator to a
//! tall skinny block (§2.1: "the most time-consuming part is the repeated
//! multiplication of H and Ψ").

use crate::dense::{jacobi_eigh, mgs_orthonormalize, DMatrix};
use crate::sparse::CsrMatrix;
use crate::store::OocMatrix;
use ooctrace::TraceSink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A symmetric linear operator LOBPCG can iterate with.
pub trait Operator {
    /// Dimension.
    fn dim(&self) -> usize;
    /// `Y = A * X`.
    fn apply(&self, x: &DMatrix) -> DMatrix;
    /// Diagonal of the operator, if cheaply available (enables the Jacobi
    /// preconditioner).
    fn diagonal(&self) -> Option<Vec<f64>> {
        None
    }
}

impl Operator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &DMatrix) -> DMatrix {
        self.spmm(x)
    }

    fn diagonal(&self) -> Option<Vec<f64>> {
        Some((0..self.n).map(|i| self.get(i, i)).collect())
    }
}

/// An [`OocMatrix`] applied through a trace sink — every operator
/// application streams the full serialised Hamiltonian and records the
/// POSIX-level reads.
pub struct TracedOperator<'a> {
    matrix: &'a OocMatrix,
    sink: &'a dyn TraceSink,
    diag: Option<Vec<f64>>,
}

impl<'a> TracedOperator<'a> {
    /// Wraps an out-of-core matrix with a sink.
    pub fn new(matrix: &'a OocMatrix, sink: &'a dyn TraceSink) -> TracedOperator<'a> {
        TracedOperator {
            matrix,
            sink,
            diag: None,
        }
    }

    /// Supplies a precomputed diagonal (for preconditioning).
    pub fn with_diagonal(mut self, diag: Vec<f64>) -> TracedOperator<'a> {
        assert_eq!(diag.len(), self.matrix.n);
        self.diag = Some(diag);
        self
    }
}

impl Operator for TracedOperator<'_> {
    fn dim(&self) -> usize {
        self.matrix.n
    }

    fn apply(&self, x: &DMatrix) -> DMatrix {
        self.matrix.spmm_traced(x, self.sink)
    }

    fn diagonal(&self) -> Option<Vec<f64>> {
        self.diag.clone()
    }
}

/// Solver options.
#[derive(Debug, Clone, Copy)]
pub struct LobpcgOptions {
    /// Block size: number of eigenpairs sought (the paper's Ψ has "about
    /// 10-20 columns").
    pub block_size: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance `||A x - θ x|| / (|θ| + 1) < tol`.
    pub tol: f64,
    /// Seed for the random initial block.
    pub seed: u64,
    /// Use the Jacobi (diagonal) preconditioner when the operator exposes
    /// its diagonal.
    pub precondition: bool,
}

impl Default for LobpcgOptions {
    fn default() -> Self {
        LobpcgOptions {
            block_size: 8,
            max_iters: 200,
            tol: 1e-8,
            seed: 7,
            precondition: true,
        }
    }
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub struct LobpcgResult {
    /// Ritz values, ascending (`block_size` of them).
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors, column `k` pairing with `eigenvalues[k]`.
    pub eigenvectors: DMatrix,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether every pair met the tolerance.
    pub converged: bool,
    /// Final relative residual norms.
    pub residuals: Vec<f64>,
    /// Operator applications performed (each streams the full matrix when
    /// running out-of-core).
    pub operator_applies: usize,
}

/// LOBPCG driver. See [`Lobpcg::solve`].
///
/// ```
/// use ooc::lobpcg::{Lobpcg, LobpcgOptions};
/// use ooc::CsrMatrix;
///
/// // 1-D Laplacian: lowest eigenvalue is 2 - 2 cos(pi/(n+1)).
/// let n = 100;
/// let rows = (0..n)
///     .map(|i| {
///         let mut row = Vec::new();
///         if i > 0 { row.push(((i - 1) as u32, -1.0)); }
///         row.push((i as u32, 2.0));
///         if i + 1 < n { row.push(((i + 1) as u32, -1.0)); }
///         row
///     })
///     .collect();
/// let a = CsrMatrix::from_rows(n, rows);
/// let result = Lobpcg::new(LobpcgOptions {
///     block_size: 2, max_iters: 300, tol: 1e-7, seed: 1, precondition: false,
/// }).solve(&a);
/// assert!(result.converged);
/// let analytic = 2.0 - 2.0 * (std::f64::consts::PI / 101.0).cos();
/// assert!((result.eigenvalues[0] - analytic).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lobpcg {
    /// Options in force.
    pub options: LobpcgOptions,
}

/// Mid-solve state of the LOBPCG iteration.
///
/// [`Lobpcg::solve`] drives this through [`Lobpcg::step`] internally; it
/// is public so the crash/recovery harness in [`crate::checkpoint`] can
/// snapshot it between iterations and restart from a snapshot after a
/// simulated node loss.
#[derive(Debug, Clone)]
pub struct SolverState {
    pub(crate) x: DMatrix,
    pub(crate) ax: DMatrix,
    pub(crate) p: Option<DMatrix>,
    pub(crate) theta: Vec<f64>,
    pub(crate) residuals: Vec<f64>,
    pub(crate) iterations: usize,
    pub(crate) converged: bool,
    pub(crate) done: bool,
    pub(crate) applies: usize,
    pub(crate) inv_diag: Option<Vec<f64>>,
}

impl SolverState {
    /// Iterations performed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `true` once the iteration has converged or the subspace collapsed
    /// (no further [`Lobpcg::step`] will change the state).
    pub fn done(&self) -> bool {
        self.done
    }

    /// Consumes the state into a [`LobpcgResult`].
    pub fn into_result(self) -> LobpcgResult {
        LobpcgResult {
            eigenvalues: self.theta,
            eigenvectors: self.x,
            iterations: self.iterations,
            converged: self.converged,
            residuals: self.residuals,
            operator_applies: self.applies,
        }
    }
}

impl Lobpcg {
    /// New solver with options.
    pub fn new(options: LobpcgOptions) -> Lobpcg {
        Lobpcg { options }
    }

    /// Builds the seeded random orthonormal starting state (one operator
    /// application).
    ///
    /// # Panics
    /// Panics if `block_size` is zero or larger than a third of the
    /// operator dimension.
    pub fn init(&self, op: &dyn Operator) -> SolverState {
        let n = op.dim();
        let m = self.options.block_size;
        assert!(
            m >= 1 && 3 * m <= n,
            "block size {m} unusable for dimension {n}"
        );
        let mut rng = SmallRng::seed_from_u64(self.options.seed);
        let inv_diag: Option<Vec<f64>> = if self.options.precondition {
            op.diagonal().map(|d| {
                d.into_iter()
                    .map(|v| if v.abs() > 1e-12 { 1.0 / v } else { 1.0 })
                    .collect()
            })
        } else {
            None
        };

        // Random orthonormal start.
        let mut x = DMatrix::zeros(n, m);
        for v in x.data.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let (q, _) = mgs_orthonormalize(&x, 1e-12);
        x = q;
        let ax = op.apply(&x);
        SolverState {
            x,
            ax,
            p: None,
            theta: vec![0.0; m],
            residuals: vec![f64::INFINITY; m],
            iterations: 0,
            converged: false,
            done: false,
            applies: 1,
            inv_diag,
        }
    }

    /// Advances the iteration by one step (at most one operator
    /// application). No-op once [`SolverState::done`] is set.
    pub fn step(&self, op: &dyn Operator, st: &mut SolverState) {
        if st.done {
            return;
        }
        let n = op.dim();
        let m = self.options.block_size;
        st.iterations += 1;
        // Rayleigh–Ritz within span(X) to get current estimates.
        let xtax = symmetrize(&st.x.transpose_mul(&st.ax));
        let (vals, c) = jacobi_eigh(&xtax);
        st.x = st.x.matmul(&c);
        st.ax = st.ax.matmul(&c);
        st.theta.copy_from_slice(&vals[..m]);

        // Residuals R = AX - X diag(theta).
        let mut r = st.ax.clone();
        for k in 0..m {
            let xk = st.x.col(k).to_vec();
            let rk = r.col_mut(k);
            for i in 0..n {
                rk[i] -= st.theta[k] * xk[i];
            }
        }
        for k in 0..m {
            let norm: f64 = r.col(k).iter().map(|v| v * v).sum::<f64>().sqrt();
            st.residuals[k] = norm / (st.theta[k].abs() + 1.0);
        }
        if st.residuals.iter().all(|&v| v < self.options.tol) {
            st.converged = true;
            st.done = true;
            return;
        }

        // Preconditioned residuals.
        let mut w = r;
        if let Some(inv) = &st.inv_diag {
            for k in 0..m {
                let col = w.col_mut(k);
                for i in 0..n {
                    col[i] *= inv[i];
                }
            }
        }

        // Trial subspace S = [X W P], orthonormalised.
        let s = match &st.p {
            Some(p) => DMatrix::hcat(&[&st.x, &w, p]),
            None => DMatrix::hcat(&[&st.x, &w]),
        };
        let (q, _) = mgs_orthonormalize(&s, 1e-10);
        if q.ncols < m {
            // Subspace collapsed (fully converged cluster); stop.
            st.converged = st.residuals.iter().all(|&v| v < self.options.tol);
            st.done = true;
            return;
        }
        let aq = op.apply(&q);
        st.applies += 1;
        let t = symmetrize(&q.transpose_mul(&aq));
        let (_, c) = jacobi_eigh(&t);
        let cm = c.cols_range(0, m);
        let x_new = q.matmul(&cm);
        let ax_new = aq.matmul(&cm);

        // New conjugate directions: the part of X_new outside span(X).
        let overlap = st.x.transpose_mul(&x_new);
        let mut p_new = x_new.clone();
        let correction = st.x.matmul(&overlap);
        p_new.axpy(-1.0, &correction);
        let (p_orth, kept) = mgs_orthonormalize(&p_new, 1e-10);
        st.p = if kept.is_empty() { None } else { Some(p_orth) };

        st.x = x_new;
        st.ax = ax_new;
    }

    /// Runs the iteration on `op`.
    ///
    /// # Panics
    /// Panics if `block_size` is zero or larger than the operator dimension.
    pub fn solve(&self, op: &dyn Operator) -> LobpcgResult {
        self.solve_observed(op, &mut simobs::Tracer::off())
    }

    /// [`Lobpcg::solve`] with an observer attached: when `obs` is
    /// enabled, each iteration emits a [`simobs::Layer::Solver`] span on
    /// the solver's *logical* clock — one iteration is one microsecond
    /// tick (iteration `k` spans `[k*1000, (k+1)*1000)` ns), since the
    /// numerical phase has no simulated-time cost of its own; the I/O its
    /// operator applications cause is timed by the device layers. The
    /// tracer reads iteration state only, so observing cannot change the
    /// solve.
    pub fn solve_observed(&self, op: &dyn Operator, obs: &mut simobs::Tracer) -> LobpcgResult {
        let mut st = self.init(op);
        while !st.done && st.iterations < self.options.max_iters {
            let before_applies = st.applies;
            let tick = nvmtypes::u64_from_usize(st.iterations);
            self.step(op, &mut st);
            if obs.enabled() {
                obs.span(
                    simobs::Layer::Solver,
                    "lobpcg_iter",
                    tick * 1_000,
                    (tick + 1) * 1_000,
                    [
                        ("iteration", nvmtypes::u64_from_usize(st.iterations)),
                        (
                            "applies",
                            nvmtypes::u64_from_usize(st.applies - before_applies),
                        ),
                    ],
                );
            }
        }
        if obs.enabled() {
            obs.count("solver.iterations", nvmtypes::u64_from_usize(st.iterations));
            obs.count("solver.applies", nvmtypes::u64_from_usize(st.applies));
            obs.count("solver.converged", u64::from(st.converged));
            // Logical-clock total for the profiler's sim-domain rollup:
            // one iteration is one microsecond tick.
            obs.count(
                "solver.sim_ns",
                nvmtypes::u64_from_usize(st.iterations).saturating_mul(1_000),
            );
        }
        st.into_result()
    }
}

/// `(A + A^T) / 2` — guards the Ritz matrices against accumulated
/// asymmetry.
fn symmetrize(a: &DMatrix) -> DMatrix {
    let mut s = a.clone();
    for i in 0..a.nrows {
        for j in 0..a.ncols {
            s[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push(((i - 1) as u32, -1.0));
            }
            row.push((i as u32, 2.0));
            if i + 1 < n {
                row.push(((i + 1) as u32, -1.0));
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(n, rows)
    }

    #[test]
    fn laplacian_lowest_eigenvalues() {
        let n = 200;
        let a = laplacian(n);
        let solver = Lobpcg::new(LobpcgOptions {
            block_size: 4,
            max_iters: 400,
            tol: 1e-7,
            seed: 3,
            precondition: false,
        });
        let res = solver.solve(&a);
        assert!(res.converged, "residuals {:?}", res.residuals);
        for k in 0..4 {
            let analytic =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!(
                (res.eigenvalues[k] - analytic).abs() < 1e-6,
                "λ_{k}: {} vs {analytic}",
                res.eigenvalues[k]
            );
        }
    }

    #[test]
    fn diagonal_matrix_is_exact() {
        let n = 64;
        let rows: Vec<Vec<(u32, f64)>> = (0..n).map(|i| vec![(i as u32, (i + 1) as f64)]).collect();
        let a = CsrMatrix::from_rows(n, rows);
        let res = Lobpcg::new(LobpcgOptions {
            block_size: 3,
            max_iters: 200,
            tol: 1e-9,
            ..Default::default()
        })
        .solve(&a);
        assert!(res.converged);
        for k in 0..3 {
            assert!((res.eigenvalues[k] - (k + 1) as f64).abs() < 1e-7);
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = laplacian(100);
        let res = Lobpcg::new(LobpcgOptions {
            block_size: 3,
            max_iters: 300,
            tol: 1e-8,
            precondition: false,
            ..Default::default()
        })
        .solve(&a);
        assert!(res.converged);
        let av = a.spmm(&res.eigenvectors);
        for k in 0..3 {
            for i in 0..100 {
                let want = res.eigenvalues[k] * res.eigenvectors[(i, k)];
                assert!((av[(i, k)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn preconditioning_reduces_iterations_on_ill_conditioned_diag() {
        // Strongly graded diagonal: Jacobi preconditioning should help.
        let n = 150;
        let rows: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| {
                let mut row = Vec::new();
                if i > 0 {
                    row.push(((i - 1) as u32, -0.5));
                }
                row.push((i as u32, 1.0 + i as f64));
                if i + 1 < n {
                    row.push(((i + 1) as u32, -0.5));
                }
                row
            })
            .collect();
        let a = CsrMatrix::from_rows(n, rows);
        let base = LobpcgOptions {
            block_size: 3,
            max_iters: 500,
            tol: 1e-7,
            seed: 11,
            precondition: false,
        };
        let plain = Lobpcg::new(base).solve(&a);
        let pre = Lobpcg::new(LobpcgOptions {
            precondition: true,
            ..base
        })
        .solve(&a);
        assert!(pre.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "precond {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    #[should_panic(expected = "unusable")]
    fn rejects_oversized_block() {
        let a = laplacian(8);
        Lobpcg::new(LobpcgOptions {
            block_size: 4,
            ..Default::default()
        })
        .solve(&a);
    }
}
