//! Matrix Market (`.mtx`) interchange for sparse operators.
//!
//! The MFDn Hamiltonians the paper computes with are distributed in
//! standard sparse interchange formats; Matrix Market coordinate format is
//! the lingua franca. This module writes and reads the `coordinate real
//! general/symmetric` dialects so externally produced operators can drive
//! the out-of-core pipeline.

use crate::sparse::CsrMatrix;
use nvmtypes::SimError;

/// Shorthand: a [`SimError::Parse`] tagged as Matrix Market input.
fn perr(line: usize, reason: impl Into<String>) -> SimError {
    SimError::parse("matrix market", line, reason)
}

/// Serialises a square CSR matrix as `matrix coordinate real general`
/// (1-based indices, one entry per line).
pub fn to_matrix_market(m: &CsrMatrix) -> String {
    let mut out = String::with_capacity(64 + m.nnz() * 24);
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    out.push_str("% written by oocnvm\n");
    out.push_str(&format!("{} {} {}\n", m.n, m.n, m.nnz()));
    for i in 0..m.n {
        let (lo, hi) = (m.row_ptr[i] as usize, m.row_ptr[i + 1] as usize);
        for k in lo..hi {
            out.push_str(&format!(
                "{} {} {:e}\n",
                i + 1,
                m.col_idx[k] + 1,
                m.values[k]
            ));
        }
    }
    out
}

/// Parses Matrix Market `coordinate real` input (general or symmetric) into
/// CSR. Symmetric inputs are expanded to full storage. Pattern/complex
/// fields and non-square shapes are rejected.
pub fn from_matrix_market(text: &str) -> Result<CsrMatrix, SimError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| perr(0, "empty input"))?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].starts_with("%%MatrixMarket") {
        return Err(perr(1, "missing %%MatrixMarket header"));
    }
    if h[1] != "matrix" || h[2] != "coordinate" {
        return Err(perr(
            1,
            format!("unsupported object/format: {} {}", h[1], h[2]),
        ));
    }
    if h[3] != "real" && h[3] != "integer" {
        return Err(perr(1, format!("unsupported field: {}", h[3])));
    }
    let symmetric = match h[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(perr(1, format!("unsupported symmetry: {other}"))),
    };

    let mut dims: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    for (lineno, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match dims {
            None => {
                if fields.len() != 3 {
                    return Err(perr(lineno + 1, "bad size line"));
                }
                let rows: usize = fields[0]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                let cols: usize = fields[1]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                let nnz: usize = fields[2]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                if rows != cols {
                    return Err(perr(
                        lineno + 1,
                        format!("matrix must be square, got {rows}x{cols}"),
                    ));
                }
                dims = Some((rows, cols, nnz));
                entries.reserve(nnz);
            }
            Some((rows, _, _)) => {
                if fields.len() < 3 {
                    return Err(perr(lineno + 1, "bad entry"));
                }
                let i: usize = fields[0]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                let j: usize = fields[1]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                let v: f64 = fields[2]
                    .parse()
                    .map_err(|e| perr(lineno + 1, format!("{e}")))?;
                if i == 0 || j == 0 || i > rows || j > rows {
                    return Err(perr(lineno + 1, "index out of range"));
                }
                entries.push(((i - 1) as u32, (j - 1) as u32, v));
                if symmetric && i != j {
                    entries.push(((j - 1) as u32, (i - 1) as u32, v));
                }
            }
        }
    }
    let (n, _, declared) = dims.ok_or_else(|| perr(0, "missing size line"))?;
    let base = if symmetric {
        // Declared counts the stored triangle only.
        entries.iter().filter(|&&(i, j, _)| i <= j).count()
    } else {
        entries.len()
    };
    if base != declared {
        return Err(perr(
            0,
            format!("entry count {base} != declared {declared}"),
        ));
    }
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (i, j, v) in entries {
        rows[i as usize].push((j, v));
    }
    for row in &mut rows {
        row.sort_by_key(|&(c, _)| c);
        // Duplicate entries sum, as the format specifies.
        let mut dedup: Vec<(u32, f64)> = Vec::with_capacity(row.len());
        for &(c, v) in row.iter() {
            match dedup.last_mut() {
                Some(last) if last.0 == c => last.1 += v,
                _ => dedup.push((c, v)),
            }
        }
        *row = dedup;
    }
    Ok(CsrMatrix::from_rows(n, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::HamiltonianSpec;

    #[test]
    fn round_trip_preserves_the_matrix() {
        let h = HamiltonianSpec::tiny(80).generate();
        let text = to_matrix_market(&h);
        let back = from_matrix_market(&text).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn symmetric_input_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 2.0\n";
        let m = from_matrix_market(text).unwrap();
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn duplicates_sum() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 3\n1 1 1.0\n1 1 2.5\n2 2 1.0\n";
        let m = from_matrix_market(text).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(from_matrix_market("").is_err());
        assert!(from_matrix_market("%%MatrixMarket matrix array real general\n1 1\n").is_err());
        assert!(
            from_matrix_market("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
                .is_err()
        );
        assert!(
            from_matrix_market("%%MatrixMarket matrix coordinate real general\n2 3 0\n").is_err()
        );
        assert!(from_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        )
        .is_err());
        assert!(from_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        .is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n\
                    2 2 1\n\n% another\n2 1 4.5\n";
        let m = from_matrix_market(text).unwrap();
        assert_eq!(m.get(1, 0), 4.5);
    }
}
