//! The out-of-core matrix store.
//!
//! The paper's pipeline (§2.1): the Hamiltonian is preprocessed once and
//! stored in a capacity medium, then streamed back panel-by-panel on every
//! eigensolver iteration. [`OocMatrix`] serialises a [`CsrMatrix`] into
//! fixed-row-count panels on a byte-addressed backing ([`OocStore`]), and
//! every panel read goes through a [`TraceSink`] — producing exactly the
//! POSIX-level trace the paper captures under its application (§4.2).

use crate::dense::DMatrix;
use crate::sparse::CsrMatrix;
use nvmtypes::IoOp;
use ooctrace::TraceSink;
use std::sync::Arc;

/// Byte-addressed backing store standing in for the compute node's file;
/// panel bytes live in memory (the timing of the real device is supplied
/// later by replaying the captured trace through the SSD simulator).
#[derive(Debug, Clone)]
pub struct OocStore {
    data: Arc<Vec<u8>>,
}

impl OocStore {
    /// Wraps serialised bytes.
    pub fn new(data: Vec<u8>) -> OocStore {
        OocStore {
            data: Arc::new(data),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads `[offset, offset+len)`, recording the access.
    pub fn read(&self, offset: u64, len: u64, file: u32, sink: &dyn TraceSink) -> &[u8] {
        sink.record(IoOp::Read, file, offset, len);
        &self.data[offset as usize..(offset + len) as usize]
    }
}

/// Metadata of one serialised row panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelMeta {
    /// First row of the panel.
    pub row_start: usize,
    /// One past the last row.
    pub row_end: usize,
    /// Byte offset within the store.
    pub offset: u64,
    /// Serialised length in bytes.
    pub len: u64,
}

/// A deserialised panel: rows `[row_start, row_end)` of the operator in
/// local CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrPanel {
    /// First global row.
    pub row_start: usize,
    /// Local row pointers (`len == rows + 1`).
    pub row_ptr: Vec<u64>,
    /// Column indices (global).
    pub col_idx: Vec<u32>,
    /// Values.
    pub values: Vec<f64>,
}

impl CsrPanel {
    /// Rows in the panel.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// `Y[row_start..row_end, :] += panel * X`.
    pub fn spmm_into(&self, x: &DMatrix, y: &mut DMatrix) {
        for local in 0..self.rows() {
            let i = self.row_start + local;
            let (lo, hi) = (
                self.row_ptr[local] as usize,
                self.row_ptr[local + 1] as usize,
            );
            for k in lo..hi {
                let j = self.col_idx[k] as usize;
                let v = self.values[k];
                for c in 0..x.ncols {
                    y.col_mut(c)[i] += v * x.col(c)[j];
                }
            }
        }
    }
}

/// An operator stored out-of-core as serialised row panels.
#[derive(Debug, Clone)]
pub struct OocMatrix {
    /// Operator dimension.
    pub n: usize,
    /// Panel directory.
    pub panels: Vec<PanelMeta>,
    store: OocStore,
    /// Trace file id panel reads are recorded under.
    pub file_id: u32,
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads `N` little-endian bytes at `at`, zero-padding a short buffer.
/// The store only decodes buffers it serialised itself, so a short read
/// cannot occur on a healthy store; padding (instead of panicking) keeps
/// the decoder total under the `no_panic` invariant.
fn read_le_bytes<const N: usize>(buf: &[u8], at: usize) -> [u8; N] {
    let mut raw = [0u8; N];
    let end = buf.len().min(at.saturating_add(N));
    if at < end {
        raw[..end - at].copy_from_slice(&buf[at..end]);
    }
    raw
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(read_le_bytes(buf, at))
}

/// Serialises `matrix` into the panel byte stream and its directory —
/// the single encoding shared by every backing (in-memory [`OocStore`]
/// and the journaled UFS store), so switching backings never changes a
/// byte of what is stored or traced.
pub(crate) fn serialize_panels(
    matrix: &CsrMatrix,
    rows_per_panel: usize,
) -> (Vec<u8>, Vec<PanelMeta>) {
    assert!(rows_per_panel >= 1);
    let mut data: Vec<u8> = Vec::new();
    let mut panels = Vec::new();
    let mut r0 = 0;
    while r0 < matrix.n {
        let r1 = (r0 + rows_per_panel).min(matrix.n);
        let offset = data.len() as u64;
        let (lo, hi) = (matrix.row_ptr[r0] as usize, matrix.row_ptr[r1] as usize);
        let nrows = r1 - r0;
        push_u64(&mut data, nrows as u64);
        push_u64(&mut data, (hi - lo) as u64);
        // Local row pointers.
        for r in r0..=r1 {
            push_u64(&mut data, matrix.row_ptr[r] - matrix.row_ptr[r0]);
        }
        for &c in &matrix.col_idx[lo..hi] {
            data.extend_from_slice(&c.to_le_bytes());
        }
        // Pad to 8-byte alignment before the f64 values.
        while data.len() % 8 != 0 {
            data.push(0);
        }
        for &v in &matrix.values[lo..hi] {
            data.extend_from_slice(&v.to_le_bytes());
        }
        let len = data.len() as u64 - offset;
        panels.push(PanelMeta {
            row_start: r0,
            row_end: r1,
            offset,
            len,
        });
        r0 = r1;
    }
    (data, panels)
}

/// Deserialises one panel's bytes; inverse of [`serialize_panels`] for a
/// single panel. Shared by every backing.
pub(crate) fn decode_panel(buf: &[u8], row_start: usize) -> CsrPanel {
    let nrows = read_u64(buf, 0) as usize;
    let nnz = read_u64(buf, 8) as usize;
    let mut at = 16;
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(read_u64(buf, at));
        at += 8;
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(u32::from_le_bytes(read_le_bytes(buf, at)));
        at += 4;
    }
    at = at.div_ceil(8) * 8;
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(f64::from_le_bytes(read_le_bytes(buf, at)));
        at += 8;
    }
    CsrPanel {
        row_start,
        row_ptr,
        col_idx,
        values,
    }
}

impl OocMatrix {
    /// Serialises `matrix` into panels of `rows_per_panel` rows. If `sink`
    /// is provided, the preprocessing writes are recorded (the paper's
    /// pre-load phase).
    pub fn build(
        matrix: &CsrMatrix,
        rows_per_panel: usize,
        file_id: u32,
        sink: Option<&dyn TraceSink>,
    ) -> OocMatrix {
        let (data, panels) = serialize_panels(matrix, rows_per_panel);
        if let Some(s) = sink {
            for p in &panels {
                s.record(IoOp::Write, file_id, p.offset, p.len);
            }
        }
        OocMatrix {
            n: matrix.n,
            panels,
            store: OocStore::new(data),
            file_id,
        }
    }

    /// Total serialised size in bytes.
    pub fn bytes(&self) -> u64 {
        self.store.len()
    }

    /// Reads and deserialises panel `idx`, recording the access.
    pub fn read_panel(&self, idx: usize, sink: &dyn TraceSink) -> CsrPanel {
        let meta = self.panels[idx];
        let buf = self.store.read(meta.offset, meta.len, self.file_id, sink);
        decode_panel(buf, meta.row_start)
    }

    /// Out-of-core SpMM: streams every panel through `sink` and multiplies.
    /// The panel sweep is sequential in storage order — the large
    /// sequential read pattern of Figure 6's POSIX panel.
    pub fn spmm_traced(&self, x: &DMatrix, sink: &dyn TraceSink) -> DMatrix {
        assert_eq!(x.nrows, self.n, "operand height mismatch");
        let mut y = DMatrix::zeros(self.n, x.ncols);
        for idx in 0..self.panels.len() {
            let panel = self.read_panel(idx, sink);
            panel.spmm_into(x, &mut y);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::HamiltonianSpec;
    use ooctrace::TraceCapture;

    #[test]
    fn panel_round_trip() {
        let h = HamiltonianSpec::tiny(100).generate();
        let ooc = OocMatrix::build(&h, 17, 0, None);
        let cap = TraceCapture::new();
        let mut nnz = 0;
        for idx in 0..ooc.panels.len() {
            let p = ooc.read_panel(idx, &cap);
            nnz += p.values.len();
            // Rows match the directory.
            assert_eq!(
                p.rows(),
                ooc.panels[idx].row_end - ooc.panels[idx].row_start
            );
        }
        assert_eq!(nnz, h.nnz());
    }

    #[test]
    fn traced_spmm_matches_in_memory() {
        let h = HamiltonianSpec::tiny(120).generate();
        let ooc = OocMatrix::build(&h, 13, 0, None);
        let mut x = DMatrix::zeros(120, 3);
        for (i, v) in x.data.iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        let cap = TraceCapture::new();
        let y = ooc.spmm_traced(&x, &cap);
        let want = h.spmm(&x);
        for i in 0..120 {
            for j in 0..3 {
                assert!((y[(i, j)] - want[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sweep_trace_is_sequential_and_read_only() {
        let h = HamiltonianSpec::tiny(200).generate();
        let ooc = OocMatrix::build(&h, 20, 7, None);
        let cap = TraceCapture::new();
        let x = DMatrix::zeros(200, 2);
        ooc.spmm_traced(&x, &cap);
        let trace = cap.into_trace();
        assert_eq!(trace.len(), ooc.panels.len());
        assert!((trace.read_fraction() - 1.0).abs() < 1e-12);
        // Panel reads are back-to-back in device order.
        for w in trace.records.windows(2) {
            assert_eq!(w[1].offset, w[0].offset + w[0].len);
            assert_eq!(w[0].file, 7);
        }
        assert_eq!(trace.total_bytes(), ooc.bytes());
    }

    #[test]
    fn build_can_trace_the_preload_writes() {
        let h = HamiltonianSpec::tiny(64).generate();
        let cap = TraceCapture::new();
        let ooc = OocMatrix::build(&h, 16, 3, Some(&cap));
        let trace = cap.into_trace();
        assert_eq!(trace.len(), ooc.panels.len());
        assert_eq!(trace.read_fraction(), 0.0);
        assert_eq!(trace.total_bytes(), ooc.bytes());
    }

    #[test]
    fn panel_directory_covers_all_rows_exactly_once() {
        let h = HamiltonianSpec::tiny(101).generate();
        let ooc = OocMatrix::build(&h, 25, 0, None);
        let mut next = 0;
        for p in &ooc.panels {
            assert_eq!(p.row_start, next);
            next = p.row_end;
        }
        assert_eq!(next, 101);
    }
}
