//! The journaled-UFS-backed panel store.
//!
//! [`UfsMatrix`] is the out-of-core Hamiltonian held in a *real*
//! filesystem: panel bytes live in a file of a mounted [`ufs::Ufs`] over
//! an in-memory block device, written through the journal's commit
//! protocol during preprocessing and read back through the filesystem on
//! every panel sweep. The serialised bytes and the recorded POSIX trace
//! are byte-identical to the in-memory [`OocMatrix`](crate::OocMatrix)
//! backing — the store switch is observable only through the device
//! underneath, which now also carries journal commits and survives
//! simulated power loss (see `ufs::harness`).

use crate::dense::DMatrix;
use crate::sparse::CsrMatrix;
use crate::store::{decode_panel, serialize_panels, CsrPanel, PanelMeta};
use nvmtypes::convert::usize_from;
use nvmtypes::{IoOp, SimError};
use ooctrace::TraceSink;
use parking_lot::Mutex;
use ssd::SimBlockDevice;
use ufs::{FileId, Ufs, UfsParams};

/// Name of the panel file inside the filesystem.
const PANEL_FILE: &str = "hamiltonian";

/// An operator stored out-of-core in a journaled UFS file.
///
/// The panel directory is the same as [`crate::OocMatrix`]'s; only the
/// backing differs. Reads lock the mounted filesystem (panel sweeps are
/// sequential, so the lock is uncontended in practice) and go through
/// `Ufs::read`, i.e. through real durable extents.
#[derive(Debug)]
pub struct UfsMatrix {
    /// Operator dimension.
    pub n: usize,
    /// Panel directory.
    pub panels: Vec<PanelMeta>,
    /// Trace file id panel reads are recorded under.
    pub file_id: u32,
    fs: Mutex<Ufs<SimBlockDevice>>,
    file: FileId,
    bytes: u64,
}

impl UfsMatrix {
    /// Serialises `matrix` into panels of `rows_per_panel` rows and makes
    /// them durable in a freshly formatted filesystem (one fsync — the
    /// preprocessing phase commits once). If `sink` is provided, the
    /// preprocessing writes are recorded exactly as the in-memory
    /// backing records them.
    pub fn build(
        matrix: &CsrMatrix,
        rows_per_panel: usize,
        file_id: u32,
        sink: Option<&dyn TraceSink>,
    ) -> Result<UfsMatrix, SimError> {
        let (data, panels) = serialize_panels(matrix, rows_per_panel);
        if let Some(s) = sink {
            for p in &panels {
                s.record(IoOp::Write, file_id, p.offset, p.len);
            }
        }
        let params = UfsParams {
            max_files: 8,
            journal_sectors: 16,
        };
        // Device sized for the panel bytes with copy-on-write headroom.
        let data_sectors = (data.len() as u64).div_ceil(ssd::SECTOR_BYTES) + 1;
        let meta = 1 + u64::from(params.max_files) + u64::from(params.journal_sectors);
        let total = meta + data_sectors * 2 + 8;
        let mut fs = Ufs::format(SimBlockDevice::new(total), params)?;
        let file = fs.create(PANEL_FILE)?;
        fs.write(file, 0, &data)?;
        fs.fsync(file)?;
        Ok(UfsMatrix {
            n: matrix.n,
            panels,
            file_id,
            fs: Mutex::new(fs),
            file,
            bytes: data.len() as u64,
        })
    }

    /// Total serialised size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reads and deserialises panel `idx` through the filesystem,
    /// recording the access.
    pub fn read_panel(&self, idx: usize, sink: &dyn TraceSink) -> Result<CsrPanel, SimError> {
        let meta = self.panels[idx];
        sink.record(IoOp::Read, self.file_id, meta.offset, meta.len);
        let mut buf = vec![0u8; usize_from(meta.len)];
        self.fs.lock().read(self.file, meta.offset, &mut buf)?;
        Ok(decode_panel(&buf, meta.row_start))
    }

    /// Out-of-core SpMM through the filesystem: streams every panel in
    /// storage order, like [`crate::OocMatrix::spmm_traced`].
    pub fn spmm_traced(&self, x: &DMatrix, sink: &dyn TraceSink) -> Result<DMatrix, SimError> {
        assert_eq!(x.nrows, self.n, "operand height mismatch");
        let mut y = DMatrix::zeros(self.n, x.ncols);
        for idx in 0..self.panels.len() {
            let panel = self.read_panel(idx, sink)?;
            panel.spmm_into(x, &mut y);
        }
        Ok(y)
    }

    /// Tears the store down to its raw device image (consuming it) — the
    /// hook crash tooling uses to remount and verify durability.
    pub fn into_media(self) -> Vec<u8> {
        self.fs.into_inner().into_device().into_media()
    }
}

/// A [`UfsMatrix`] applied through a trace sink, for driving LOBPCG:
/// the journaled twin of [`crate::lobpcg::TracedOperator`]. A filesystem
/// read error inside [`crate::lobpcg::Operator::apply`] (impossible on a
/// healthy store — the file was written by `build`) yields a zero block
/// rather than a panic, which a caller observes as a non-converging
/// solve.
pub struct UfsOperator<'a> {
    matrix: &'a UfsMatrix,
    sink: &'a dyn TraceSink,
    diag: Option<Vec<f64>>,
}

impl<'a> UfsOperator<'a> {
    /// Wraps a UFS-backed matrix with a sink.
    pub fn new(matrix: &'a UfsMatrix, sink: &'a dyn TraceSink) -> UfsOperator<'a> {
        UfsOperator {
            matrix,
            sink,
            diag: None,
        }
    }

    /// Supplies a precomputed diagonal (for preconditioning).
    pub fn with_diagonal(mut self, diag: Vec<f64>) -> UfsOperator<'a> {
        assert_eq!(diag.len(), self.matrix.n);
        self.diag = Some(diag);
        self
    }
}

impl crate::lobpcg::Operator for UfsOperator<'_> {
    fn dim(&self) -> usize {
        self.matrix.n
    }

    fn apply(&self, x: &DMatrix) -> DMatrix {
        self.matrix
            .spmm_traced(x, self.sink)
            .unwrap_or_else(|_| DMatrix::zeros(self.matrix.n, x.ncols))
    }

    fn diagonal(&self) -> Option<Vec<f64>> {
        self.diag.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::HamiltonianSpec;
    use crate::lobpcg::{Lobpcg, LobpcgOptions, TracedOperator};
    use crate::store::OocMatrix;
    use ooctrace::TraceCapture;
    use ufs::Ufs;

    #[test]
    fn panels_round_trip_through_the_filesystem() {
        let h = HamiltonianSpec::tiny(100).generate();
        let mem = OocMatrix::build(&h, 17, 0, None);
        let fsm = UfsMatrix::build(&h, 17, 0, None).expect("builds");
        assert_eq!(mem.panels, fsm.panels);
        assert_eq!(mem.bytes(), fsm.bytes());
        let cap = TraceCapture::new();
        for idx in 0..fsm.panels.len() {
            let a = mem.read_panel(idx, &cap);
            let b = fsm.read_panel(idx, &cap).expect("reads");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_is_byte_identical_to_the_memory_backing() {
        let h = HamiltonianSpec::tiny(120).generate();
        let (cap_mem, cap_fs) = (TraceCapture::new(), TraceCapture::new());
        let mem = OocMatrix::build(&h, 13, 4, Some(&cap_mem));
        let fsm = UfsMatrix::build(&h, 13, 4, Some(&cap_fs)).expect("builds");
        let x = DMatrix::zeros(120, 2);
        mem.spmm_traced(&x, &cap_mem);
        fsm.spmm_traced(&x, &cap_fs).expect("sweeps");
        assert_eq!(cap_mem.into_trace(), cap_fs.into_trace());
    }

    #[test]
    fn lobpcg_over_the_filesystem_matches_the_memory_backing() {
        let h = HamiltonianSpec::tiny(80).generate();
        let mem = OocMatrix::build(&h, 16, 0, None);
        let fsm = UfsMatrix::build(&h, 16, 0, None).expect("builds");
        let (cap_mem, cap_fs) = (TraceCapture::new(), TraceCapture::new());
        let opts = LobpcgOptions {
            block_size: 3,
            max_iters: 60,
            ..LobpcgOptions::default()
        };
        let a = Lobpcg::new(opts).solve(&TracedOperator::new(&mem, &cap_mem));
        let b = Lobpcg::new(opts).solve(&UfsOperator::new(&fsm, &cap_fs));
        // Bit-identical: both paths feed the solver the same panel bytes.
        assert_eq!(a.eigenvalues, b.eigenvalues);
        assert_eq!(cap_mem.into_trace(), cap_fs.into_trace());
    }

    #[test]
    fn store_survives_remount() {
        let h = HamiltonianSpec::tiny(64).generate();
        let fsm = UfsMatrix::build(&h, 16, 0, None).expect("builds");
        let bytes = fsm.bytes();
        let media = fsm.into_media();
        let (fs, report) =
            Ufs::mount(SimBlockDevice::from_media(media).expect("aligned")).expect("mounts");
        assert!(report.is_clean());
        let id = fs.open(PANEL_FILE).expect("file exists");
        assert_eq!(fs.size(id).expect("sized"), bytes);
    }
}
