//! Tunable description of one local file system's request mutation.

use nvmtypes::SimError;
use serde::Serialize;

/// How a local file system reshapes application I/O on its way to the
/// device. Every effect the paper calls out in §3.2 has a knob here:
///
/// * *"all of the examined file systems divide the storage space into
///   small units called blocks"* — [`FsParams::block_size`];
/// * *"artificial limits are imposed on how large the size of the
///   coalesced request can be"* — [`FsParams::max_request`] (the knob the
///   paper turns to make ext4-L);
/// * allocator quality — [`FsParams::mean_extent`] (how long physically
///   contiguous runs are) and [`FsParams::placement_entropy`] (how far a
///   broken extent jumps);
/// * *"metadata and/or journalling accesses ... in the midst of the rest
///   of the data accesses"* — [`FsParams::metadata_read_interval`] and
///   [`FsParams::journal_commit_interval`], both synchronous;
/// * how well the stack keeps the device's queue fed —
///   [`FsParams::queue_depth`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FsParams {
    /// Display name.
    pub name: &'static str,
    /// File-system block size in bytes (granularity of allocation and of
    /// request splitting before coalescing).
    pub block_size: u32,
    /// Maximum bytes the block layer coalesces into one device request.
    pub max_request: u32,
    /// Mean length of a physically contiguous extent, bytes. Longer
    /// extents mean the allocator preserves application sequentiality.
    pub mean_extent: u64,
    /// Fraction of new extents placed far away (allocator groups/AGs,
    /// COW relocation) rather than immediately after the previous extent.
    pub placement_entropy: f64,
    /// Inject one small synchronous metadata read every this many data
    /// bytes (block-mapped file systems chasing indirect blocks do this
    /// constantly; extent trees rarely). `None` disables.
    pub metadata_read_interval: Option<u64>,
    /// Inject one synchronous journal commit write every this many
    /// *written* data bytes. `None` for non-journaling file systems.
    pub journal_commit_interval: Option<u64>,
    /// Full data journaling (`data=journal`): every written byte is first
    /// written to the journal region, doubling the write volume — the
    /// safest and slowest of ext3/4's journal modes. `false` models the
    /// default ordered mode, which journals metadata only.
    pub journal_data: bool,
    /// Requests the stack keeps outstanding at the device.
    pub queue_depth: u32,
    /// Seed component so different file systems fragment differently.
    pub seed: u64,
}

impl FsParams {
    /// Sanity-checks the parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        let field = |f: &str| format!("{}.{f}", self.name);
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(SimError::invalid_config(
                field("block_size"),
                "must be a power of two",
            ));
        }
        if self.max_request < self.block_size {
            return Err(SimError::invalid_config(
                field("max_request"),
                "below block_size",
            ));
        }
        if self.mean_extent < u64::from(self.block_size) {
            return Err(SimError::invalid_config(
                field("mean_extent"),
                "below block_size",
            ));
        }
        if !(0.0..=1.0).contains(&self.placement_entropy) {
            return Err(SimError::invalid_config(
                field("placement_entropy"),
                "out of [0,1]",
            ));
        }
        if self.queue_depth == 0 {
            return Err(SimError::invalid_config(
                field("queue_depth"),
                "must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FsParams {
        FsParams {
            name: "test",
            block_size: 4096,
            max_request: 131_072,
            mean_extent: 262_144,
            placement_entropy: 0.3,
            metadata_read_interval: Some(1 << 20),
            journal_commit_interval: None,
            journal_data: false,
            queue_depth: 8,
            seed: 1,
        }
    }

    #[test]
    fn valid_params_pass() {
        base().validate().unwrap();
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let mut p = base();
        p.block_size = 5000;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_tiny_max_request() {
        let mut p = base();
        p.max_request = 512;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_bad_entropy() {
        let mut p = base();
        p.placement_entropy = 1.5;
        assert!(p.validate().is_err());
    }
}
