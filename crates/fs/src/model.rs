//! The generic local-file-system mutation engine and the UFS pass-through.

use crate::params::FsParams;
use crate::FileSystemModel;
use nvmtypes::convert::{approx_f64, trunc_u64};
use nvmtypes::{HostRequest, IoOp};
use ooctrace::{BlockTrace, PosixTrace, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Start of the metadata region (inode tables, indirect blocks, trees).
const META_BASE: u64 = 0;
/// Size of the metadata region.
const META_SPAN: u64 = 64 << 20;
/// Start of the journal region.
const JOURNAL_BASE: u64 = 64 << 20;
/// Size of the journal region (wraps).
const JOURNAL_SPAN: u64 = 128 << 20;
/// Start of the data region.
const DATA_BASE: u64 = 256 << 20;
/// Size of the data region extents are placed in.
const DATA_SPAN: u64 = 255 << 30;

/// One physically contiguous piece of a file.
#[derive(Debug, Clone, Copy)]
struct Extent {
    file_off: u64,
    phys: u64,
    len: u64,
}

/// Lazily built physical layout of one file.
#[derive(Debug, Default)]
struct FileLayout {
    extents: Vec<Extent>,
    mapped_until: u64,
}

/// A local file system described by [`FsParams`].
///
/// The model keeps a deterministic per-file extent map: the first time a
/// byte of the file is touched, extents are allocated up to it — extent
/// lengths scatter around [`FsParams::mean_extent`], and each new extent
/// either continues at the allocator cursor or, with probability
/// [`FsParams::placement_entropy`], jumps to a new location (allocation
/// groups, COW relocation). Re-reading the same file range later in the
/// trace reuses the same physical layout, exactly like a real file system.
#[derive(Debug, Clone)]
pub struct FsModel {
    params: FsParams,
}

impl FsModel {
    /// Builds the model, validating the parameters (see
    /// [`FsParams::validate`]).
    pub fn new(params: FsParams) -> Result<FsModel, nvmtypes::SimError> {
        params.validate()?;
        Ok(FsModel { params })
    }

    /// The parameters in force.
    pub fn params(&self) -> &FsParams {
        &self.params
    }

    fn extend_layout(
        &self,
        layout: &mut FileLayout,
        until: u64,
        cursor: &mut u64,
        rng: &mut SmallRng,
    ) {
        let bs = u64::from(self.params.block_size);
        while layout.mapped_until < until {
            // Extent length: 0.5x..1.5x the mean, block-rounded, >= 1 block.
            let jitter = rng.gen_range(0.5..1.5);
            let len = (trunc_u64(approx_f64(self.params.mean_extent) * jitter) / bs).max(1) * bs;
            // Placement: continue at the cursor or jump.
            if rng.gen_bool(self.params.placement_entropy) {
                let jump = rng.gen_range(0..DATA_SPAN / bs) * bs;
                *cursor = DATA_BASE + jump;
            }
            layout.extents.push(Extent {
                file_off: layout.mapped_until,
                phys: *cursor,
                len,
            });
            layout.mapped_until += len;
            *cursor += len;
        }
    }

    /// Emits the device requests for the block-rounded span
    /// `[start, start + len)` of a laid-out file.
    fn emit_span(
        &self,
        layout: &FileLayout,
        op: IoOp,
        start: u64,
        len: u64,
        out: &mut Vec<HostRequest>,
    ) {
        let max_req = u64::from(self.params.max_request);
        let mut pos = start;
        let end = start + len;
        // Find the first extent containing `pos`.
        let mut idx = layout
            .extents
            .partition_point(|e| e.file_off + e.len <= pos);
        let mut pending: Option<HostRequest> = None;
        while pos < end && idx < layout.extents.len() {
            let e = &layout.extents[idx];
            let within = pos - e.file_off;
            let phys = e.phys + within;
            let take = (e.len - within).min(end - pos);
            // Coalesce with the pending request when physically adjacent.
            match pending.as_mut() {
                Some(p) if p.offset + p.len == phys && p.len + take <= max_req => {
                    p.len += take;
                }
                Some(_) | None => {
                    if let Some(p) = pending.take() {
                        out.push(p);
                    }
                    pending = Some(HostRequest {
                        op,
                        offset: phys,
                        len: take,
                        sync: false,
                    });
                }
            }
            // Split oversized pending requests into max_request pieces.
            if let Some(mut p) = pending.take() {
                while p.len > max_req {
                    out.push(HostRequest {
                        op,
                        offset: p.offset,
                        len: max_req,
                        sync: false,
                    });
                    p.offset += max_req;
                    p.len -= max_req;
                }
                if p.len == max_req {
                    out.push(p);
                } else {
                    pending = Some(p);
                }
            }
            pos += take;
            idx += 1;
        }
        if let Some(p) = pending {
            out.push(p);
        }
    }
}

impl FileSystemModel for FsModel {
    fn name(&self) -> &'static str {
        self.params.name
    }

    fn transform(&self, posix: &PosixTrace) -> BlockTrace {
        let bs = u64::from(self.params.block_size);
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        let mut layouts: BTreeMap<u32, FileLayout> = BTreeMap::new();
        let mut cursor = DATA_BASE;
        let mut out: Vec<HostRequest> = Vec::with_capacity(posix.len() * 4);
        let mut meta_counter: u64 = 0;
        let mut journal_counter: u64 = 0;
        let mut journal_cursor: u64 = JOURNAL_BASE;

        for rec in &posix.records {
            if rec.len == 0 {
                continue;
            }
            // Block-round the span.
            let start = rec.offset / bs * bs;
            let end = (rec.offset + rec.len).div_ceil(bs) * bs;
            let layout = layouts.entry(rec.file).or_default();
            self.extend_layout(layout, end, &mut cursor, &mut rng);
            self.emit_span(layout, rec.op, start, end - start, &mut out);

            // Metadata lookups: small synchronous reads sprinkled through
            // the data stream.
            if let Some(interval) = self.params.metadata_read_interval {
                meta_counter += end - start;
                while meta_counter >= interval {
                    meta_counter -= interval;
                    let addr = META_BASE + rng.gen_range(0..META_SPAN / bs) * bs;
                    out.push(HostRequest::read(addr, bs).synchronous());
                }
            }
            // Journal commits for written data.
            if rec.op == IoOp::Write {
                // data=journal mode: the data itself is first written to
                // the journal region (sequentially), doubling write volume.
                if self.params.journal_data {
                    let mut left = end - start;
                    while left > 0 {
                        let len = left.min(u64::from(self.params.max_request));
                        if journal_cursor + len > JOURNAL_BASE + JOURNAL_SPAN {
                            journal_cursor = JOURNAL_BASE;
                        }
                        out.push(HostRequest::write(journal_cursor, len));
                        journal_cursor += len;
                        left -= len;
                    }
                }
                if let Some(interval) = self.params.journal_commit_interval {
                    journal_counter += end - start;
                    while journal_counter >= interval {
                        journal_counter -= interval;
                        let len = 4 * bs;
                        if journal_cursor + len > JOURNAL_BASE + JOURNAL_SPAN {
                            journal_cursor = JOURNAL_BASE;
                        }
                        out.push(HostRequest::write(journal_cursor, len).synchronous());
                        journal_cursor += len;
                    }
                }
            }
        }
        BlockTrace::from_requests(out, self.params.queue_depth)
    }
}

/// The paper's Unified File System: application-managed, FTL-less direct
/// access (§3.2, Figure 4b). Requests pass through unsplit — *"since UFS
/// will be receiving large read requests directly from our OoC application,
/// it is able to translate and issue those requests directly"*. Each file
/// maps to a contiguous region of raw device addresses.
#[derive(Debug, Clone, Default)]
pub struct UfsModel {
    /// Spacing between per-file regions (default 16 GiB).
    pub file_spacing: u64,
    /// Queue depth the UFS host stack sustains (default 32).
    pub queue_depth: u32,
}

impl UfsModel {
    /// UFS with default layout.
    pub fn new() -> UfsModel {
        UfsModel {
            file_spacing: 16 << 30,
            queue_depth: 32,
        }
    }

    fn map(&self, rec: &TraceRecord) -> u64 {
        u64::from(rec.file) * self.file_spacing + rec.offset
    }
}

impl FileSystemModel for UfsModel {
    fn name(&self) -> &'static str {
        "UFS"
    }

    fn transform(&self, posix: &PosixTrace) -> BlockTrace {
        let requests = posix
            .records
            .iter()
            .filter(|r| r.len > 0)
            .map(|r| HostRequest {
                op: r.op,
                offset: self.map(r),
                len: r.len,
                sync: false,
            })
            .collect();
        BlockTrace::from_requests(requests, self.queue_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(name: &'static str) -> FsParams {
        FsParams {
            name,
            block_size: 4096,
            max_request: 128 * 1024,
            mean_extent: 256 * 1024,
            placement_entropy: 0.3,
            metadata_read_interval: Some(1 << 20),
            journal_commit_interval: Some(1 << 22),
            journal_data: false,
            queue_depth: 8,
            seed: 7,
        }
    }

    fn seq_posix(records: u64, len: u64) -> PosixTrace {
        let mut t = PosixTrace::new();
        for i in 0..records {
            t.push(TraceRecord {
                t: i,
                op: IoOp::Read,
                file: 0,
                offset: i * len,
                len,
            });
        }
        t
    }

    #[test]
    fn data_bytes_are_conserved() {
        let m = FsModel::new(params("t")).expect("valid params");
        let posix = seq_posix(16, 1 << 20);
        let out = m.transform(&posix);
        // Aligned records: block-rounding adds nothing.
        assert_eq!(out.data_bytes(), posix.total_bytes());
    }

    #[test]
    fn unaligned_records_round_to_blocks() {
        let m = FsModel::new(params("t")).expect("valid params");
        let mut posix = PosixTrace::new();
        posix.push(TraceRecord {
            t: 0,
            op: IoOp::Read,
            file: 0,
            offset: 100,
            len: 5000,
        });
        let out = m.transform(&posix);
        // [100, 5100) rounds to [0, 8192).
        assert_eq!(out.data_bytes(), 8192);
    }

    #[test]
    fn transform_is_deterministic() {
        let m = FsModel::new(params("t")).expect("valid params");
        let posix = seq_posix(32, 1 << 20);
        assert_eq!(m.transform(&posix), m.transform(&posix));
    }

    #[test]
    fn requests_respect_max_request() {
        let m = FsModel::new(params("t")).expect("valid params");
        let out = m.transform(&seq_posix(8, 4 << 20));
        assert!(out.requests.iter().all(|r| r.len <= 128 * 1024));
    }

    #[test]
    fn metadata_reads_are_injected_and_synchronous() {
        let m = FsModel::new(params("t")).expect("valid params");
        let out = m.transform(&seq_posix(16, 1 << 20));
        let meta: Vec<_> = out
            .requests
            .iter()
            .filter(|r| r.sync && r.op.is_read())
            .collect();
        // 16 MiB of data at one per MiB.
        assert_eq!(meta.len(), 16);
        assert!(meta.iter().all(|r| r.offset < META_SPAN));
    }

    #[test]
    fn journal_commits_only_for_writes() {
        let m = FsModel::new(params("t")).expect("valid params");
        let reads = m.transform(&seq_posix(16, 1 << 20));
        assert!(!reads.requests.iter().any(|r| r.sync && !r.op.is_read()));

        let mut posix = PosixTrace::new();
        for i in 0..16u64 {
            posix.push(TraceRecord {
                t: i,
                op: IoOp::Write,
                file: 0,
                offset: i << 20,
                len: 1 << 20,
            });
        }
        let writes = m.transform(&posix);
        let commits: Vec<_> = writes
            .requests
            .iter()
            .filter(|r| r.sync && !r.op.is_read())
            .collect();
        assert_eq!(commits.len(), 4); // 16 MiB at one per 4 MiB
        assert!(commits
            .iter()
            .all(|r| r.offset >= JOURNAL_BASE && r.offset < JOURNAL_BASE + JOURNAL_SPAN));
    }

    #[test]
    fn data_journaling_doubles_write_volume() {
        let mut p = params("dj");
        p.journal_data = true;
        let m = FsModel::new(p).expect("valid params");
        let mut posix = PosixTrace::new();
        for i in 0..8u64 {
            posix.push(TraceRecord {
                t: i,
                op: IoOp::Write,
                file: 0,
                offset: i << 20,
                len: 1 << 20,
            });
        }
        let ordered = FsModel::new(params("ord"))
            .expect("valid params")
            .transform(&posix);
        let journaled = m.transform(&posix);
        // Journal-data writes the payload twice (plus commit records).
        assert!(journaled.total_bytes() >= 2 * posix.total_bytes());
        assert!(journaled.total_bytes() > ordered.total_bytes() + posix.total_bytes() / 2);
        // The extra copies are sequential journal-region writes.
        let in_journal = journaled
            .requests
            .iter()
            .filter(|r| {
                !r.op.is_read()
                    && !r.sync
                    && r.offset >= JOURNAL_BASE
                    && r.offset < JOURNAL_BASE + JOURNAL_SPAN
            })
            .count();
        assert!(in_journal > 0);
    }

    #[test]
    fn rereading_reuses_the_same_layout() {
        let m = FsModel::new(params("t")).expect("valid params");
        let mut posix = seq_posix(8, 1 << 20);
        // Second sweep over the same file.
        for i in 0..8u64 {
            posix.push(TraceRecord {
                t: 100 + i,
                op: IoOp::Read,
                file: 0,
                offset: i << 20,
                len: 1 << 20,
            });
        }
        let out = m.transform(&posix);
        let data: Vec<_> = out.requests.iter().filter(|r| !r.sync).collect();
        let half = data.len() / 2;
        for i in 0..half {
            assert_eq!(data[i].offset, data[half + i].offset);
            assert_eq!(data[i].len, data[half + i].len);
        }
    }

    #[test]
    fn lower_entropy_longer_extents_mean_bigger_requests() {
        let mut good = params("good");
        good.mean_extent = 4 << 20;
        good.placement_entropy = 0.02;
        good.max_request = 1 << 20;
        let mut bad = params("bad");
        bad.mean_extent = 64 * 1024;
        bad.placement_entropy = 0.5;
        let posix = seq_posix(32, 1 << 20);
        let g = FsModel::new(good).expect("valid params").transform(&posix);
        let b = FsModel::new(bad).expect("valid params").transform(&posix);
        assert!(g.mean_request_size() > 2.0 * b.mean_request_size());
    }

    #[test]
    fn ufs_is_identity_modulo_file_base() {
        let m = UfsModel::new();
        let posix = seq_posix(8, 4 << 20);
        let out = m.transform(&posix);
        assert_eq!(out.len(), 8);
        assert_eq!(out.total_bytes(), posix.total_bytes());
        assert!((out.sequentiality() - 1.0).abs() < 1e-12);
        assert!(out.requests.iter().all(|r| !r.sync));
        assert_eq!(out.queue_depth, 32);
    }

    #[test]
    fn ufs_separates_files() {
        let m = UfsModel::new();
        let mut posix = PosixTrace::new();
        posix.push(TraceRecord {
            t: 0,
            op: IoOp::Read,
            file: 0,
            offset: 0,
            len: 4096,
        });
        posix.push(TraceRecord {
            t: 1,
            op: IoOp::Read,
            file: 1,
            offset: 0,
            len: 4096,
        });
        let out = m.transform(&posix);
        assert_eq!(out.requests[1].offset - out.requests[0].offset, 16 << 30);
    }
}
