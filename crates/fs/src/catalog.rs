//! The Table-2 / Figure-7 file-system catalogue.

use crate::gpfs::GpfsModel;
use crate::model::{FsModel, UfsModel};
use crate::params::FsParams;
use crate::FileSystemModel;
use ooctrace::{BlockTrace, PosixTrace};
use serde::Serialize;

/// Every file system the paper evaluates, in Figure 7's x-axis order.
///
/// ```
/// use nvmtypes::IoOp;
/// use oocfs::FsKind;
/// use ooctrace::{PosixTrace, TraceRecord};
///
/// let mut posix = PosixTrace::new();
/// for i in 0..4u64 {
///     posix.push(TraceRecord { t: i, op: IoOp::Read, file: 0, offset: i << 22, len: 1 << 22 });
/// }
/// // UFS passes the application's requests through unchanged...
/// let ufs = FsKind::Ufs.transform(&posix);
/// assert_eq!(ufs.len(), 4);
/// // ...GPFS stripes them into fragments.
/// let gpfs = FsKind::IonGpfs.transform(&posix);
/// assert!(gpfs.len() > 4 * 8);
/// assert_eq!(gpfs.total_bytes(), posix.total_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FsKind {
    /// GPFS on the I/O nodes (the ION-local baseline).
    IonGpfs,
    /// IBM's Journaled File System.
    Jfs,
    /// The B-tree file system (best non-tuned local FS in the paper).
    Btrfs,
    /// SGI's XFS.
    Xfs,
    /// ReiserFS.
    ReiserFs,
    /// Second extended file system — block-mapped, no journal; the worst
    /// performer in Figure 7a.
    Ext2,
    /// Third extended file system — ext2 plus journaling.
    Ext3,
    /// Fourth extended file system — extent-based.
    Ext4,
    /// ext4 "with large request sizes": the paper's tuned variant, raising
    /// the block layer's coalescing cap ("simply turning a few kernel
    /// knobs"), worth about 1 GB/s in Figure 7a.
    Ext4L,
    /// The paper's Unified File System.
    Ufs,
}

impl FsKind {
    /// All ten, in Figure-7 order.
    pub const ALL: [FsKind; 10] = [
        FsKind::IonGpfs,
        FsKind::Jfs,
        FsKind::Btrfs,
        FsKind::Xfs,
        FsKind::ReiserFs,
        FsKind::Ext2,
        FsKind::Ext3,
        FsKind::Ext4,
        FsKind::Ext4L,
        FsKind::Ufs,
    ];

    /// Figure-7 bar label.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::IonGpfs => "ION-GPFS",
            FsKind::Jfs => "CNL-JFS",
            FsKind::Btrfs => "CNL-BTRFS",
            FsKind::Xfs => "CNL-XFS",
            FsKind::ReiserFs => "CNL-REISERFS",
            FsKind::Ext2 => "CNL-EXT2",
            FsKind::Ext3 => "CNL-EXT3",
            FsKind::Ext4 => "CNL-EXT4",
            FsKind::Ext4L => "CNL-EXT4-L",
            FsKind::Ufs => "CNL-UFS",
        }
    }

    /// Whether this configuration serves storage from the I/O nodes over
    /// the cluster network.
    pub fn is_ion(self) -> bool {
        matches!(self, FsKind::IonGpfs)
    }

    /// Calibrated mutation parameters for the local file systems.
    ///
    /// The shape levers, per §3.2: block-mapped ext2/ext3 chase indirect
    /// blocks with frequent synchronous metadata reads and fragment
    /// heavily; JFS/ReiserFS/XFS are extent-ish with middling allocators;
    /// ext4's extent tree keeps runs long; BTRFS's COW allocator writes
    /// (and thus lays out) the largest contiguous runs; ext4-L only raises
    /// the coalescing cap relative to ext4.
    pub fn params(self) -> Option<FsParams> {
        let p = match self {
            FsKind::IonGpfs | FsKind::Ufs => return None,
            FsKind::Ext2 => FsParams {
                name: "ext2",
                block_size: 4096,
                max_request: 128 * 1024,
                mean_extent: 224 * 1024,
                placement_entropy: 0.35,
                metadata_read_interval: Some(3 << 20),
                journal_commit_interval: None,
                journal_data: false,
                queue_depth: 4,
                seed: 0xe2,
            },
            FsKind::Ext3 => FsParams {
                name: "ext3",
                block_size: 4096,
                max_request: 128 * 1024,
                mean_extent: 288 * 1024,
                placement_entropy: 0.30,
                metadata_read_interval: Some(4 << 20),
                journal_commit_interval: Some(4 << 20),
                journal_data: false,
                queue_depth: 5,
                seed: 0xe3,
            },
            FsKind::Jfs => FsParams {
                name: "jfs",
                block_size: 4096,
                max_request: 256 * 1024,
                mean_extent: 384 * 1024,
                placement_entropy: 0.25,
                metadata_read_interval: Some(4 << 20),
                journal_commit_interval: Some(8 << 20),
                journal_data: false,
                queue_depth: 6,
                seed: 0x1f5,
            },
            FsKind::ReiserFs => FsParams {
                name: "reiserfs",
                block_size: 4096,
                max_request: 256 * 1024,
                mean_extent: 512 * 1024,
                placement_entropy: 0.22,
                metadata_read_interval: Some(4 << 20),
                journal_commit_interval: Some(8 << 20),
                journal_data: false,
                queue_depth: 6,
                seed: 0x4e15,
            },
            FsKind::Xfs => FsParams {
                name: "xfs",
                block_size: 4096,
                max_request: 256 * 1024,
                mean_extent: 1 << 20,
                placement_entropy: 0.16,
                metadata_read_interval: Some(8 << 20),
                journal_commit_interval: Some(16 << 20),
                journal_data: false,
                queue_depth: 6,
                seed: 0xf5,
            },
            FsKind::Ext4 => FsParams {
                name: "ext4",
                block_size: 4096,
                max_request: 256 * 1024,
                mean_extent: 4 << 20,
                placement_entropy: 0.10,
                metadata_read_interval: Some(10 << 20),
                journal_commit_interval: Some(8 << 20),
                journal_data: false,
                queue_depth: 7,
                seed: 0xe4,
            },
            FsKind::Btrfs => FsParams {
                name: "btrfs",
                block_size: 4096,
                max_request: 512 * 1024,
                mean_extent: 3 << 20,
                placement_entropy: 0.13,
                metadata_read_interval: Some(12 << 20),
                journal_commit_interval: None,
                journal_data: false,
                queue_depth: 7,
                seed: 0xb7f5,
            },
            FsKind::Ext4L => FsParams {
                name: "ext4-L",
                block_size: 4096,
                max_request: 1 << 20,
                mean_extent: 4 << 20,
                placement_entropy: 0.10,
                metadata_read_interval: Some(10 << 20),
                journal_commit_interval: Some(8 << 20),
                journal_data: false,
                queue_depth: 12,
                seed: 0xe4a,
            },
        };
        Some(p)
    }

    /// Builds the request mutator for this file system.
    pub fn model(self) -> Box<dyn FileSystemModel> {
        match self {
            FsKind::IonGpfs => Box::new(GpfsModel::new()),
            FsKind::Ufs => Box::new(UfsModel::new()),
            FsKind::Ext2
            | FsKind::Ext3
            | FsKind::Jfs
            | FsKind::ReiserFs
            | FsKind::Xfs
            | FsKind::Ext4
            | FsKind::Btrfs
            | FsKind::Ext4L => {
                // Every local kind carries validating parameters by
                // construction (see `all_params_validate`); should that
                // invariant ever break, the identity mapping is a
                // deterministic, non-panicking fallback.
                match self.params().map(FsModel::new) {
                    Some(Ok(m)) => Box::new(m),
                    Some(Err(_)) | None => Box::new(UfsModel::new()),
                }
            }
        }
    }

    /// Convenience: transform a POSIX trace through this file system.
    pub fn transform(self, posix: &PosixTrace) -> BlockTrace {
        self.model().transform(posix)
    }

    /// Convenience: [`FileSystemModel::transform_observed`] through this
    /// file system.
    pub fn transform_observed(self, posix: &PosixTrace, obs: &mut simobs::Tracer) -> BlockTrace {
        self.model().transform_observed(posix, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::IoOp;
    use ooctrace::TraceRecord;

    fn seq_posix(records: u64, len: u64) -> PosixTrace {
        let mut t = PosixTrace::new();
        for i in 0..records {
            t.push(TraceRecord {
                t: i,
                op: IoOp::Read,
                file: 0,
                offset: i * len,
                len,
            });
        }
        t
    }

    #[test]
    fn all_params_validate() {
        for kind in FsKind::ALL {
            if let Some(p) = kind.params() {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn labels_are_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for kind in FsKind::ALL {
            assert!(seen.insert(kind.label()));
            if kind.is_ion() {
                assert!(kind.label().starts_with("ION-"));
            } else {
                assert!(kind.label().starts_with("CNL-"));
            }
        }
    }

    #[test]
    fn every_model_conserves_aligned_data_bytes() {
        let posix = seq_posix(8, 4 << 20);
        for kind in FsKind::ALL {
            let out = kind.transform(&posix);
            assert_eq!(
                out.data_bytes(),
                posix.total_bytes(),
                "{} lost or duplicated data bytes",
                kind.label()
            );
        }
    }

    #[test]
    fn request_size_ordering_matches_fs_quality() {
        let posix = seq_posix(16, 4 << 20);
        let mean = |k: FsKind| k.transform(&posix).mean_request_size();
        // ext2 emits the smallest data requests; btrfs / ext4-L / UFS the
        // largest; UFS does not split at all.
        assert!(mean(FsKind::Ext2) < mean(FsKind::Xfs));
        assert!(mean(FsKind::Xfs) < mean(FsKind::Btrfs));
        assert!(mean(FsKind::Btrfs) < mean(FsKind::Ufs));
        assert_eq!(mean(FsKind::Ufs), (4 << 20) as f64);
    }

    #[test]
    fn ufs_preserves_sequentiality_gpfs_destroys_it() {
        let posix = seq_posix(16, 4 << 20);
        let ufs = FsKind::Ufs.transform(&posix);
        let gpfs = FsKind::IonGpfs.transform(&posix);
        assert!(ufs.sequentiality() > 0.95);
        assert!(gpfs.sequentiality() < 0.2);
    }

    #[test]
    fn ext2_stalls_more_than_ext4() {
        let posix = seq_posix(16, 4 << 20);
        let syncs = |k: FsKind| {
            k.transform(&posix)
                .requests
                .iter()
                .filter(|r| r.sync)
                .count()
        };
        assert!(syncs(FsKind::Ext2) > 2 * syncs(FsKind::Ext4));
        assert_eq!(syncs(FsKind::Ufs), 0);
    }
}
