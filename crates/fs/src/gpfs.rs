//! GPFS: the parallel file system of the ION-remote baseline.
//!
//! GPFS stripes every file over the NSD servers' disks in fixed-size
//! blocks. From a single SSD's point of view the previously sequential
//! application stream arrives chopped into stripe-size chunks whose
//! addresses are scattered by the striping map, and interleaved with
//! chunks of other clients' streams — *"GPFS divides up what was
//! previously largely sequential in the compute-local trace"* (§4.2,
//! Figure 6). *"Larger stripes combat this randomizing trend, but only to
//! limited extents"* — which the stripe-size ablation bench demonstrates.

use crate::FileSystemModel;
use nvmtypes::HostRequest;
use ooctrace::{BlockTrace, PosixTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Start of the data region chunks are scattered over.
const DATA_BASE: u64 = 256 << 20;
/// Size of the data region.
const DATA_SPAN: u64 = 255 << 30;

/// SplitMix64: a deterministic 64-bit mixer for the striping map.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The GPFS request mutator.
#[derive(Debug, Clone)]
pub struct GpfsModel {
    /// Stripe (GPFS block) size in bytes.
    pub stripe_size: u64,
    /// NSD wire-transfer size: stripes are served to clients in pieces of
    /// this size, which is what the device-level trace sees.
    pub transfer_size: u64,
    /// How many in-flight chunks the NSD server interleaves: emitted
    /// requests are shuffled within a sliding window of this size,
    /// modelling concurrent client streams hitting the same server.
    pub shuffle_window: usize,
    /// Network credits: requests the GPFS client keeps outstanding.
    pub queue_depth: u32,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for GpfsModel {
    fn default() -> Self {
        GpfsModel::new()
    }
}

impl GpfsModel {
    /// GPFS with 512 KiB stripes served in 128 KiB NSD transfers, a
    /// 16-deep server interleave window and 2 outstanding client requests.
    pub fn new() -> GpfsModel {
        GpfsModel {
            stripe_size: 512 * 1024,
            transfer_size: 128 * 1024,
            shuffle_window: 16,
            queue_depth: 2,
            seed: 0x9f75,
        }
    }

    /// Same model with a different stripe size (for the ablation). The
    /// NSD transfer size scales with the stripe up to a 512 KiB wire cap,
    /// as a real NSD client's transfer buffer would.
    pub fn with_stripe(mut self, stripe_size: u64) -> GpfsModel {
        assert!(stripe_size >= 4096, "GPFS stripes are at least 4 KiB");
        self.stripe_size = stripe_size;
        self.transfer_size = stripe_size.min(512 * 1024);
        self
    }

    /// Physical address of stripe `idx` of `file`.
    fn stripe_base(&self, file: u32, idx: u64) -> u64 {
        let slots = DATA_SPAN / self.stripe_size;
        let slot = splitmix64(self.seed ^ (u64::from(file) << 40) ^ idx) % slots;
        DATA_BASE + slot * self.stripe_size
    }
}

impl FileSystemModel for GpfsModel {
    fn name(&self) -> &'static str {
        "GPFS"
    }

    fn transform(&self, posix: &PosixTrace) -> BlockTrace {
        let mut chunks: Vec<HostRequest> = Vec::with_capacity(posix.len() * 4);
        for rec in &posix.records {
            if rec.len == 0 {
                continue;
            }
            // Chop the record at stripe boundaries of the file offset.
            let mut pos = rec.offset;
            let end = rec.offset + rec.len;
            while pos < end {
                let idx = pos / self.stripe_size;
                let within = pos - idx * self.stripe_size;
                let take = (self.stripe_size - within)
                    .min(end - pos)
                    .min(self.transfer_size);
                chunks.push(HostRequest {
                    op: rec.op,
                    offset: self.stripe_base(rec.file, idx) + within,
                    len: take,
                    sync: false,
                });
                pos += take;
            }
        }
        // Server-side interleaving: shuffle within a sliding window.
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out: Vec<HostRequest> = Vec::with_capacity(chunks.len());
        let mut window: Vec<HostRequest> = Vec::with_capacity(self.shuffle_window);
        for c in chunks {
            window.push(c);
            if window.len() >= self.shuffle_window {
                let i = rng.gen_range(0..window.len());
                out.push(window.swap_remove(i));
            }
        }
        while !window.is_empty() {
            let i = rng.gen_range(0..window.len());
            out.push(window.swap_remove(i));
        }
        BlockTrace::from_requests(out, self.queue_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::IoOp;
    use ooctrace::TraceRecord;

    fn seq_posix(records: u64, len: u64) -> PosixTrace {
        let mut t = PosixTrace::new();
        for i in 0..records {
            t.push(TraceRecord {
                t: i,
                op: IoOp::Read,
                file: 0,
                offset: i * len,
                len,
            });
        }
        t
    }

    #[test]
    fn bytes_are_conserved() {
        let m = GpfsModel::new();
        let posix = seq_posix(16, 4 << 20);
        let out = m.transform(&posix);
        assert_eq!(out.total_bytes(), posix.total_bytes());
    }

    #[test]
    fn chunks_do_not_exceed_stripe_size() {
        let m = GpfsModel::new();
        let out = m.transform(&seq_posix(8, 4 << 20));
        assert!(out.requests.iter().all(|r| r.len <= m.transfer_size));
    }

    #[test]
    fn striping_destroys_sequentiality() {
        let m = GpfsModel::new();
        let posix = seq_posix(16, 4 << 20);
        let out = m.transform(&posix);
        assert!(
            out.sequentiality() < 0.2,
            "GPFS left sequentiality {}",
            out.sequentiality()
        );
    }

    #[test]
    fn same_stripe_maps_to_same_place() {
        // Iterative sweeps must see a stable striping map.
        let m = GpfsModel::new();
        let mut posix = seq_posix(4, 1 << 20);
        for i in 0..4u64 {
            posix.push(TraceRecord {
                t: 10 + i,
                op: IoOp::Read,
                file: 0,
                offset: i << 20,
                len: 1 << 20,
            });
        }
        let out = m.transform(&posix);
        let mut addrs: Vec<u64> = out.requests.iter().map(|r| r.offset).collect();
        addrs.sort_unstable();
        // Every address appears exactly twice (two sweeps).
        for pair in addrs.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn transform_is_deterministic() {
        let m = GpfsModel::new();
        let posix = seq_posix(16, 2 << 20);
        assert_eq!(m.transform(&posix), m.transform(&posix));
    }

    #[test]
    fn larger_stripes_scatter_less() {
        // "Larger stripes combat this randomizing trend": with bigger
        // stripes the same data lands in fewer scattered placements, so
        // more consecutive device requests stay physically adjacent.
        let posix = seq_posix(32, 4 << 20);
        let adjacency = |stripe: u64| {
            let out = GpfsModel::new().with_stripe(stripe).transform(&posix);
            let mut sorted = out.requests.clone();
            sorted.sort_by_key(|r| r.offset);
            sorted
                .windows(2)
                .filter(|w| w[1].offset == w[0].offset + w[0].len)
                .count()
        };
        assert!(adjacency(4 << 20) > adjacency(256 * 1024));
    }
}
