//! # oocfs — file-system request-transformation models
//!
//! The paper's §3.2 observation: the file system is a *request mutator*.
//! The out-of-core application emits large, sequential POSIX reads; what
//! reaches the SSD depends on the file system's block size, its allocator's
//! ability to keep extents contiguous, the block layer's request-coalescing
//! cap, metadata lookups (block-mapped file systems chase indirect blocks
//! with small synchronous reads), journal commits, and — for a parallel
//! file system like GPFS — striping, which "divides up what was previously
//! largely sequential" (§4.2, Figure 6).
//!
//! Each model here consumes a [`ooctrace::PosixTrace`] and emits the
//! [`ooctrace::BlockTrace`] the device actually sees, exactly mirroring the
//! paper's methodology of replaying POSIX traces through a real file system
//! to capture device-level block traces.
//!
//! The catalogue covers every file system in Table 2 / Figure 7:
//! ext2, ext3, ext4, the tuned "ext4-L" (large coalesced requests), XFS,
//! JFS, ReiserFS, BTRFS, GPFS (ION-remote, striped), and the paper's
//! **UFS**, which passes application requests through unchanged as raw NVM
//! transactions.
//!
//! The per-file-system parameters are calibrated so the *relative ordering*
//! of Figure 7a reproduces; they are data ([`FsParams`]), not code, and the
//! calibration is documented in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod gpfs;
pub mod model;
pub mod params;

pub use catalog::FsKind;
pub use gpfs::GpfsModel;
pub use model::{FsModel, UfsModel};
pub use params::FsParams;

use ooctrace::{BlockTrace, PosixTrace};

/// Anything that can mutate a POSIX-level trace into a device-level trace.
pub trait FileSystemModel {
    /// Display name (Figure 7 x-axis label, without the CNL-/ION- prefix).
    fn name(&self) -> &'static str;
    /// Transforms the application's POSIX trace into the block trace the
    /// device sees. Deterministic: equal inputs produce equal outputs.
    fn transform(&self, posix: &PosixTrace) -> BlockTrace;

    /// [`FileSystemModel::transform`] with an observer attached: when
    /// `obs` is enabled, emits one [`simobs::Layer::Fs`] marker (named
    /// after the model, at logical time 0 — the mutation happens before
    /// the device clock starts) summarising how the file system reshaped
    /// the request stream, plus request counters. The tracer reads the
    /// finished trace only, so observing cannot change the transform.
    fn transform_observed(&self, posix: &PosixTrace, obs: &mut simobs::Tracer) -> BlockTrace {
        let block = self.transform(posix);
        if obs.enabled() {
            let requests = nvmtypes::u64_from_usize(block.len());
            let syncs = nvmtypes::u64_from_usize(block.requests.iter().filter(|r| r.sync).count());
            obs.instant(
                simobs::Layer::Fs,
                self.name(),
                0,
                [("requests", requests), ("sync", syncs)],
            );
            obs.count("fs.requests", requests);
            obs.count("fs.sync_requests", syncs);
        }
        block
    }
}
