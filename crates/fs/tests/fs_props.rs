//! Property tests on the file-system request mutators.

use nvmtypes::IoOp;
use oocfs::{FileSystemModel, FsKind, FsModel, FsParams, GpfsModel};
use ooctrace::{PosixTrace, TraceRecord};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = PosixTrace> {
    prop::collection::vec((0u64..64, 1u64..32, 0u32..3), 1..30).prop_map(|recs| {
        let mut t = PosixTrace::new();
        for (i, (off, blocks, file)) in recs.into_iter().enumerate() {
            t.push(TraceRecord {
                t: i as u64,
                op: IoOp::Read,
                file,
                offset: off * 4096,
                len: blocks * 4096,
            });
        }
        t
    })
}

fn arb_params() -> impl Strategy<Value = FsParams> {
    (
        prop_oneof![Just(4096u32), Just(8192), Just(16384)],
        1u32..32,
        1u64..32,
        0.0..0.6f64,
        prop::option::of(1u64..64),
        1u32..16,
        0u64..1000,
    )
        .prop_map(
            |(block, max_mul, extent_mul, entropy, meta, qd, seed)| FsParams {
                name: "prop",
                block_size: block,
                max_request: block * max_mul,
                mean_extent: block as u64 * extent_mul.max(1),
                placement_entropy: entropy,
                metadata_read_interval: meta.map(|m| m * block as u64),
                journal_commit_interval: None,
                journal_data: false,
                queue_depth: qd,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_valid_params_conserve_data_bytes(
        trace in arb_trace(),
        params in arb_params(),
    ) {
        // Block-round the expectation per record (offsets are 4K-aligned
        // but the FS block size may be larger).
        let bs = params.block_size as u64;
        let expect: u64 = trace
            .records
            .iter()
            .map(|r| (r.offset + r.len).div_ceil(bs) * bs - r.offset / bs * bs)
            .sum();
        let out = FsModel::new(params).expect("valid params").transform(&trace);
        prop_assert_eq!(out.data_bytes(), expect);
        // Requests respect the coalescing cap and queue depth survives.
        prop_assert!(out.requests.iter().filter(|r| !r.sync).all(|r| r.len <= params.max_request as u64));
        prop_assert_eq!(out.queue_depth, params.queue_depth);
    }

    #[test]
    fn gpfs_conserves_bytes_for_any_stripe(
        trace in arb_trace(),
        stripe_kib in 4u64..2048,
    ) {
        let model = GpfsModel::new().with_stripe(stripe_kib * 1024);
        let out = model.transform(&trace);
        prop_assert_eq!(out.total_bytes(), trace.total_bytes());
        prop_assert!(out.requests.iter().all(|r| r.len <= model.transfer_size));
    }

    #[test]
    fn catalogue_transforms_never_panic_and_stay_deterministic(
        trace in arb_trace(),
    ) {
        for kind in FsKind::ALL {
            let a = kind.transform(&trace);
            let b = kind.transform(&trace);
            prop_assert_eq!(a, b, "{} non-deterministic", kind.label());
        }
    }
}

#[test]
fn ufs_mean_request_matches_posix_mean() {
    let mut trace = PosixTrace::new();
    for i in 0..16u64 {
        trace.push(TraceRecord {
            t: i,
            op: IoOp::Read,
            file: 0,
            offset: i << 20,
            len: 1 << 20,
        });
    }
    let out = FsKind::Ufs.transform(&trace);
    assert_eq!(out.mean_request_size(), (1 << 20) as f64);
}
