//! # simprof — dual-domain performance profiling for the oocnvm simulator
//!
//! The simulator has two clocks and the paper's claims care about both:
//! *simulated* nanoseconds say what the modelled hardware did (Figure 9's
//! utilizations, the ~10.3x end-to-end story), *host* wall-clock says
//! what running the model costs us — the quantity a perf regression
//! actually burns. This crate profiles the two domains side by side,
//! without breaking the workspace's determinism contract:
//!
//! * [`profile::Profiler`] — a hierarchical span profiler for the host
//!   domain. Wall time enters only through an injected [`profile::HostClock`];
//!   this crate defines the deterministic [`profile::NullClock`] and
//!   [`profile::TickClock`] and never touches `std::time`, so it sits in
//!   the simlint wall-clock-free set alongside the simulators. The real
//!   clock lives in the `bench` crate, which is exempt.
//! * [`profile::SimSpanProfile`] — exact simulated-time attribution
//!   rebuilt from a [`simobs::TraceLog`]: a containment sweep over the
//!   recorded spans yields per-`(layer, name)` total and *self* time
//!   whose self-times sum exactly to the union of all spans (integer
//!   arithmetic, no residue).
//! * [`regress`] — baseline comparison for the committed bench report:
//!   the `pinned` subtree (simulated results) must match byte-for-byte,
//!   the `host` subtree gets a tolerance band.
//!
//! See `docs/PROFILING.md` for the dual-domain model and the
//! bench-baseline workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod regress;

pub use profile::{
    HostClock, NullClock, ProfileNode, ProfileReport, Profiler, SimSpanProfile, TickClock,
};
pub use regress::compare;
