//! The two profile builders: a host-domain span tree fed by an injected
//! clock, and a simulated-domain attribution rebuilt from a trace log.
//!
//! Both sides produce the same shape — name, call count, inclusive
//! time, exclusive (*self*) time — so a bench report can print them side
//! by side and a baseline diff can treat them uniformly. Determinism:
//! nothing here reads a real clock or iterates an unordered container;
//! given equal inputs (clock readings, trace logs) the outputs are
//! byte-identical.

use nvmtypes::Nanos;
use simobs::json::Json;
use simobs::{EventKind, Layer, TraceLog};
use std::collections::BTreeMap;

/// Source of host-domain timestamps, nanoseconds from an arbitrary
/// epoch, monotone non-decreasing.
///
/// The profiler only ever subtracts readings, so the epoch is free. This
/// crate deliberately has no real-time implementation — wall clocks are
/// banned from the simulator crates (simlint `wall_clock`), and keeping
/// the trait object-safe lets the one exempt crate (`bench`) inject
/// `std::time::Instant` from outside.
pub trait HostClock {
    /// Current reading, ns.
    fn now_ns(&mut self) -> Nanos;
}

/// A clock that never moves: host times all come out zero. The default
/// for contexts that only want the simulated domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl HostClock for NullClock {
    fn now_ns(&mut self) -> Nanos {
        0
    }
}

/// A deterministic test clock: starts at zero and advances by a fixed
/// step on every reading, so profiler tests can assert exact host times.
#[derive(Debug, Clone, Copy)]
pub struct TickClock {
    t: Nanos,
    step: Nanos,
}

impl TickClock {
    /// A clock advancing `step` ns per reading.
    pub fn new(step: Nanos) -> TickClock {
        TickClock { t: 0, step }
    }
}

impl HostClock for TickClock {
    fn now_ns(&mut self) -> Nanos {
        let now = self.t;
        self.t = self.t.saturating_add(self.step);
        now
    }
}

/// One arena node of the live profiler tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    calls: u64,
    host_ns: Nanos,
    sim_ns: Nanos,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: BTreeMap::new(),
            calls: 0,
            host_ns: 0,
            sim_ns: 0,
        }
    }
}

/// A hierarchical dual-domain span profiler.
///
/// Drive it with [`Profiler::enter`] / [`Profiler::exit`] around the
/// phases of a run; host time is read from the injected clock at each
/// boundary, and [`Profiler::add_sim`] attributes simulated nanoseconds
/// (already computed by the simulator) to the currently open span.
/// [`Profiler::finish`] closes anything still open and returns the
/// rolled-up [`ProfileReport`].
///
/// ```
/// use simprof::{Profiler, TickClock};
///
/// let mut p = Profiler::new(Box::new(TickClock::new(10)));
/// p.enter("solve");
/// p.enter("io");
/// p.add_sim(5_000);
/// p.exit();
/// p.exit();
/// let report = p.finish();
/// assert_eq!(report.root.children[0].name, "solve");
/// assert_eq!(report.root.children[0].sim_ns, 5_000);
/// ```
#[derive(Debug)]
pub struct Profiler {
    clock: Box<dyn HostClock>,
    nodes: Vec<Node>,
    /// Open spans: `(node index, host start reading)`. Entry 0 is the
    /// synthetic root and is never popped by [`Profiler::exit`].
    stack: Vec<(usize, Nanos)>,
}

impl std::fmt::Debug for dyn HostClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HostClock")
    }
}

impl Profiler {
    /// A profiler reading host time from `clock`. The root span ("total")
    /// opens immediately.
    pub fn new(mut clock: Box<dyn HostClock>) -> Profiler {
        let start = clock.now_ns();
        let mut root = Node::new("total");
        root.calls = 1;
        Profiler {
            clock,
            nodes: vec![root],
            stack: vec![(0, start)],
        }
    }

    /// Index of the currently open node (the root when nothing else is).
    fn top(&self) -> usize {
        self.stack.last().map(|&(i, _)| i).unwrap_or(0)
    }

    /// Opens a child span named `name` under the current span. Re-entering
    /// the same name under the same parent accumulates into one node.
    pub fn enter(&mut self, name: &'static str) {
        let parent = self.top();
        let idx = match self.nodes.get(parent).and_then(|p| p.children.get(name)) {
            Some(&i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(Node::new(name));
                if let Some(p) = self.nodes.get_mut(parent) {
                    p.children.insert(name, i);
                }
                i
            }
        };
        if let Some(n) = self.nodes.get_mut(idx) {
            n.calls = n.calls.saturating_add(1);
        }
        let now = self.clock.now_ns();
        self.stack.push((idx, now));
    }

    /// Closes the current span, charging its host elapsed time. Exiting
    /// with only the root open is a no-op (unbalanced exits are absorbed,
    /// never a panic).
    pub fn exit(&mut self) {
        if self.stack.len() <= 1 {
            return;
        }
        let now = self.clock.now_ns();
        if let Some((idx, start)) = self.stack.pop() {
            if let Some(n) = self.nodes.get_mut(idx) {
                n.host_ns = n.host_ns.saturating_add(now.saturating_sub(start));
            }
        }
    }

    /// Attributes `ns` simulated nanoseconds to the currently open span.
    pub fn add_sim(&mut self, ns: Nanos) {
        let idx = self.top();
        if let Some(n) = self.nodes.get_mut(idx) {
            n.sim_ns = n.sim_ns.saturating_add(ns);
        }
    }

    /// Closes every open span (deepest first) and returns the report.
    pub fn finish(mut self) -> ProfileReport {
        while self.stack.len() > 1 {
            self.exit();
        }
        let now = self.clock.now_ns();
        if let Some(&(0, start)) = self.stack.first() {
            if let Some(root) = self.nodes.get_mut(0) {
                root.host_ns = now.saturating_sub(start);
            }
        }
        ProfileReport {
            root: build_node(&self.nodes, 0),
        }
    }
}

/// Recursively converts the arena into the exported tree, computing
/// exclusive times. Children come out in name order (the arena keeps
/// them in a `BTreeMap`), so equal profiles render byte-identically.
fn build_node(nodes: &[Node], idx: usize) -> ProfileNode {
    let Some(n) = nodes.get(idx) else {
        return ProfileNode::leaf("?");
    };
    let children: Vec<ProfileNode> = n.children.values().map(|&c| build_node(nodes, c)).collect();
    let child_host: Nanos = children.iter().map(|c| c.host_ns).sum();
    let child_sim: Nanos = children.iter().map(|c| c.sim_ns).sum();
    let sim_ns = n.sim_ns.saturating_add(child_sim);
    ProfileNode {
        name: n.name,
        calls: n.calls,
        host_ns: n.host_ns,
        host_self_ns: n.host_ns.saturating_sub(child_host),
        sim_ns,
        sim_self_ns: n.sim_ns,
        children,
    }
}

/// One reported span: inclusive and exclusive time in both domains.
///
/// Invariants (exact, integer): `host_self_ns = host_ns − Σ children
/// host_ns` (saturating at 0 if the clock misbehaves), and `sim_ns =
/// sim_self_ns + Σ children sim_ns` — simulated time is attributed
/// bottom-up by [`Profiler::add_sim`], so the inclusive figure is a pure
/// rollup and the tree always balances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name.
    pub name: &'static str,
    /// Times this span was entered.
    pub calls: u64,
    /// Inclusive host time, ns.
    pub host_ns: Nanos,
    /// Exclusive host time, ns.
    pub host_self_ns: Nanos,
    /// Inclusive simulated time, ns (rolled up from children).
    pub sim_ns: Nanos,
    /// Simulated time attributed directly to this span, ns.
    pub sim_self_ns: Nanos,
    /// Child spans, in name order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn leaf(name: &'static str) -> ProfileNode {
        ProfileNode {
            name,
            calls: 0,
            host_ns: 0,
            host_self_ns: 0,
            sim_ns: 0,
            sim_self_ns: 0,
            children: Vec::new(),
        }
    }

    /// This node as a JSON object (children nested under `"children"`,
    /// omitted when empty).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("name", Json::str(self.name))
            .field("calls", Json::u64(self.calls))
            .field("host_ns", Json::u64(self.host_ns))
            .field("host_self_ns", Json::u64(self.host_self_ns))
            .field("sim_ns", Json::u64(self.sim_ns))
            .field("sim_self_ns", Json::u64(self.sim_self_ns));
        if !self.children.is_empty() {
            obj = obj.field(
                "children",
                Json::Arr(self.children.iter().map(ProfileNode::to_json).collect()),
            );
        }
        obj
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{:<24} calls={:<6} host={}ns (self {}ns)  sim={}ns (self {}ns)\n",
            self.name, self.calls, self.host_ns, self.host_self_ns, self.sim_ns, self.sim_self_ns
        ));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// The finished dual-domain profile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// The synthetic root ("total") covering the whole profiled window.
    pub root: ProfileNode,
}

impl ProfileReport {
    /// Indented text rendering for console output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, &mut out);
        out
    }

    /// The whole tree as JSON.
    pub fn to_json(&self) -> Json {
        self.root.to_json()
    }
}

/// Per-`(layer, name)` simulated-time totals with exact self time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Emitting layer.
    pub layer: Layer,
    /// Span name.
    pub name: &'static str,
    /// Span instances.
    pub calls: u64,
    /// Summed span durations, ns (inclusive — nested spans count twice).
    pub total_ns: Nanos,
    /// Exclusive time: duration not covered by any contained span, ns.
    pub self_ns: Nanos,
}

/// Per-layer exclusive-time rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStat {
    /// The layer.
    pub layer: Layer,
    /// Span instances attributed to it.
    pub calls: u64,
    /// Summed exclusive time, ns.
    pub self_ns: Nanos,
}

/// Exact simulated-time attribution over a recorded trace.
///
/// Built by a boundary sweep: every covered instant of simulated time is
/// attributed to exactly one span — the *innermost* one active there,
/// i.e. the latest-started (record order breaking ties). For nested
/// spans that is the classic flamegraph self-time (parent minus
/// children); for arbitrary overlaps (parallel die ops, cross-layer
/// partial overlap) it stays well defined, deterministic, and exact: the
/// self times of all spans always sum to [`SimSpanProfile::union_ns`],
/// the union of all span extents, with no integer residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSpanProfile {
    /// Per-`(layer, name)` stats, in first-appearance (record) order.
    pub spans: Vec<SpanStat>,
    /// Per-layer self-time rollup, in [`Layer::ALL`] order; layers with
    /// no spans are omitted.
    pub layers: Vec<LayerStat>,
    /// Union of all span extents, ns — the profiled simulated window.
    pub union_ns: Nanos,
}

impl SimSpanProfile {
    /// Builds the attribution from a drained trace log.
    pub fn build(log: &TraceLog) -> SimSpanProfile {
        // Register keys in record order; collect span instances.
        let mut keys: Vec<(Layer, &'static str)> = Vec::new();
        let mut stats: Vec<SpanStat> = Vec::new();
        let mut items: Vec<(Nanos, Nanos, usize)> = Vec::new();
        for ev in &log.events {
            if !matches!(ev.kind, EventKind::Span) {
                continue;
            }
            let key = (ev.layer, ev.name);
            let stat = match keys.iter().position(|&k| k == key) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    stats.push(SpanStat {
                        layer: ev.layer,
                        name: ev.name,
                        calls: 0,
                        total_ns: 0,
                        self_ns: 0,
                    });
                    keys.len() - 1
                }
            };
            if let Some(s) = stats.get_mut(stat) {
                s.calls = s.calls.saturating_add(1);
                s.total_ns = s.total_ns.saturating_add(ev.dur);
            }
            items.push((ev.ts, ev.ts.saturating_add(ev.dur), stat));
        }

        // Boundary sweep. `active` is keyed by (start asc, end desc,
        // instance index) so its *last* entry is always the innermost
        // active span — latest start, then earliest end, then latest
        // record; between consecutive boundaries the elapsed segment is
        // charged to it.
        let mut bounds: Vec<(Nanos, bool, usize)> = Vec::with_capacity(items.len() * 2);
        for (i, &(start, end, _)) in items.iter().enumerate() {
            bounds.push((start, false, i));
            bounds.push((end, true, i));
        }
        bounds.sort_unstable();
        let mut active: BTreeMap<(Nanos, std::cmp::Reverse<Nanos>, usize), usize> = BTreeMap::new();
        let mut union_ns: Nanos = 0;
        let mut prev: Nanos = 0;
        for &(t, is_end, i) in &bounds {
            if t > prev && !active.is_empty() {
                let seg = t - prev;
                union_ns = union_ns.saturating_add(seg);
                if let Some((_, &stat)) = active.iter().next_back() {
                    if let Some(s) = stats.get_mut(stat) {
                        s.self_ns = s.self_ns.saturating_add(seg);
                    }
                }
            }
            prev = t;
            if let Some(&(start, end, stat)) = items.get(i) {
                let key = (start, std::cmp::Reverse(end), i);
                if is_end {
                    active.remove(&key);
                } else {
                    active.insert(key, stat);
                }
            }
        }

        let layers = Layer::ALL
            .iter()
            .filter_map(|&layer| {
                let (calls, self_ns) = stats
                    .iter()
                    .filter(|s| s.layer == layer)
                    .fold((0u64, 0u64), |(c, t), s| {
                        (c.saturating_add(s.calls), t.saturating_add(s.self_ns))
                    });
                (calls > 0).then_some(LayerStat {
                    layer,
                    calls,
                    self_ns,
                })
            })
            .collect();
        SimSpanProfile {
            spans: stats,
            layers,
            union_ns,
        }
    }

    /// Total span instances attributed.
    pub fn calls(&self) -> u64 {
        self.spans
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.calls))
    }

    /// The attribution as a JSON object.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj()
                    .field("layer", Json::str(s.layer.label()))
                    .field("name", Json::str(s.name))
                    .field("calls", Json::u64(s.calls))
                    .field("total_ns", Json::u64(s.total_ns))
                    .field("self_ns", Json::u64(s.self_ns))
            })
            .collect();
        let layers = self
            .layers
            .iter()
            .map(|l| {
                Json::obj()
                    .field("layer", Json::str(l.layer.label()))
                    .field("calls", Json::u64(l.calls))
                    .field("self_ns", Json::u64(l.self_ns))
            })
            .collect();
        Json::obj()
            .field("union_ns", Json::u64(self.union_ns))
            .field("layers", Json::Arr(layers))
            .field("spans", Json::Arr(spans))
    }

    /// Text rendering: per-layer rollup then per-span lines.
    pub fn render(&self) -> String {
        let mut out = format!("simulated window (span union): {} ns\n", self.union_ns);
        for l in &self.layers {
            out.push_str(&format!(
                "  {:<8} self={:<14} calls={}\n",
                l.layer.label(),
                l.self_ns,
                l.calls
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "    {:<8} {:<20} calls={:<8} total={:<14} self={}\n",
                s.layer.label(),
                s.name,
                s.calls,
                s.total_ns,
                s.self_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simobs::Tracer;

    #[test]
    fn tick_clock_is_deterministic() {
        let mut c = TickClock::new(7);
        assert_eq!((c.now_ns(), c.now_ns(), c.now_ns()), (0, 7, 14));
        assert_eq!(NullClock.now_ns(), 0);
        assert_eq!(NullClock.now_ns(), 0);
    }

    #[test]
    fn profiler_rolls_up_both_domains_exactly() {
        // TickClock step 10: every clock reading advances 10 ns.
        let mut p = Profiler::new(Box::new(TickClock::new(10)));
        p.enter("a"); // reads 10 (start a)
        p.add_sim(100);
        p.enter("b"); // reads 20 (start b)
        p.add_sim(30);
        p.exit(); // reads 30: b host = 10
        p.exit(); // reads 40: a host = 30
        p.enter("a"); // reads 50, same node again
        p.exit(); // reads 60: a host += 10
        let r = p.finish(); // reads 70: root host = 70 - 0
        assert_eq!(r.root.name, "total");
        assert_eq!(r.root.host_ns, 70);
        let a = &r.root.children[0];
        assert_eq!((a.name, a.calls, a.host_ns), ("a", 2, 40));
        let b = &a.children[0];
        assert_eq!((b.name, b.host_ns, b.host_self_ns), ("b", 10, 10));
        assert_eq!(a.host_self_ns, 30, "a minus b");
        assert_eq!(r.root.host_self_ns, 30, "root minus a");
        // Sim domain: b self 30, a self 100 → a inclusive 130.
        assert_eq!((a.sim_ns, a.sim_self_ns), (130, 100));
        assert_eq!(r.root.sim_ns, 130);
        // Exclusive host times over the tree sum to the root's inclusive.
        fn sum_self(n: &ProfileNode) -> u64 {
            n.host_self_ns + n.children.iter().map(sum_self).sum::<u64>()
        }
        assert_eq!(sum_self(&r.root), r.root.host_ns);
    }

    #[test]
    fn unbalanced_exits_are_absorbed() {
        let mut p = Profiler::new(Box::new(TickClock::new(1)));
        p.exit();
        p.exit();
        p.enter("x");
        let r = p.finish(); // finish closes the open span
        assert_eq!(r.root.children[0].name, "x");
    }

    #[test]
    fn profiler_output_is_reproducible() {
        let run = || {
            let mut p = Profiler::new(Box::new(TickClock::new(3)));
            for name in ["io", "compute", "io"] {
                p.enter(name);
                p.add_sim(11);
                p.exit();
            }
            p.finish()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    fn traced(f: impl FnOnce(&mut Tracer)) -> TraceLog {
        let mut obs = Tracer::ring(4096);
        f(&mut obs);
        obs.finish()
    }

    #[test]
    fn sim_profile_self_times_sum_to_the_union() {
        let log = traced(|obs| {
            // outer [0,100] containing two children [10,30] and [20,60]
            // (overlapping siblings), plus a disjoint root span [200,250].
            obs.span(Layer::Run, "outer", 0, 100, simobs::sink::NO_EVENT_ARGS);
            obs.span(Layer::Ssd, "c1", 10, 30, simobs::sink::NO_EVENT_ARGS);
            obs.span(Layer::Ssd, "c2", 20, 60, simobs::sink::NO_EVENT_ARGS);
            obs.span(Layer::Run, "tail", 200, 250, simobs::sink::NO_EVENT_ARGS);
        });
        let prof = SimSpanProfile::build(&log);
        assert_eq!(prof.union_ns, 150, "[0,100] ∪ [200,250]");
        let self_sum: u64 = prof.spans.iter().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, prof.union_ns, "exact attribution");
        let outer = prof
            .spans
            .iter()
            .find(|s| s.name == "outer")
            .copied()
            .unwrap();
        // children cover [10,60]: 50 ns of outer's 100 are not self.
        assert_eq!(outer.self_ns, 50);
        let c1 = prof.spans.iter().find(|s| s.name == "c1").copied().unwrap();
        let c2 = prof.spans.iter().find(|s| s.name == "c2").copied().unwrap();
        // The sibling overlap [20,30) belongs to c2 (latest start wins),
        // so it is counted exactly once.
        assert_eq!(c1.self_ns, 10, "c1 keeps [10,20) only");
        assert_eq!(c2.self_ns, 40, "c2 owns [20,60)");
    }

    #[test]
    fn sim_profile_layers_roll_up_in_track_order() {
        let log = traced(|obs| {
            obs.span(Layer::Link, "dma", 0, 10, simobs::sink::NO_EVENT_ARGS);
            obs.span(Layer::Media, "op", 20, 40, simobs::sink::NO_EVENT_ARGS);
            obs.instant(Layer::Run, "marker", 5, simobs::sink::NO_EVENT_ARGS);
        });
        let prof = SimSpanProfile::build(&log);
        let labels: Vec<&str> = prof.layers.iter().map(|l| l.layer.label()).collect();
        assert_eq!(
            labels,
            vec!["media", "link"],
            "Layer::ALL order, instants ignored"
        );
        assert_eq!(prof.union_ns, 30);
        assert_eq!(prof.calls(), 2);
    }

    #[test]
    fn sim_profile_is_deterministic_and_json_clean() {
        let build = || {
            let log = traced(|obs| {
                for i in 0..50u64 {
                    obs.span(
                        Layer::Ssd,
                        "req",
                        i * 100,
                        i * 100 + 90,
                        simobs::sink::NO_EVENT_ARGS,
                    );
                    obs.span(
                        Layer::Media,
                        "die",
                        i * 100 + 10,
                        i * 100 + 50,
                        simobs::sink::NO_EVENT_ARGS,
                    );
                }
            });
            SimSpanProfile::build(&log)
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        let text = a.to_json().render();
        assert_eq!(text, b.to_json().render());
        assert!(simobs::json::parse(&text).is_ok(), "valid JSON");
    }

    #[test]
    fn partial_overlap_is_clamped_not_negative() {
        let log = traced(|obs| {
            obs.span(Layer::Run, "a", 0, 50, simobs::sink::NO_EVENT_ARGS);
            // starts inside a, ends beyond it
            obs.span(Layer::Ssd, "b", 40, 120, simobs::sink::NO_EVENT_ARGS);
        });
        let prof = SimSpanProfile::build(&log);
        for s in &prof.spans {
            assert!(s.self_ns <= s.total_ns, "{}: self within total", s.name);
        }
        let a = prof.spans.iter().find(|s| s.name == "a").copied().unwrap();
        assert_eq!(a.self_ns, 40, "a keeps [0,40); [40,50) goes to b");
    }
}
