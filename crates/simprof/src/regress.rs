//! Baseline comparison for the committed bench report.
//!
//! A bench report (`results/BENCH_core.json`, schema `oocnvm.bench/1`)
//! splits into two subtrees with different contracts:
//!
//! * `"pinned"` — simulated results and invariant checks: integers and
//!   booleans only, compared **byte-exactly**. Any drift here means the
//!   simulation changed, which a perf PR must not do silently.
//! * `"host"` — wall-clock measurements: inherently noisy, so only
//!   `host.wall_ms.total` is checked, against a generous tolerance band
//!   above the baseline (regressions fail; speedups always pass).
//!
//! [`compare`] returns the list of violations — empty means the current
//! report is acceptable against the baseline.

use simobs::json::{parse, Json};

/// Compares `current` bench-report text against `baseline` text.
///
/// `tol_pct` is the allowed host-time regression in percent: the check
/// fails when `current host.wall_ms.total > baseline × (1 + tol_pct/100)`.
/// Returns human-readable violations, empty when the reports agree.
pub fn compare(baseline: &str, current: &str, tol_pct: u64) -> Vec<String> {
    let mut out = Vec::new();
    let base = match parse(baseline) {
        Ok(v) => v,
        Err(e) => {
            out.push(format!("baseline is not valid JSON: {e}"));
            return out;
        }
    };
    let cur = match parse(current) {
        Ok(v) => v,
        Err(e) => {
            out.push(format!("current report is not valid JSON: {e}"));
            return out;
        }
    };
    if base.get("format") != cur.get("format") {
        out.push(format!(
            "schema mismatch: baseline {:?} vs current {:?}",
            text_of(base.get("format")),
            text_of(cur.get("format"))
        ));
        return out;
    }
    match (base.get("pinned"), cur.get("pinned")) {
        (Some(b), Some(c)) => diff_exact("pinned", b, c, &mut out),
        (None, None) => out.push("no \"pinned\" subtree in either report".to_string()),
        (Some(_), None) => out.push("current report lost the \"pinned\" subtree".to_string()),
        (None, Some(_)) => out.push("baseline has no \"pinned\" subtree".to_string()),
    }
    match (wall_total(&base), wall_total(&cur)) {
        (Some(b), Some(c)) => {
            // Integer-safe band: c ≤ b * (100 + tol) / 100, in f64 only
            // for the final comparison (both sides parsed from text).
            let limit = b * (100.0 + approx(tol_pct)) / 100.0;
            if c > limit {
                out.push(format!(
                    "host wall_ms.total regressed: {c} > {b} + {tol_pct}% (limit {limit:.1})"
                ));
            }
        }
        (None, _) => out.push("baseline lacks host.wall_ms.total".to_string()),
        (_, None) => out.push("current report lacks host.wall_ms.total".to_string()),
    }
    out
}

/// `u64` → `f64` without a bare cast (tolerances are small integers).
fn approx(v: u64) -> f64 {
    nvmtypes::convert::approx_f64(v)
}

/// The `host.wall_ms.total` number, parsed.
fn wall_total(doc: &Json) -> Option<f64> {
    match doc.get("host")?.get("wall_ms")?.get("total")? {
        Json::Num(n) => n.parse().ok(),
        _ => None,
    }
}

fn text_of(v: Option<&Json>) -> String {
    v.map(Json::render)
        .unwrap_or_else(|| "<missing>".to_string())
}

/// Recursively requires `b == c`, reporting every divergence with its
/// path. Numbers compare by rendered text — the pinned subtree is
/// integers and booleans, where textual equality *is* value equality.
fn diff_exact(path: &str, b: &Json, c: &Json, out: &mut Vec<String>) {
    match (b, c) {
        (Json::Obj(bf), Json::Obj(cf)) => {
            for (k, bv) in bf {
                match c.get(k) {
                    Some(cv) => diff_exact(&format!("{path}.{k}"), bv, cv, out),
                    None => out.push(format!("{path}.{k}: missing from current report")),
                }
            }
            for (k, _) in cf {
                if b.get(k).is_none() {
                    out.push(format!("{path}.{k}: not in baseline (new field?)"));
                }
            }
        }
        (Json::Arr(bi), Json::Arr(ci)) => {
            if bi.len() != ci.len() {
                out.push(format!(
                    "{path}: length {} vs baseline {}",
                    ci.len(),
                    bi.len()
                ));
                return;
            }
            for (i, (bv, cv)) in bi.iter().zip(ci).enumerate() {
                diff_exact(&format!("{path}[{i}]"), bv, cv, out);
            }
        }
        _ => {
            if b != c {
                out.push(format!("{path}: {} vs baseline {}", c.render(), b.render()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pinned_x: u64, wall: &str) -> String {
        format!(
            "{{\"format\":\"oocnvm.bench/1\",\"pinned\":{{\"x\":{pinned_x},\"ok\":true}},\
             \"host\":{{\"wall_ms\":{{\"total\":{wall}}}}}}}"
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(7, "120");
        assert!(compare(&r, &r, 150).is_empty());
    }

    #[test]
    fn pinned_drift_is_exact_and_pathed() {
        let v = compare(&report(7, "120"), &report(8, "120"), 150);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("pinned.x"), "{v:?}");
        assert!(v[0].contains('8') && v[0].contains('7'), "{v:?}");
    }

    #[test]
    fn host_time_gets_a_band_not_equality() {
        // 2.5x the baseline is within a 150% tolerance.
        assert!(compare(&report(1, "100"), &report(1, "250"), 150).is_empty());
        // 2.6x is not.
        let v = compare(&report(1, "100"), &report(1, "260"), 150);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"), "{v:?}");
        // Speedups always pass.
        assert!(compare(&report(1, "100"), &report(1, "1"), 0).is_empty());
    }

    #[test]
    fn structural_changes_are_reported() {
        let missing = "{\"format\":\"oocnvm.bench/1\",\"host\":{\"wall_ms\":{\"total\":1}}}";
        let v = compare(&report(1, "1"), missing, 150);
        assert!(v.iter().any(|m| m.contains("pinned")), "{v:?}");
        let other_schema = report(1, "1").replace("bench/1", "bench/2");
        let v = compare(&report(1, "1"), &other_schema, 150);
        assert!(v.iter().any(|m| m.contains("schema mismatch")), "{v:?}");
        let v = compare("not json", &report(1, "1"), 150);
        assert!(v[0].contains("baseline"), "{v:?}");
    }

    #[test]
    fn extra_and_missing_fields_both_flagged() {
        let base =
            "{\"format\":\"f\",\"pinned\":{\"a\":1,\"b\":2},\"host\":{\"wall_ms\":{\"total\":1}}}";
        let cur =
            "{\"format\":\"f\",\"pinned\":{\"a\":1,\"c\":3},\"host\":{\"wall_ms\":{\"total\":1}}}";
        let v = compare(base, cur, 150);
        assert!(v.iter().any(|m| m.contains("pinned.b")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("pinned.c")), "{v:?}");
    }
}
