//! Half-open time-interval utilities used by the utilization accounting.

use nvmtypes::Nanos;

/// A half-open busy interval `[start, end)`.
pub type Interval = (Nanos, Nanos);

/// Sorts and merges overlapping/adjacent intervals in place, returning the
/// merged set (ascending, disjoint).
pub fn merge(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|&(s, e)| e > s);
    intervals.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total covered length of a set of (not necessarily disjoint) intervals.
pub fn union_len(intervals: Vec<Interval>) -> Nanos {
    merge(intervals).iter().map(|&(s, e)| e - s).sum()
}

/// Length of `[s, e)` that is *not* covered by the merged set `cover`
/// (which must be sorted and disjoint, as returned by [`merge`]).
pub fn uncovered_len(s: Nanos, e: Nanos, cover: &[Interval]) -> Nanos {
    if e <= s {
        return 0;
    }
    // Find the first covering interval that could overlap [s, e).
    let mut idx = cover.partition_point(|&(_, ce)| ce <= s);
    let mut covered = 0;
    let mut cursor = s;
    while idx < cover.len() {
        let (cs, ce) = cover[idx];
        if cs >= e {
            break;
        }
        let lo = cs.max(cursor);
        let hi = ce.min(e);
        if hi > lo {
            covered += hi - lo;
            cursor = hi;
        }
        idx += 1;
    }
    (e - s) - covered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_overlapping() {
        let m = merge(vec![(5, 10), (0, 6), (20, 30), (10, 12)]);
        assert_eq!(m, vec![(0, 12), (20, 30)]);
    }

    #[test]
    fn merge_drops_empty() {
        let m = merge(vec![(5, 5), (1, 2)]);
        assert_eq!(m, vec![(1, 2)]);
    }

    #[test]
    fn union_len_counts_overlap_once() {
        assert_eq!(union_len(vec![(0, 10), (5, 15)]), 15);
        assert_eq!(union_len(vec![]), 0);
    }

    #[test]
    fn uncovered_basic() {
        let cover = merge(vec![(10, 20), (30, 40)]);
        // [0, 50): covered 10..20 and 30..40 => 20 covered, 30 uncovered.
        assert_eq!(uncovered_len(0, 50, &cover), 30);
        // Fully covered span.
        assert_eq!(uncovered_len(12, 18, &cover), 0);
        // Fully uncovered span.
        assert_eq!(uncovered_len(20, 30, &cover), 10);
        // Empty span.
        assert_eq!(uncovered_len(20, 20, &cover), 0);
    }

    #[test]
    fn uncovered_partial_edges() {
        let cover = merge(vec![(10, 20)]);
        assert_eq!(uncovered_len(5, 15, &cover), 5);
        assert_eq!(uncovered_len(15, 25, &cover), 5);
    }
}
