//! Media-side configuration of the simulated device.

use nvmtypes::{BusTiming, MediaTiming, NvmKind, SsdGeometry};
use serde::Serialize;

/// Complete description of the media side of a simulated SSD: structure,
/// Table-1 timing, and channel-bus speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MediaConfig {
    /// Structural geometry (channels / packages / dies / planes).
    pub geometry: SsdGeometry,
    /// Per-medium operation latencies.
    pub timing: MediaTiming,
    /// Channel (ONFi-style) bus speed.
    pub bus: BusTiming,
    /// Cache-register reads: with a second page register, the die is free
    /// to start its next sense while the previous page drains over the
    /// bus (an SSD-architecture ablation; off by default, matching
    /// plain ONFi read timing).
    pub cache_registers: bool,
}

impl MediaConfig {
    /// The paper's device for a given medium on a given bus: 8 channels,
    /// 64 packages, 128 dies (§4.1).
    pub fn paper(kind: NvmKind, bus: BusTiming) -> MediaConfig {
        MediaConfig {
            geometry: SsdGeometry::paper(kind),
            timing: MediaTiming::table1(kind),
            bus,
            cache_registers: false,
        }
    }

    /// A tiny configuration for unit tests (2 channels, 8 dies).
    pub fn tiny(kind: NvmKind, bus: BusTiming) -> MediaConfig {
        MediaConfig {
            geometry: SsdGeometry::tiny(),
            timing: MediaTiming::table1(kind),
            bus,
            cache_registers: false,
        }
    }

    /// Time for one page to cross the channel bus, ns.
    pub fn page_transfer_ns(&self) -> nvmtypes::Nanos {
        self.bus.transfer_ns(u64::from(self.timing.page_size))
    }

    /// Aggregate cell-level read bandwidth of all dies with all planes
    /// streaming, bytes/ns. This is the "NVM media" capability that the
    /// bandwidth-remaining metric measures headroom against.
    pub fn cell_aggregate_read_bw(&self) -> f64 {
        self.timing.die_read_bw(self.geometry.planes_per_die)
            * f64::from(self.geometry.total_dies())
    }

    /// Aggregate channel-bus bandwidth, bytes/ns.
    pub fn bus_aggregate_bw(&self) -> f64 {
        self.bus.bytes_per_ns * f64::from(self.geometry.channels)
    }

    /// The device's deliverable media read bandwidth: the lesser of cell
    /// and bus aggregates.
    pub fn media_read_bw(&self) -> f64 {
        self.cell_aggregate_read_bw().min(self.bus_aggregate_bw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdr400() -> BusTiming {
        BusTiming {
            name: "ONFi3-SDR-400",
            bytes_per_ns: 0.4,
        }
    }

    #[test]
    fn paper_tlc_aggregates() {
        let cfg = MediaConfig::paper(NvmKind::Tlc, sdr400());
        // Cell: 128 dies * 2 planes * 8 KiB / 150 µs ≈ 13.98 B/ns ≈ 14 GB/s.
        let cell = cfg.cell_aggregate_read_bw();
        assert!((cell - 128.0 * 2.0 * 8192.0 / 150_000.0).abs() < 1e-9);
        // Bus: 8 * 0.4 = 3.2 B/ns; bus is the binding constraint for reads.
        assert!((cfg.bus_aggregate_bw() - 3.2).abs() < 1e-12);
        assert!((cfg.media_read_bw() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn tlc_page_transfer_on_onfi3() {
        let cfg = MediaConfig::paper(NvmKind::Tlc, sdr400());
        assert_eq!(cfg.page_transfer_ns(), 20_480);
    }

    #[test]
    fn pcm_is_cell_rich() {
        let cfg = MediaConfig::paper(NvmKind::Pcm, sdr400());
        // PCM cell aggregate dwarfs any bus: media bw is bus-limited.
        assert!(cfg.cell_aggregate_read_bw() > 10.0 * cfg.bus_aggregate_bw());
        assert!((cfg.media_read_bw() - cfg.bus_aggregate_bw()).abs() < 1e-12);
    }
}
