//! # flashsim — transaction-accurate NVM media timing simulator
//!
//! This crate is the workspace's substitute for **NANDFlashSim** (Jung et
//! al., MSST '12), the simulation framework the paper drives all its
//! evaluation with (§4.1). It models the structural hierarchy of an SSD's
//! media side at nanosecond resolution:
//!
//! ```text
//! channel bus (ONFi SDR-400 or DDR-800)
//!   └── packages            (flash bus / command overhead)
//!         └── dies          (serially-reusable: one op at a time)
//!               └── planes  (concurrent cell arrays: multi-plane ops)
//! ```
//!
//! Timing comes straight from Table 1 ([`nvmtypes::MediaTiming`]),
//! including the LSB/CSB/MSB program-latency variation of MLC/TLC NAND and
//! the PCM read-latency spread — the "intrinsic latency variation" that
//! NANDFlashSim is built around.
//!
//! The simulator executes [`DieOp`]s — multi-page, possibly multi-plane
//! operations on one die — with a resource-reservation discipline: each die
//! and each channel is a serially reusable resource with a `free_at` time,
//! and an operation's schedule is derived from `max()` recurrences over the
//! resources it needs. Cell work overlaps bus transfers exactly as in
//! pipelined NAND reads (the die senses batch *i+1* while batch *i* drains
//! over the bus).
//!
//! While executing, the simulator attributes every nanosecond of resource
//! time to the six execution-state buckets of Figure 10:
//!
//! * non-overlapped DMA (filled in by the `ssd` crate's host model),
//! * flash-bus activation (command/address/register movement),
//! * channel-bus activation (data movement on the shared bus),
//! * cell contention (waiting on a busy die),
//! * channel contention (waiting on a busy bus),
//! * cell activation (the read/program/erase itself),
//!
//! and records per-die busy intervals from which channel-level and
//! package-level utilization (Figure 9) and the "bandwidth remaining"
//! headroom metric (Figures 7b/8b) are computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod intervals;
pub mod op;
pub mod stats;

pub use config::MediaConfig;
pub use energy::EnergyReport;
pub use engine::{DieOpOutcome, MediaSim};
pub use fault::{MediaFaultState, ReadFaultSample};
pub use op::{DieOp, OpKind};
pub use stats::{ExecBreakdown, MediaReport, PalHistogram, PalLevel};
