//! Energy accounting over a finished run — the quantitative side of the
//! paper's power motivation (§1: distributed DRAM + networks cost "high
//! energy use ... over time"; SSDs are "low-power").

use crate::config::MediaConfig;
use crate::stats::RawStats;
use nvmtypes::convert::approx_f64;
use nvmtypes::{MediaEnergy, Nanos};
use serde::Serialize;

/// Energy totals for one run, all in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyReport {
    /// Sensing energy.
    pub read_mj: f64,
    /// Programming energy.
    pub program_mj: f64,
    /// Erase energy.
    pub erase_mj: f64,
    /// Channel-bus transfer energy.
    pub bus_mj: f64,
    /// Static (idle + background) energy of all dies over the makespan.
    pub static_mj: f64,
    /// Payload bytes the energy was spent on.
    pub bytes: u64,
}

impl EnergyReport {
    /// Dynamic + static total, mJ.
    pub fn total_mj(&self) -> f64 {
        self.read_mj + self.program_mj + self.erase_mj + self.bus_mj + self.static_mj
    }

    /// Energy efficiency, nanojoules per payload byte.
    pub fn nj_per_byte(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.total_mj() * 1e6 / approx_f64(self.bytes)
        }
    }

    /// Mean power over the run, watts.
    pub fn mean_power_w(&self, makespan: Nanos) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            // mJ / ns = MW; convert to W.
            self.total_mj() / approx_f64(makespan) * 1e9 * 1e-3
        }
    }
}

/// Assesses the energy of a finished run from its raw media accounting.
pub fn assess(stats: &RawStats, cfg: &MediaConfig, makespan: Nanos) -> EnergyReport {
    let e = MediaEnergy::typical(cfg.timing.kind);
    let page = u64::from(cfg.timing.page_size);
    let pages_read = stats.bytes_read / page;
    let pages_written = stats.bytes_written / page;
    let moved = stats.bytes_read + stats.bytes_written;
    let dies = f64::from(cfg.geometry.total_dies());
    EnergyReport {
        read_mj: approx_f64(pages_read) * e.read_nj_per_page * 1e-6,
        program_mj: approx_f64(pages_written) * e.program_nj_per_page * 1e-6,
        erase_mj: approx_f64(stats.blocks_erased) * e.erase_nj_per_block * 1e-6,
        bus_mj: approx_f64(moved) * e.bus_nj_per_byte * 1e-6,
        // idle_mw_per_die * dies * seconds -> mJ.
        static_mj: e.idle_mw_per_die * dies * (approx_f64(makespan) * 1e-9),
        bytes: moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MediaSim;
    use crate::op::DieOp;
    use nvmtypes::{BusTiming, DieIndex, NvmKind};

    fn run_reads(kind: NvmKind, ops: u64) -> (RawStats, MediaConfig, Nanos) {
        let cfg = MediaConfig::tiny(
            kind,
            BusTiming {
                name: "t",
                bytes_per_ns: 0.4,
            },
        );
        let mut sim = MediaSim::new(cfg);
        let mut end = 0;
        for i in 0..ops {
            let out = sim.execute(0, &DieOp::read(DieIndex((i % 8) as u32), 2, 4, 0));
            end = end.max(out.end);
        }
        (sim.into_stats(), cfg, end)
    }

    #[test]
    fn read_energy_scales_with_pages() {
        let (s1, cfg, m1) = run_reads(NvmKind::Tlc, 4);
        let (s2, _, m2) = run_reads(NvmKind::Tlc, 8);
        let a = assess(&s1, &cfg, m1);
        let b = assess(&s2, &cfg, m2);
        assert!((b.read_mj / a.read_mj - 2.0).abs() < 1e-9);
        assert!(b.total_mj() > a.total_mj());
    }

    #[test]
    fn pcm_reads_use_less_dynamic_energy_than_tlc() {
        // Same payload bytes on both media.
        let (st, ct, mt) = run_reads(NvmKind::Tlc, 8); // 8 * 4 * 8 KiB
        let cfgp = MediaConfig::tiny(
            NvmKind::Pcm,
            BusTiming {
                name: "t",
                bytes_per_ns: 0.4,
            },
        );
        let mut simp = MediaSim::new(cfgp);
        let mut endp = 0;
        for i in 0..8u64 {
            // 512 PCM pages = 32 KiB, matching one TLC op's payload.
            let out = simp.execute(0, &DieOp::read(DieIndex((i % 8) as u32), 2, 512, 0));
            endp = endp.max(out.end);
        }
        let tlc = assess(&st, &ct, mt);
        let pcm = assess(&simp.into_stats(), &cfgp, endp);
        assert_eq!(tlc.bytes, pcm.bytes);
        let dyn_tlc = tlc.read_mj + tlc.bus_mj;
        let dyn_pcm = pcm.read_mj + pcm.bus_mj;
        assert!(dyn_pcm < dyn_tlc, "pcm {dyn_pcm} vs tlc {dyn_tlc}");
    }

    #[test]
    fn erase_energy_counted() {
        let cfg = MediaConfig::tiny(
            NvmKind::Slc,
            BusTiming {
                name: "t",
                bytes_per_ns: 0.4,
            },
        );
        let mut sim = MediaSim::new(cfg);
        let out = sim.execute(0, &DieOp::erase(DieIndex(0), 3));
        let rep = assess(sim.stats(), &cfg, out.end);
        assert!((rep.erase_mj - 3.0 * 1.2).abs() < 1e-9);
    }

    #[test]
    fn power_and_efficiency_are_finite_and_positive() {
        let (s, cfg, m) = run_reads(NvmKind::Mlc, 16);
        let rep = assess(&s, &cfg, m);
        assert!(rep.nj_per_byte() > 0.0 && rep.nj_per_byte().is_finite());
        assert!(rep.mean_power_w(m) > 0.0 && rep.mean_power_w(m).is_finite());
    }
}
