//! The media timing engine: executes [`DieOp`]s against the die/channel
//! resource model with full pipelining and contention accounting.

use crate::config::MediaConfig;
use crate::op::{DieOp, OpKind};
use crate::stats::RawStats;
use nvmtypes::convert::usize_from_u32;
use nvmtypes::Nanos;
use std::collections::BTreeMap;

/// Memo key for a die-op's cell time: `(op tag, planes, pages, phase)`.
/// The phase is `start_page % page-class cycle length` for writes (the
/// only component of `start_page` that [`DieOp::cell_time`] depends on)
/// and 0 for reads/erases, which ignore `start_page` entirely.
type CellTimeKey = (u8, u32, u64, u64);

/// Start/end times of one executed die-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieOpOutcome {
    /// When the die began serving the op (after any die-busy wait).
    pub start: Nanos,
    /// When the op fully completed (data transferred / programmed / erased).
    pub end: Nanos,
}

/// Transaction-accurate media simulator.
///
/// Dies and channel buses are serially reusable resources; an operation's
/// schedule is derived from `max()` recurrences over its resources'
/// `free_at` times. Within a read, cell sensing pipelines with channel
/// transfers: the die senses batch *i+1* while batch *i* drains over the
/// bus, so a production-limited stream finishes at
/// `cell_end + one_batch_transfer`, while a bus-limited stream finishes
/// when its channel reservation drains.
///
/// ```
/// use flashsim::{DieOp, MediaConfig, MediaSim};
/// use nvmtypes::{BusTiming, DieIndex, NvmKind};
///
/// let bus = BusTiming { name: "ONFi3-SDR-400", bytes_per_ns: 0.4 };
/// let mut sim = MediaSim::new(MediaConfig::paper(NvmKind::Tlc, bus));
/// // Read one 8 KiB TLC page: 150 us sense + command + 20.48 us transfer.
/// let out = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
/// assert_eq!(out.end, 150_000 + 300 + 20_480);
/// ```
#[derive(Debug, Clone)]
pub struct MediaSim {
    cfg: MediaConfig,
    /// Channel occupancy of one page transfer, precomputed from the
    /// configuration (it never changes over the simulator's lifetime).
    page_xfer: Nanos,
    /// Cell-time memo: media timing is fixed per simulator, so a die-op's
    /// cell time is a pure function of its [`CellTimeKey`]. Sweep
    /// workloads replay millions of ops drawn from a handful of shapes;
    /// caching skips the per-op interval math on every repeat.
    cell_time_cache: BTreeMap<CellTimeKey, Nanos>,
    chan_free: Vec<Nanos>,
    die_free: Vec<Nanos>,
    /// Busy duration of the most recent op per die — bounds how much wait
    /// is attributed as cell contention (an op can only actively wait on
    /// the op currently in service; deeper backlog is host queueing, not a
    /// media state).
    die_last_busy: Vec<Nanos>,
    /// Most recent bus occupancy per channel, for the same reason.
    chan_last_xfer: Vec<Nanos>,
    /// Current arbitration tag: when set, every executed die-op is also
    /// attributed to this tag in [`RawStats::tag_busy`]. Pure accounting —
    /// the schedule itself is tag-blind, so tagged and untagged runs of
    /// the same op stream are byte-identical.
    arb_tag: Option<u32>,
    stats: RawStats,
}

impl MediaSim {
    /// New simulator for the given media configuration.
    pub fn new(mut cfg: MediaConfig) -> MediaSim {
        debug_assert!(cfg.geometry.validate().is_ok(), "invalid geometry");
        cfg.geometry = cfg.geometry.sanitized();
        let channels = usize_from_u32(cfg.geometry.channels);
        let dies = usize_from_u32(cfg.geometry.total_dies());
        let page_xfer = cfg.page_transfer_ns();
        MediaSim {
            cfg,
            page_xfer,
            cell_time_cache: BTreeMap::new(),
            chan_free: vec![0; channels],
            die_free: vec![0; dies],
            die_last_busy: vec![0; dies],
            chan_last_xfer: vec![0; channels],
            arb_tag: None,
            stats: RawStats::new(channels, dies),
        }
    }

    /// Sets (or clears) the arbitration tag attributed to subsequent
    /// die-ops. The QoS layer brackets each tenant's media dispatch with
    /// `set_arbitration_tag(Some(tenant))` / `set_arbitration_tag(None)`;
    /// the engine only records the tag, never schedules by it.
    pub fn set_arbitration_tag(&mut self, tag: Option<u32>) {
        self.arb_tag = tag;
    }

    /// The currently set arbitration tag, if any.
    pub fn arbitration_tag(&self) -> Option<u32> {
        self.arb_tag
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &MediaConfig {
        &self.cfg
    }

    /// Accumulated raw accounting.
    pub fn stats(&self) -> &RawStats {
        &self.stats
    }

    /// Consumes the simulator, returning its raw accounting.
    pub fn into_stats(self) -> RawStats {
        self.stats
    }

    /// [`DieOp::cell_time`] through the memo cache. Byte-identical to the
    /// uncached call: the key captures every input the computation reads.
    fn cell_time_memo(&mut self, op: &DieOp) -> Nanos {
        let t = &self.cfg.timing;
        let (tag, phase) = match op.kind {
            OpKind::Read => (0u8, 0),
            OpKind::Erase => (2u8, 0),
            OpKind::Write => {
                let cycle_len: u64 = match t.kind {
                    nvmtypes::NvmKind::Slc | nvmtypes::NvmKind::Pcm => 1,
                    nvmtypes::NvmKind::Mlc => 2,
                    nvmtypes::NvmKind::Tlc => 3,
                };
                (1u8, op.start_page % cycle_len)
            }
        };
        let key = (tag, op.planes, op.pages, phase);
        if let Some(&cached) = self.cell_time_cache.get(&key) {
            return cached;
        }
        let computed = op.cell_time(t);
        self.cell_time_cache.insert(key, computed);
        computed
    }

    /// Executes one die-op arriving at `arrival`, returning its schedule.
    ///
    /// # Panics
    /// Panics if the op names a die outside the geometry, more planes than
    /// the die has, or zero pages.
    pub fn execute(&mut self, arrival: Nanos, op: &DieOp) -> DieOpOutcome {
        let g = &self.cfg.geometry;
        assert!(op.die.0 < g.total_dies(), "die {} out of range", op.die.0);
        assert!(
            op.planes >= 1 && op.planes <= g.planes_per_die,
            "plane count {} out of range",
            op.planes
        );
        assert!(op.pages >= 1, "die-op must move at least one page/block");

        let die = usize_from_u32(op.die.0);
        let ch = usize_from_u32(op.die.channel(g));
        let page_xfer = self.page_xfer;
        let batches = op.batches();
        let cell_total = self.cell_time_memo(op);
        let t = &self.cfg.timing;
        let payload = op.pages * u64::from(t.page_size);

        let t_start = arrival.max(self.die_free[die]);
        let cell_wait = (t_start - arrival).min(self.die_last_busy[die]);
        self.stats.cell_contention += cell_wait;

        // NAND pays command/address cycles per multi-plane batch; PCM sits
        // behind a NOR-flash-like burst interface (§2.3) and pays one
        // command phase per contiguous run.
        let cmd_units = if t.kind.is_nand() { batches } else { 1 };

        let outcome = match op.kind {
            OpKind::Read => {
                let x = op.pages * page_xfer;
                let f = cmd_units * t.t_cmd;
                // First batch ready after one sense.
                let first_ready = t_start + t.t_read;
                let chan_start = first_ready.max(self.chan_free[ch]);
                self.stats.channel_contention +=
                    (chan_start - first_ready).min(self.chan_last_xfer[ch]);
                let bus_end = chan_start + x + f;
                let prod_end = t_start + cell_total;
                let tail = op.pages.min(u64::from(op.planes)) * page_xfer;
                let end = bus_end.max(prod_end + tail);
                self.chan_free[ch] = bus_end;
                self.chan_last_xfer[ch] = x + f;
                self.stats.chan_busy[ch] += x + f;
                self.stats.channel_activation += x;
                self.stats.flash_bus_activation += f;
                self.stats.cell_activation += cell_total;
                self.stats.bytes_read += payload;
                // With cache registers the die re-arms as soon as the last
                // sense lands in the spare register; otherwise it holds its
                // registers until the bus drains.
                self.die_free[die] = if self.cfg.cache_registers {
                    prod_end.max(t_start + t.t_read)
                } else {
                    end
                };
                DieOpOutcome {
                    start: t_start,
                    end,
                }
            }
            OpKind::Write => {
                let x = op.pages * page_xfer;
                let f = cmd_units * t.t_cmd;
                let chan_start = t_start.max(self.chan_free[ch]);
                self.stats.channel_contention +=
                    (chan_start - t_start).min(self.chan_last_xfer[ch]);
                let bus_end = chan_start + x + f;
                // Programming of the first batch starts once its pages are in
                // the die's registers.
                let first_in =
                    chan_start + t.t_cmd + op.pages.min(u64::from(op.planes)) * page_xfer;
                let end = bus_end.max(first_in + cell_total);
                self.chan_free[ch] = bus_end;
                self.chan_last_xfer[ch] = x + f;
                self.stats.chan_busy[ch] += x + f;
                self.stats.channel_activation += x;
                self.stats.flash_bus_activation += f;
                self.stats.cell_activation += cell_total;
                self.stats.bytes_written += payload;
                self.die_free[die] = end;
                DieOpOutcome {
                    start: t_start,
                    end,
                }
            }
            OpKind::Erase => {
                // No data on the channel; only a command handshake.
                let f = t.t_cmd;
                let end = t_start + f + cell_total;
                self.stats.flash_bus_activation += f;
                self.stats.cell_activation += cell_total;
                self.stats.blocks_erased += op.pages;
                self.die_free[die] = end;
                DieOpOutcome {
                    start: t_start,
                    end,
                }
            }
        };

        self.die_last_busy[die] = outcome.end - outcome.start;
        self.stats.die_busy[die] += outcome.end - outcome.start;
        self.stats
            .die_intervals
            .push((op.die.0, outcome.start, outcome.end));
        self.stats.ops += 1;
        if let Some(tag) = self.arb_tag {
            let t = self.stats.tag_busy.entry(tag).or_default();
            t.busy_ns += outcome.end - outcome.start;
            t.ops += 1;
            t.bytes += match op.kind {
                OpKind::Read | OpKind::Write => payload,
                OpKind::Erase => 0,
            };
        }
        outcome
    }

    /// [`MediaSim::execute`] plus a [`simobs::Layer::Media`] span over the
    /// die's service window when tracing is enabled. The tracer observes
    /// the already-computed schedule and feeds nothing back, so enabling
    /// it cannot change any outcome.
    ///
    /// # Panics
    /// Same conditions as [`MediaSim::execute`].
    pub fn execute_traced(
        &mut self,
        arrival: Nanos,
        op: &DieOp,
        obs: &mut simobs::Tracer,
    ) -> DieOpOutcome {
        let out = self.execute(arrival, op);
        if obs.enabled() {
            let name = match op.kind {
                OpKind::Read => "die_read",
                OpKind::Write => "die_write",
                OpKind::Erase => "die_erase",
            };
            obs.span(
                simobs::Layer::Media,
                name,
                out.start,
                out.end,
                [("die", u64::from(op.die.0)), ("pages", op.pages)],
            );
            // Throughput counters for the profiler: ops and busy-ns per
            // media op kind, cheap integer adds behind the enabled gate.
            obs.count("media.die_ops", 1);
            obs.count("media.pages", op.pages);
            obs.count("media.busy_ns", out.end.saturating_sub(out.start));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::{BusTiming, DieIndex, NvmKind};

    fn sdr400() -> BusTiming {
        BusTiming {
            name: "ONFi3-SDR-400",
            bytes_per_ns: 0.4,
        }
    }

    fn tlc_sim() -> MediaSim {
        MediaSim::new(MediaConfig::tiny(NvmKind::Tlc, sdr400()))
    }

    #[test]
    fn single_page_read_timing() {
        // TLC, 1 page: sense 150 µs, then cmd 300 ns + transfer 20480 ns.
        let mut sim = tlc_sim();
        let out = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        assert_eq!(out.start, 0);
        assert_eq!(out.end, 150_000 + 20_480 + 300);
        assert_eq!(sim.stats().cell_activation, 150_000);
        assert_eq!(sim.stats().channel_activation, 20_480);
        assert_eq!(sim.stats().flash_bus_activation, 300);
        assert_eq!(sim.stats().bytes_read, 8192);
    }

    #[test]
    fn multi_plane_read_is_production_limited_on_tlc() {
        // 4 pages, 2 planes: cell = 2 * 150 µs; bus = 4 * 20480 + 600.
        // Production-limited: end = 300000 + min(4,2)*20480 = 340960.
        let mut sim = tlc_sim();
        let out = sim.execute(0, &DieOp::read(DieIndex(0), 2, 4, 0));
        assert_eq!(out.end, 340_960);
    }

    #[test]
    fn multiplane_halves_cell_time() {
        let mut one = tlc_sim();
        let mut two = tlc_sim();
        let a = one.execute(0, &DieOp::read(DieIndex(0), 1, 8, 0));
        let b = two.execute(0, &DieOp::read(DieIndex(0), 2, 8, 0));
        assert!(b.end < a.end);
        assert_eq!(one.stats().cell_activation, 2 * two.stats().cell_activation);
    }

    #[test]
    fn two_dies_same_channel_pipeline() {
        // Dies 0 and 2 share channel 0 in the tiny geometry (2 channels).
        let mut sim = tlc_sim();
        let g = sim.config().geometry;
        assert_eq!(DieIndex(0).channel(&g), DieIndex(2).channel(&g));
        let a = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        let b = sim.execute(0, &DieOp::read(DieIndex(2), 1, 1, 0));
        // Both sense concurrently; the second transfer queues behind the
        // first on the shared bus.
        assert_eq!(a.end, 170_780);
        assert_eq!(b.end, a.end + 20_480 + 300);
        assert_eq!(sim.stats().channel_contention, 20_480 + 300);
        assert_eq!(sim.stats().cell_contention, 0);
    }

    #[test]
    fn two_dies_different_channels_fully_parallel() {
        let mut sim = tlc_sim();
        let g = sim.config().geometry;
        assert_ne!(DieIndex(0).channel(&g), DieIndex(1).channel(&g));
        let a = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        let b = sim.execute(0, &DieOp::read(DieIndex(1), 1, 1, 0));
        assert_eq!(a.end, b.end);
        assert_eq!(sim.stats().channel_contention, 0);
    }

    #[test]
    fn same_die_back_to_back_serializes() {
        let mut sim = tlc_sim();
        let a = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        let b = sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        assert_eq!(b.start, a.end);
        assert_eq!(sim.stats().cell_contention, a.end);
    }

    #[test]
    fn write_timing_includes_program_after_transfer() {
        // TLC LSB page write: transfer in (20480 + 300), program 440 µs.
        let mut sim = tlc_sim();
        let out = sim.execute(0, &DieOp::write(DieIndex(0), 1, 1, 0));
        assert_eq!(out.end, 300 + 20_480 + 440_000);
        assert_eq!(sim.stats().bytes_written, 8192);
    }

    #[test]
    fn msb_write_is_much_slower() {
        let mut lsb = tlc_sim();
        let mut msb = tlc_sim();
        let a = lsb.execute(0, &DieOp::write(DieIndex(0), 1, 1, 0));
        let b = msb.execute(0, &DieOp::write(DieIndex(0), 1, 1, 2));
        assert_eq!(b.end - a.end, 6_000_000 - 440_000);
    }

    #[test]
    fn erase_occupies_die_not_channel() {
        let mut sim = tlc_sim();
        let out = sim.execute(0, &DieOp::erase(DieIndex(0), 1));
        assert_eq!(out.end, 300 + 3_000_000);
        assert_eq!(sim.stats().channel_activation, 0);
        // A read on another die of the same channel is unaffected.
        let r = sim.execute(0, &DieOp::read(DieIndex(2), 1, 1, 0));
        assert_eq!(r.end, 170_780);
    }

    #[test]
    fn die_busy_equals_interval_sum() {
        let mut sim = tlc_sim();
        for i in 0..10u64 {
            let die = DieIndex((i % 8) as u32);
            sim.execute(i * 1000, &DieOp::read(die, 2, 4, 0));
        }
        let st = sim.stats();
        let by_interval: u64 = st.die_intervals.iter().map(|&(_, s, e)| e - s).sum();
        let by_counter: u64 = st.die_busy.iter().sum();
        assert_eq!(by_interval, by_counter);
        assert_eq!(st.ops, 10);
    }

    #[test]
    fn pcm_read_is_orders_of_magnitude_faster_per_byte() {
        let mut pcm = MediaSim::new(MediaConfig::tiny(NvmKind::Pcm, sdr400()));
        let mut tlc = tlc_sim();
        // Move 8 KiB from one die in both media.
        let p = pcm.execute(0, &DieOp::read(DieIndex(0), 2, 128, 0));
        let t = tlc.execute(0, &DieOp::read(DieIndex(0), 2, 1, 0));
        assert!(p.end < t.end / 3, "pcm {} vs tlc {}", p.end, t.end);
    }

    #[test]
    fn cache_registers_rearm_the_die_early() {
        let mut plain = tlc_sim();
        let mut cfg = *plain.config();
        cfg.cache_registers = true;
        let mut cached = MediaSim::new(cfg);
        // Two back-to-back single-page reads on the same die.
        for sim in [&mut plain, &mut cached] {
            sim.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        }
        let p = plain.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        let c = cached.execute(0, &DieOp::read(DieIndex(0), 1, 1, 0));
        // Plain: second sense waits for the first transfer to drain.
        // Cached: second sense starts right after the first sense.
        assert!(c.start < p.start, "cached {} vs plain {}", c.start, p.start);
        assert!(c.end < p.end);
    }

    #[test]
    fn report_utilizations_bounded() {
        let mut sim = tlc_sim();
        let mut last = 0;
        for i in 0..64u64 {
            let die = DieIndex((i % 8) as u32);
            let out = sim.execute(0, &DieOp::read(die, 2, 8, 0));
            last = last.max(out.end);
        }
        let cfg = *sim.config();
        let rep = sim.stats().finalize(&cfg, last, 0);
        assert!(rep.channel_util > 0.0 && rep.channel_util <= 1.0);
        assert!(rep.package_util > 0.0 && rep.package_util <= 1.0);
        assert!(rep.die_util > 0.0 && rep.die_util <= 1.0);
        assert!(rep.active_span <= last);
        assert!(rep.remaining_mb_s >= 0.0);
        assert_eq!(rep.bytes, 64 * 8 * 8192);
    }

    #[test]
    fn cell_time_memo_matches_uncached_for_every_shape() {
        for kind in [NvmKind::Slc, NvmKind::Mlc, NvmKind::Tlc, NvmKind::Pcm] {
            let mut sim = MediaSim::new(MediaConfig::tiny(kind, sdr400()));
            let t = sim.cfg.timing;
            for start_page in 0..6u64 {
                for pages in 1..5u64 {
                    for op in [
                        DieOp::read(DieIndex(0), 2, pages, start_page),
                        DieOp::write(DieIndex(0), 2, pages, start_page),
                        DieOp::erase(DieIndex(0), pages),
                    ] {
                        // Twice: first fill, then hit the cache.
                        assert_eq!(sim.cell_time_memo(&op), op.cell_time(&t));
                        assert_eq!(sim.cell_time_memo(&op), op.cell_time(&t));
                    }
                }
            }
        }
    }

    #[test]
    fn arbitration_tags_attribute_without_changing_the_schedule() {
        let mut plain = tlc_sim();
        let mut tagged = tlc_sim();
        let ops = [
            DieOp::read(DieIndex(0), 1, 1, 0),
            DieOp::write(DieIndex(1), 1, 2, 0),
            DieOp::read(DieIndex(2), 2, 4, 0),
            DieOp::erase(DieIndex(3), 1),
        ];
        assert_eq!(tagged.arbitration_tag(), None);
        for (i, op) in ops.iter().enumerate() {
            tagged.set_arbitration_tag(Some((i % 2) as u32));
            let a = plain.execute(0, op);
            let b = tagged.execute(0, op);
            // The schedule is tag-blind.
            assert_eq!(a, b);
        }
        tagged.set_arbitration_tag(None);
        tagged.execute(0, &DieOp::read(DieIndex(4), 1, 1, 0));

        let st = tagged.stats();
        let t0 = st.tag_busy[&0];
        let t1 = st.tag_busy[&1];
        // Four tagged ops split 2/2; the untagged fifth is in neither.
        assert_eq!(t0.ops + t1.ops, 4);
        assert_eq!(st.ops, 5);
        // Tagged busy time never exceeds the total, and the erase moved
        // no payload bytes.
        let die_total: u64 = st.die_busy.iter().sum();
        assert!(t0.busy_ns + t1.busy_ns <= die_total);
        assert_eq!(t0.bytes + t1.bytes, st.bytes() - 8192);
        // An untagged run records nothing at all.
        assert!(plain.stats().tag_busy.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_die() {
        let mut sim = tlc_sim();
        sim.execute(0, &DieOp::read(DieIndex(999), 1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn rejects_empty_op() {
        let mut sim = tlc_sim();
        sim.execute(0, &DieOp::read(DieIndex(0), 1, 0, 0));
    }
}
