//! Execution-state accounting (Figure 10), utilization (Figure 9), and the
//! PAL parallelism taxonomy of the paper's §4.5.

use crate::config::MediaConfig;
use crate::intervals::{merge, union_len, Interval};
use nvmtypes::convert::{approx_f64, usize_from_u32};
use nvmtypes::Nanos;
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-arbitration-tag accounting: how much die time, how many die-ops
/// and how many payload bytes one tag (one tenant, in the QoS layer's
/// vocabulary) consumed on the media. Purely additive — the engine's
/// schedule never reads it back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TagStats {
    /// Die busy time (op start to completion) attributed to the tag, ns.
    pub busy_ns: Nanos,
    /// Die-ops executed under the tag.
    pub ops: u64,
    /// Payload bytes moved (reads + writes; erases move none).
    pub bytes: u64,
}

/// The paper's four parallelism levels (§4.5):
///
/// * **PAL1** — system-level parallelism via channel striping and channel
///   pipelining only,
/// * **PAL2** — die (bank) interleaving on top of PAL1,
/// * **PAL3** — multi-plane mode operation on top of PAL1,
/// * **PAL4** — all of the above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum PalLevel {
    /// Channel striping / pipelining only.
    Pal1,
    /// Die interleaving on top of PAL1.
    Pal2,
    /// Multi-plane operation on top of PAL1.
    Pal3,
    /// Die interleaving and multi-plane together.
    Pal4,
}

impl PalLevel {
    /// Classifies a request from the resources its die-ops engaged:
    /// whether any channel ran two or more distinct dies (die
    /// interleaving), and whether any die-op engaged two or more planes
    /// (multi-plane mode).
    pub fn classify(die_interleaved: bool, multiplane: bool) -> PalLevel {
        match (die_interleaved, multiplane) {
            (false, false) => PalLevel::Pal1,
            (true, false) => PalLevel::Pal2,
            (false, true) => PalLevel::Pal3,
            (true, true) => PalLevel::Pal4,
        }
    }

    /// Index 0..4 for histogram storage.
    pub fn index(self) -> usize {
        match self {
            PalLevel::Pal1 => 0,
            PalLevel::Pal2 => 1,
            PalLevel::Pal3 => 2,
            PalLevel::Pal4 => 3,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        ["PAL1", "PAL2", "PAL3", "PAL4"][self.index()]
    }
}

/// Distribution of requests over the four PAL levels (Figures 10b/10d).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PalHistogram {
    /// Request counts per level (index via [`PalLevel::index`]).
    pub counts: [u64; 4],
}

impl PalHistogram {
    /// Records one request's achieved level.
    pub fn add(&mut self, level: PalLevel) {
        self.counts[level.index()] += 1;
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentages per level (sums to 100 for a non-empty histogram).
    pub fn percent(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        self.counts
            .map(|c| 100.0 * approx_f64(c) / approx_f64(total))
    }
}

/// The six execution-state buckets of Figures 10a/10c, in ns of resource
/// time attributed to each state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ExecBreakdown {
    /// Data movement between the SSD and the host (thin interface, PCIe
    /// bus, network) not overlapped with any media activity.
    pub non_overlapped_dma: Nanos,
    /// Data movement between die registers and the channel (command,
    /// address and register-shift cycles).
    pub flash_bus_activation: Nanos,
    /// Data movement on the shared channel bus.
    pub channel_activation: Nanos,
    /// Waiting on an NVM die already busy serving another request.
    pub cell_contention: Nanos,
    /// Waiting on a channel already busy serving another request.
    pub channel_contention: Nanos,
    /// Actually performing a read / program / erase on the cells.
    pub cell_activation: Nanos,
}

impl ExecBreakdown {
    /// Total attributed time.
    pub fn total(&self) -> Nanos {
        self.non_overlapped_dma
            + self.flash_bus_activation
            + self.channel_activation
            + self.cell_contention
            + self.channel_contention
            + self.cell_activation
    }

    /// Percentages in the order
    /// `[non-overlapped DMA, flash bus, channel, cell contention,
    ///   channel contention, cell activation]` (Figure 10 legend order).
    pub fn percent(&self) -> [f64; 6] {
        let total = self.total();
        if total == 0 {
            return [0.0; 6];
        }
        let f = |v: Nanos| 100.0 * approx_f64(v) / approx_f64(total);
        [
            f(self.non_overlapped_dma),
            f(self.flash_bus_activation),
            f(self.channel_activation),
            f(self.cell_contention),
            f(self.channel_contention),
            f(self.cell_activation),
        ]
    }
}

/// Raw accounting the engine accumulates while executing die-ops.
#[derive(Debug, Clone, Default)]
pub struct RawStats {
    /// Cell activation time (ns) summed over dies.
    pub cell_activation: Nanos,
    /// Cell contention (die-busy wait) time.
    pub cell_contention: Nanos,
    /// Channel data-transfer time.
    pub channel_activation: Nanos,
    /// Channel wait time.
    pub channel_contention: Nanos,
    /// Command/address/register overhead time.
    pub flash_bus_activation: Nanos,
    /// Per-channel bus-busy totals.
    pub chan_busy: Vec<Nanos>,
    /// Per-die busy totals (die holds from op start to completion).
    pub die_busy: Vec<Nanos>,
    /// Every die busy interval, tagged with its global die index.
    pub die_intervals: Vec<(u32, Nanos, Nanos)>,
    /// Payload bytes read from the media.
    pub bytes_read: u64,
    /// Payload bytes written to the media.
    pub bytes_written: u64,
    /// Blocks erased.
    pub blocks_erased: u64,
    /// Number of die-ops executed.
    pub ops: u64,
    /// Per-tag attribution for ops executed while an arbitration tag was
    /// set ([`crate::MediaSim::set_arbitration_tag`]). Empty — and free —
    /// when no tag is ever set; a `BTreeMap` so iteration order (and any
    /// report derived from it) is deterministic.
    pub tag_busy: BTreeMap<u32, TagStats>,
}

impl RawStats {
    /// Creates accounting sized for a device.
    pub fn new(channels: usize, dies: usize) -> RawStats {
        RawStats {
            chan_busy: vec![0; channels],
            die_busy: vec![0; dies],
            ..RawStats::default()
        }
    }

    /// Total payload bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Finished media-side report for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MediaReport {
    /// End-to-end simulated time (ns) — set by the caller (SSD layer),
    /// since completion includes host DMA.
    pub makespan: Nanos,
    /// Union length of all media busy intervals (ns).
    pub active_span: Nanos,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Media-level throughput over the makespan, MB/s.
    pub media_bandwidth_mb_s: f64,
    /// Channel-level utilization over the device-active span, `[0, 1]`
    /// (Figure 9a's definition: percent of total channels kept busy
    /// throughout the execution).
    pub channel_util: f64,
    /// Package-level utilization over the device-active span, `[0, 1]`
    /// (Figure 9b: percent of packages kept busy serving requests).
    pub package_util: f64,
    /// Die-level utilization over the whole makespan, `[0, 1]` — a die is
    /// busy from operation start to completion, including time it holds its
    /// registers waiting on the shared bus.
    pub die_util: f64,
    /// Cell-level utilization over the whole makespan, `[0, 1]` — the
    /// fraction of aggregate cell time actually spent sensing,
    /// programming or erasing. The basis of the bandwidth-remaining
    /// headroom metric.
    pub cell_util: f64,
    /// Bandwidth the media's cells could still deliver: cell-aggregate
    /// read bandwidth scaled by cell idleness (Figures 7b/8b), MB/s.
    /// Media that completes its work quickly and idles (UFS behind a PCIe
    /// ceiling, ION-remote media behind a network) leaves a lot; media
    /// kept grinding on fragmented single-plane operations leaves little.
    pub remaining_mb_s: f64,
    /// Execution-state breakdown (Figure 10a/10c).
    pub breakdown: ExecBreakdown,
    /// Merged media busy intervals (for host-DMA overlap accounting).
    #[serde(skip)]
    pub busy: Vec<Interval>,
}

impl RawStats {
    /// Rolls the raw accounting up into a [`MediaReport`].
    ///
    /// `makespan` is the full run duration including host-side time;
    /// `non_overlapped_dma` is the host-DMA time the SSD layer measured as
    /// not overlapping any media activity.
    pub fn finalize(
        &self,
        cfg: &MediaConfig,
        makespan: Nanos,
        non_overlapped_dma: Nanos,
    ) -> MediaReport {
        let g = &cfg.geometry;
        let all: Vec<Interval> = self.die_intervals.iter().map(|&(_, s, e)| (s, e)).collect();
        let busy = merge(all);
        let active_span: Nanos = busy.iter().map(|&(s, e)| e - s).sum();

        // "Kept busy" utilizations (Figure 9): a package is busy while any
        // of its dies serves a request; a channel is busy while any die on
        // it serves a request.
        let n_pkg = usize_from_u32(g.total_packages());
        let n_chan = usize_from_u32(g.channels);
        let mut per_pkg: Vec<Vec<Interval>> = vec![Vec::new(); n_pkg];
        let mut per_chan: Vec<Vec<Interval>> = vec![Vec::new(); n_chan];
        for &(die, s, e) in &self.die_intervals {
            per_pkg[usize_from_u32(die % g.total_packages())].push((s, e));
            per_chan[usize_from_u32(die % g.channels)].push((s, e));
        }
        let pkg_busy_total: Nanos = per_pkg.into_iter().map(union_len).sum();
        let chan_busy_total: Nanos = per_chan.into_iter().map(union_len).sum();

        let channel_util = if active_span == 0 {
            0.0
        } else {
            (approx_f64(chan_busy_total) / approx_f64(u64::from(g.channels) * active_span)).min(1.0)
        };
        let package_util = if active_span == 0 {
            0.0
        } else {
            (approx_f64(pkg_busy_total) / approx_f64(u64::from(g.total_packages()) * active_span))
                .min(1.0)
        };
        let die_util = if makespan == 0 {
            0.0
        } else {
            let total: Nanos = self.die_busy.iter().sum();
            (approx_f64(total) / approx_f64(u64::from(g.total_dies()) * makespan)).min(1.0)
        };
        let cell_util = if makespan == 0 {
            0.0
        } else {
            (approx_f64(self.cell_activation) / approx_f64(u64::from(g.total_dies()) * makespan))
                .min(1.0)
        };

        let remaining_bpns = (1.0 - cell_util) * cfg.cell_aggregate_read_bw();

        MediaReport {
            makespan,
            active_span,
            bytes: self.bytes(),
            media_bandwidth_mb_s: nvmtypes::mb_per_s(self.bytes(), makespan),
            channel_util,
            package_util,
            die_util,
            cell_util,
            remaining_mb_s: remaining_bpns * 1e3,
            breakdown: ExecBreakdown {
                non_overlapped_dma,
                flash_bus_activation: self.flash_bus_activation,
                channel_activation: self.channel_activation,
                cell_contention: self.cell_contention,
                channel_contention: self.channel_contention,
                cell_activation: self.cell_activation,
            },
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pal_classification_matrix() {
        assert_eq!(PalLevel::classify(false, false), PalLevel::Pal1);
        assert_eq!(PalLevel::classify(true, false), PalLevel::Pal2);
        assert_eq!(PalLevel::classify(false, true), PalLevel::Pal3);
        assert_eq!(PalLevel::classify(true, true), PalLevel::Pal4);
    }

    #[test]
    fn pal_histogram_percentages() {
        let mut h = PalHistogram::default();
        h.add(PalLevel::Pal4);
        h.add(PalLevel::Pal4);
        h.add(PalLevel::Pal1);
        h.add(PalLevel::Pal3);
        let p = h.percent();
        assert!((p[3] - 50.0).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        assert_eq!(PalHistogram::default().percent(), [0.0; 4]);
    }

    #[test]
    fn breakdown_percent_sums_to_100() {
        let b = ExecBreakdown {
            non_overlapped_dma: 10,
            flash_bus_activation: 20,
            channel_activation: 30,
            cell_contention: 15,
            channel_contention: 5,
            cell_activation: 20,
        };
        assert_eq!(b.total(), 100);
        let p = b.percent();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[5] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_percent_is_zero() {
        assert_eq!(ExecBreakdown::default().percent(), [0.0; 6]);
    }
}
