//! Die-level operations: the unit of work the media simulator executes.

use nvmtypes::convert::u64_from_usize;
use nvmtypes::{DieIndex, MediaTiming, Nanos};
use serde::{Deserialize, Serialize};

/// Kind of a die-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Sense pages and stream them out over the channel.
    Read,
    /// Stream data in over the channel and program pages.
    Write,
    /// Erase one block (no data movement on the channel).
    Erase,
}

/// A multi-page, possibly multi-plane operation on a single die.
///
/// The SSD layer decomposes each host request into one `DieOp` per
/// `(die, contiguous page run)` it touches; pages within a `DieOp` are
/// physically contiguous in the die's plane-interleaved address order, so
/// up to `planes` of them are serviced per cell activation (multi-plane
/// mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieOp {
    /// Target die.
    pub die: DieIndex,
    /// Distinct planes engaged (1..=geometry.planes_per_die).
    pub planes: u32,
    /// Number of pages moved (>= 1); for `Erase`, the number of blocks.
    pub pages: u64,
    /// Page index within the plane where the run starts — determines the
    /// LSB/CSB/MSB program classes and the PCM read-latency phase.
    pub start_page: u64,
    /// Operation kind.
    pub kind: OpKind,
}

impl DieOp {
    /// Read `pages` pages on `die` using `planes` planes.
    pub fn read(die: DieIndex, planes: u32, pages: u64, start_page: u64) -> DieOp {
        DieOp {
            die,
            planes,
            pages,
            start_page,
            kind: OpKind::Read,
        }
    }

    /// Program `pages` pages on `die` using `planes` planes.
    pub fn write(die: DieIndex, planes: u32, pages: u64, start_page: u64) -> DieOp {
        DieOp {
            die,
            planes,
            pages,
            start_page,
            kind: OpKind::Write,
        }
    }

    /// Erase `blocks` blocks on `die`.
    pub fn erase(die: DieIndex, blocks: u64) -> DieOp {
        DieOp {
            die,
            planes: 1,
            pages: blocks,
            start_page: 0,
            kind: OpKind::Erase,
        }
    }

    /// Number of cell activations: pages grouped `planes` at a time.
    pub fn batches(&self) -> u64 {
        debug_assert!(self.planes >= 1);
        self.pages.div_ceil(u64::from(self.planes))
    }

    /// Total cell time for this op's batches, honouring per-page-class
    /// program latencies and PCM read jitter.
    pub fn cell_time(&self, t: &MediaTiming) -> Nanos {
        let b = self.batches();
        match self.kind {
            OpKind::Read => {
                // Base latency per batch plus the deterministic jitter
                // spread (mean of the span across a long run), plus the
                // amortised read-retry overhead if enabled.
                let retries = if t.read_retry_every > 0 {
                    self.pages * t.t_read / t.read_retry_every
                } else {
                    0
                };
                b * t.t_read + (b * t.t_read_span) / 2 + retries
            }
            OpKind::Write => sum_write_latency(t, self.start_page, b),
            OpKind::Erase => self.pages * t.t_erase,
        }
    }
}

/// Sum of program latencies for `count` consecutive batch page-offsets
/// starting at `start`, in closed form over the medium's page-class cycle.
pub fn sum_write_latency(t: &MediaTiming, start: u64, count: u64) -> Nanos {
    use nvmtypes::PageClass;
    if count == 0 {
        return 0;
    }
    let cycle: &[Nanos] = match t.kind {
        nvmtypes::NvmKind::Slc | nvmtypes::NvmKind::Pcm => &[t.t_write_lsb],
        nvmtypes::NvmKind::Mlc => &[t.t_write_lsb, t.t_write_msb],
        nvmtypes::NvmKind::Tlc => &[t.t_write_lsb, t.t_write_csb, t.t_write_msb],
    };
    let l = u64_from_usize(cycle.len());
    let cycle_sum: Nanos = cycle.iter().sum();
    let full = count / l;
    let mut total = full * cycle_sum;
    for i in 0..(count % l) {
        let page = start + full * l + i;
        total += t.write_latency(PageClass::of_page(t.kind, page));
    }
    // Phase invariance: any `full * l` consecutive pages cover each class
    // exactly `full` times, and the remainder loop above uses absolute page
    // indices, so the sum is exact for any starting phase.
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::NvmKind;

    fn tlc() -> MediaTiming {
        MediaTiming::table1(NvmKind::Tlc)
    }

    #[test]
    fn batches_round_up() {
        let d = DieIndex(0);
        assert_eq!(DieOp::read(d, 2, 4, 0).batches(), 2);
        assert_eq!(DieOp::read(d, 2, 5, 0).batches(), 3);
        assert_eq!(DieOp::read(d, 1, 5, 0).batches(), 5);
    }

    #[test]
    fn read_cell_time_nand() {
        let op = DieOp::read(DieIndex(0), 2, 4, 0);
        assert_eq!(op.cell_time(&tlc()), 2 * 150_000);
    }

    #[test]
    fn read_cell_time_pcm_includes_jitter_mean() {
        let t = MediaTiming::table1(NvmKind::Pcm);
        let op = DieOp::read(DieIndex(0), 1, 100, 0);
        // 100 * 115 + 100*20/2 = 11500 + 1000.
        assert_eq!(op.cell_time(&t), 12_500);
    }

    #[test]
    fn read_retries_add_amortised_cell_time() {
        let nominal = tlc();
        let worn = MediaTiming::table1(NvmKind::Tlc).with_read_retry(16);
        let op = DieOp::read(DieIndex(0), 2, 32, 0);
        let base = op.cell_time(&nominal);
        let with = op.cell_time(&worn);
        // 32 pages at one retry per 16 pages = 2 extra senses.
        assert_eq!(with - base, 2 * 150_000);
    }

    #[test]
    fn write_latency_sum_matches_naive() {
        let t = tlc();
        for start in 0..7u64 {
            for count in 0..10u64 {
                let naive: Nanos = (0..count).map(|i| t.write_latency_at(start + i)).sum();
                assert_eq!(
                    sum_write_latency(&t, start, count),
                    naive,
                    "start={start} count={count}"
                );
            }
        }
    }

    #[test]
    fn write_latency_sum_matches_naive_mlc() {
        let t = MediaTiming::table1(NvmKind::Mlc);
        for start in 0..5u64 {
            for count in 0..9u64 {
                let naive: Nanos = (0..count).map(|i| t.write_latency_at(start + i)).sum();
                assert_eq!(sum_write_latency(&t, start, count), naive);
            }
        }
    }

    #[test]
    fn erase_cell_time() {
        let op = DieOp::erase(DieIndex(3), 2);
        assert_eq!(op.cell_time(&tlc()), 2 * 3_000_000);
    }
}
