//! Media-level fault state: wear-scaled bit errors, program/erase
//! failures and read-disturb counters, sampled deterministically from a
//! [`FaultRng`] stream.
//!
//! This module owns the *error processes* of the media — when a page
//! read needs ECC help, when a program or erase fails, when read
//! disturb forces a refresh. The *recovery mechanics* (retry ladders,
//! bad-block remapping, refresh scheduling) belong to the device layer
//! (`ssd`), which drives this state alongside the timing engine.
//!
//! Determinism: sampling draws from a dedicated split stream
//! (`nvmtypes::fault::STREAM_MEDIA`) in op order, and zero-rate
//! profiles never advance the stream, so a [`MediaFaultProfile::none`]
//! run is byte-identical to one with no fault state at all.

use crate::op::{DieOp, OpKind};
use nvmtypes::fault::{FaultRng, MediaFaultProfile};
use nvmtypes::NvmKind;
use std::collections::BTreeMap;

/// Probability an escalating read-retry tier corrects the page: each
/// shifted-reference re-sense recovers most marginal pages, so demand
/// for deep tiers decays geometrically.
const TIER_CORRECT_PROB: f64 = 0.7;

/// Outcome of sampling the error processes for one read [`DieOp`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFaultSample {
    /// For each page the inline ECC could not fix: the 1-based retry
    /// tier that finally corrected it (ordering follows page order
    /// within the op).
    pub corrected_tiers: Vec<u32>,
    /// Pages whose error exceeded every retry tier. The read still
    /// completes (after the full ladder), but the data is lost and the
    /// device must remap the block.
    pub uncorrectable: u64,
    /// Read-disturb refreshes triggered: the block's disturb counter
    /// crossed the limit and one page re-program is charged.
    pub disturb_refreshes: u64,
}

impl ReadFaultSample {
    /// True iff the op saw no error at all.
    pub fn is_clean(&self) -> bool {
        self.corrected_tiers.is_empty() && self.uncorrectable == 0 && self.disturb_refreshes == 0
    }
}

/// Per-device media fault state: wear counters, disturb counters and
/// the sampling stream.
#[derive(Debug, Clone)]
pub struct MediaFaultState {
    profile: MediaFaultProfile,
    kind: NvmKind,
    pages_per_block: u64,
    rng: FaultRng,
    /// Erase count per die — the P/E-cycle proxy the wear model scales
    /// error rates with (per-die rather than per-block: wear-leveling
    /// spreads cycles across a die's blocks).
    pe_cycles: BTreeMap<u32, u64>,
    /// Reads since last refresh per `(die, block)`; sparse — only
    /// blocks that have been read appear.
    disturb: BTreeMap<(u32, u64), u64>,
}

impl MediaFaultState {
    /// Builds the state for one device run. `rng` should be the
    /// `STREAM_MEDIA` split of the plan's root generator.
    pub fn new(
        profile: MediaFaultProfile,
        kind: NvmKind,
        pages_per_block: u64,
        rng: FaultRng,
    ) -> MediaFaultState {
        MediaFaultState {
            profile,
            kind,
            pages_per_block: pages_per_block.max(1),
            rng,
            pe_cycles: BTreeMap::new(),
            disturb: BTreeMap::new(),
        }
    }

    /// The profile in force.
    pub fn profile(&self) -> &MediaFaultProfile {
        &self.profile
    }

    /// P/E cycles accumulated on `die` so far.
    pub fn pe_cycles(&self, die: u32) -> u64 {
        self.pe_cycles.get(&die).copied().unwrap_or(0)
    }

    /// Samples the error processes for a read op. Call once per read
    /// `DieOp`, in dispatch order.
    pub fn sample_read(&mut self, op: &DieOp) -> ReadFaultSample {
        debug_assert!(op.kind == OpKind::Read);
        let mut sample = ReadFaultSample::default();
        let die = op.die.0;
        let p_err = self.profile.read_error_prob(self.kind, self.pe_cycles(die));
        if p_err > 0.0 {
            for _page in 0..op.pages {
                if !self.rng.gen_bool(p_err) {
                    continue;
                }
                // Escalate through the retry ladder; geometric demand.
                let mut corrected = None;
                for tier in 1..=self.profile.ecc_tiers {
                    if self.rng.gen_bool(TIER_CORRECT_PROB) {
                        corrected = Some(tier);
                        break;
                    }
                }
                match corrected {
                    Some(tier) => sample.corrected_tiers.push(tier),
                    None => sample.uncorrectable += 1,
                }
            }
        }
        // Read disturb: aggregate the op's pages onto its starting
        // block (runs rarely straddle blocks); PCM cells do not
        // disturb on read.
        if self.profile.read_disturb_limit > 0 && self.kind != NvmKind::Pcm {
            let block = op.start_page / self.pages_per_block;
            let counter = self.disturb.entry((die, block)).or_insert(0);
            *counter += op.pages;
            while *counter >= self.profile.read_disturb_limit {
                *counter -= self.profile.read_disturb_limit;
                sample.disturb_refreshes += 1;
            }
        }
        sample
    }

    /// Samples program failures for a write op; returns how many page
    /// programs failed and must be retried (one retry always succeeds —
    /// the controller re-programs into the same block).
    pub fn sample_program(&mut self, op: &DieOp) -> u64 {
        debug_assert!(op.kind == OpKind::Write);
        if self.profile.program_fail_prob <= 0.0 {
            return 0;
        }
        let mut fails = 0;
        for _page in 0..op.pages {
            if self.rng.gen_bool(self.profile.program_fail_prob) {
                fails += 1;
            }
        }
        fails
    }

    /// Records `blocks` erases on `die` (advancing the wear model) and
    /// samples erase failures; returns how many of them failed. A
    /// failed erase condemns its block: the device must remap it.
    pub fn sample_erase(&mut self, die: u32, blocks: u64) -> u64 {
        *self.pe_cycles.entry(die).or_insert(0) += blocks;
        if self.profile.erase_fail_prob <= 0.0 {
            return 0;
        }
        let mut fails = 0;
        for _block in 0..blocks {
            if self.rng.gen_bool(self.profile.erase_fail_prob) {
                fails += 1;
            }
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::fault::{FaultPlan, STREAM_MEDIA};
    use nvmtypes::DieIndex;

    fn state(profile: MediaFaultProfile, kind: NvmKind) -> MediaFaultState {
        let rng = FaultPlan {
            seed: 99,
            ..FaultPlan::none()
        }
        .rng()
        .split(STREAM_MEDIA);
        MediaFaultState::new(profile, kind, 128, rng)
    }

    #[test]
    fn zero_profile_is_silent_and_consumes_nothing() {
        let mut s = state(MediaFaultProfile::none(), NvmKind::Tlc);
        let op = DieOp::read(DieIndex(0), 2, 64, 0);
        for _ in 0..10 {
            assert!(s.sample_read(&op).is_clean());
        }
        assert_eq!(s.sample_program(&DieOp::write(DieIndex(0), 2, 64, 0)), 0);
        assert_eq!(s.sample_erase(0, 4), 0);
        // The stream never advanced: it still matches a fresh split.
        let fresh = state(MediaFaultProfile::none(), NvmKind::Tlc);
        assert_eq!(s.rng, fresh.rng);
    }

    #[test]
    fn sampling_is_deterministic() {
        let profile = MediaFaultProfile {
            page_error_prob: 0.05,
            program_fail_prob: 0.02,
            erase_fail_prob: 0.1,
            read_disturb_limit: 100,
            ..MediaFaultProfile::none()
        };
        let mut a = state(profile, NvmKind::Mlc);
        let mut b = state(profile, NvmKind::Mlc);
        let read = DieOp::read(DieIndex(3), 2, 200, 0);
        let write = DieOp::write(DieIndex(3), 2, 64, 0);
        for _ in 0..5 {
            assert_eq!(a.sample_read(&read), b.sample_read(&read));
            assert_eq!(a.sample_program(&write), b.sample_program(&write));
            assert_eq!(a.sample_erase(3, 2), b.sample_erase(3, 2));
        }
    }

    #[test]
    fn wear_raises_read_error_rate() {
        let profile = MediaFaultProfile {
            page_error_prob: 1e-3,
            pe_wear_factor: 0.05,
            ..MediaFaultProfile::none()
        };
        let mut worn = state(profile, NvmKind::Slc);
        let mut fresh = state(profile, NvmKind::Slc);
        // Put 10k P/E cycles on die 0 of the worn device.
        for _ in 0..100 {
            let _fails = worn.sample_erase(0, 100);
        }
        assert_eq!(worn.pe_cycles(0), 10_000);
        let op = DieOp::read(DieIndex(0), 2, 512, 0);
        let errs = |s: &mut MediaFaultState| {
            let mut n = 0u64;
            for _ in 0..20 {
                let smp = s.sample_read(&op);
                n += nvmtypes::u64_from_usize(smp.corrected_tiers.len()) + smp.uncorrectable;
            }
            n
        };
        assert!(errs(&mut worn) > errs(&mut fresh));
    }

    #[test]
    fn read_disturb_triggers_refreshes() {
        let profile = MediaFaultProfile {
            read_disturb_limit: 100,
            ..MediaFaultProfile::none()
        };
        let mut s = state(profile, NvmKind::Slc);
        let op = DieOp::read(DieIndex(1), 2, 50, 0);
        assert_eq!(s.sample_read(&op).disturb_refreshes, 0);
        assert_eq!(s.sample_read(&op).disturb_refreshes, 1);
        // PCM never disturbs.
        let mut pcm = state(profile, NvmKind::Pcm);
        for _ in 0..10 {
            assert_eq!(pcm.sample_read(&op).disturb_refreshes, 0);
        }
    }

    #[test]
    fn dense_media_err_more() {
        let profile = MediaFaultProfile {
            page_error_prob: 5e-3,
            ..MediaFaultProfile::none()
        };
        let op = DieOp::read(DieIndex(0), 2, 256, 0);
        let count = |kind: NvmKind| {
            let mut s = state(profile, kind);
            let mut n = 0u64;
            for _ in 0..40 {
                let smp = s.sample_read(&op);
                n += nvmtypes::u64_from_usize(smp.corrected_tiers.len()) + smp.uncorrectable;
            }
            n
        };
        assert!(count(NvmKind::Tlc) > count(NvmKind::Slc));
        assert!(count(NvmKind::Pcm) < count(NvmKind::Mlc));
    }
}
