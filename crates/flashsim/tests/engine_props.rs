//! Property tests on the media engine's scheduling invariants.

use flashsim::{DieOp, MediaConfig, MediaSim, OpKind};
use nvmtypes::{BusTiming, DieIndex, MediaTiming, NvmKind, SsdGeometry};
use proptest::prelude::*;

fn sdr400() -> BusTiming {
    BusTiming {
        name: "ONFi3-SDR-400",
        bytes_per_ns: 0.4,
    }
}

fn arb_op(dies: u32, planes: u32) -> impl Strategy<Value = DieOp> {
    (
        0..dies,
        1..=planes,
        1u64..64,
        0u64..1000,
        prop_oneof![Just(OpKind::Read), Just(OpKind::Write), Just(OpKind::Erase)],
    )
        .prop_map(|(die, planes, pages, start, kind)| DieOp {
            die: DieIndex(die),
            planes,
            pages,
            start_page: start,
            kind,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_are_causal_and_accounted(
        ops in prop::collection::vec((0u64..1_000_000, arb_op(8, 2)), 1..60),
        kind in prop_oneof![
            Just(NvmKind::Slc), Just(NvmKind::Mlc), Just(NvmKind::Tlc), Just(NvmKind::Pcm)
        ],
    ) {
        let cfg = MediaConfig::tiny(kind, sdr400());
        let mut sim = MediaSim::new(cfg);
        let mut per_die_last_end = vec![0u64; cfg.geometry.total_dies() as usize];
        let mut max_end = 0;
        for (arrival, op) in &ops {
            let out = sim.execute(*arrival, op);
            // Causality: never starts before arrival, never ends before start.
            prop_assert!(out.start >= *arrival);
            prop_assert!(out.end > out.start);
            // Per-die serialisation: the die never overlaps itself.
            let d = op.die.0 as usize;
            prop_assert!(out.start >= per_die_last_end[d]);
            per_die_last_end[d] = out.end;
            max_end = max_end.max(out.end);
        }
        let st = sim.stats();
        prop_assert_eq!(st.ops, ops.len() as u64);
        // Byte accounting matches the ops executed.
        let want_read: u64 = ops
            .iter()
            .filter(|(_, o)| o.kind == OpKind::Read)
            .map(|(_, o)| o.pages * cfg.timing.page_size as u64)
            .sum();
        prop_assert_eq!(st.bytes_read, want_read);
        // Die busy time is consistent between counters and intervals, and
        // every interval ends within the run.
        let by_intervals: u64 = st.die_intervals.iter().map(|&(_, s, e)| e - s).sum();
        let by_counters: u64 = st.die_busy.iter().sum();
        prop_assert_eq!(by_intervals, by_counters);
        prop_assert!(st.die_intervals.iter().all(|&(_, _, e)| e <= max_end));
        // Finalised report invariants.
        let rep = st.finalize(&cfg, max_end, 0);
        prop_assert!(rep.active_span <= max_end);
        prop_assert!((0.0..=1.0).contains(&rep.channel_util));
        prop_assert!((0.0..=1.0).contains(&rep.package_util));
        prop_assert!((0.0..=1.0).contains(&rep.cell_util));
        prop_assert!(rep.remaining_mb_s >= 0.0);
    }

    #[test]
    fn cell_time_is_monotone_in_pages(
        pages_a in 1u64..200,
        extra in 1u64..100,
        planes in 1u32..=2,
    ) {
        let t = MediaTiming::table1(NvmKind::Tlc);
        let a = DieOp::read(DieIndex(0), planes, pages_a, 0).cell_time(&t);
        let b = DieOp::read(DieIndex(0), planes, pages_a + extra, 0).cell_time(&t);
        prop_assert!(b >= a);
    }

    #[test]
    fn multiplane_never_slows_a_read(pages in 1u64..200) {
        let t = MediaTiming::table1(NvmKind::Mlc);
        let one = DieOp::read(DieIndex(0), 1, pages, 0).cell_time(&t);
        let two = DieOp::read(DieIndex(0), 2, pages, 0).cell_time(&t);
        prop_assert!(two <= one);
    }

    #[test]
    fn geometry_capacity_identities(
        channels in 1u32..8,
        pkgs in 1u32..8,
        dies in 1u32..4,
        planes in 1u32..4,
    ) {
        let g = SsdGeometry {
            channels,
            packages_per_channel: pkgs,
            dies_per_package: dies,
            planes_per_die: planes,
            blocks_per_plane: 16,
            pages_per_block: 8,
        };
        prop_assert_eq!(g.total_dies(), channels * pkgs * dies);
        prop_assert_eq!(g.total_plane_slots(), (channels * pkgs * dies * planes) as u64);
        prop_assert_eq!(g.total_pages(), g.total_dies() as u64 * g.pages_per_die());
    }
}
