//! # oocnvm-bench — figure and table regeneration
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p oocnvm-bench --bin <name>`):
//!
//! | binary     | regenerates |
//! |------------|-------------|
//! | `table1`   | Table 1 — NVM latency matrix |
//! | `table2`   | Table 2 — evaluated configurations |
//! | `fig1`     | Figure 1 — network vs NVM bandwidth trends |
//! | `fig6`     | Figure 6 — POSIX vs sub-GPFS access patterns |
//! | `fig7`     | Figures 7a/7b — bandwidth achieved / remaining per FS |
//! | `fig8`     | Figures 8a/8b — device-improvement bandwidths |
//! | `fig9`     | Figures 9a/9b — channel / package utilization |
//! | `fig10`    | Figures 10a–10d — execution breakdown + parallelism |
//! | `headline` | §7's headline ratios (108% / 52% / 250% / 10.3x) |
//! | `calibrate`| the full sweep in one table (development aid) |
//! | `bench`    | the pinned perf scenario vs `results/BENCH_core.json` |
//!
//! Criterion benches (`cargo bench -p oocnvm-bench`) time the simulator
//! and solver themselves and run the ablations DESIGN.md calls out.
use nvmtypes::MIB;
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::PosixTrace;
use simobs::json::Json;

pub mod cli;
pub mod headline;
pub mod perf;
pub mod sweep;

/// The standard experiment workload: a read-dominant out-of-core panel
/// sweep. Size defaults to 256 MiB and can be scaled with the
/// `OOCNVM_TRACE_MIB` environment variable (the paper's traces cover tens
/// of GiB; bandwidths converge well before that).
pub fn standard_trace() -> PosixTrace {
    let mib = std::env::var("OOCNVM_TRACE_MIB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(256);
    synthetic_ooc_trace(mib * MIB, 6 * MIB, 42)
}

/// Renders a figure banner; callers print it (library code never prints
/// — the `no_println_in_lib` simlint rule).
#[must_use]
pub fn banner(id: &str, caption: &str) -> String {
    let rule = "==============================================================";
    format!("{rule}\n{id} — {caption}\n{rule}")
}

/// Renders a machine-readable report in the workspace's versioned-JSON
/// convention: a leading `"format": "<schema>"` tag followed by the
/// payload's fields, through simobs's canonical renderer (insertion-
/// ordered keys, pre-rendered numbers), so equal reports render
/// byte-identically. Every `--json` bin emits through this one helper.
#[must_use]
pub fn json_report(schema: &str, payload: Json) -> String {
    simobs::json::report(schema, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trace_is_read_only_and_sized() {
        let t = standard_trace();
        assert!(t.total_bytes() >= 256 * MIB);
        assert!((t.read_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_report_prepends_the_schema_tag() {
        let payload = Json::obj().field("x", Json::u64(1));
        let doc = json_report("oocnvm.test/1", payload);
        assert_eq!(doc, r#"{"format":"oocnvm.test/1","x":1}"#);
        // Non-object payloads nest under "payload" instead of merging.
        let arr = json_report("oocnvm.test/1", Json::Arr(vec![Json::u64(2)]));
        assert_eq!(arr, r#"{"format":"oocnvm.test/1","payload":[2]}"#);
    }
}
