//! Shared command-line parsing for the study bins.
//!
//! Every study binary (`headline`, `reliability`, `obsreport`, `ufs`,
//! `bench`, `tenants`) takes the same small flag vocabulary; each used
//! to carry its own copy-pasted `--key value` scanner. [`StudyArgs`]
//! is the one parser they all share:
//!
//! | flag               | meaning                                       |
//! |--------------------|-----------------------------------------------|
//! | `--smoke`          | shrink the workload for CI                    |
//! | `--seed N`         | workload / fault seed (per-bin default)       |
//! | `--json PATH`      | write the versioned JSON document to `PATH`   |
//! | `--out PATH`       | write the auxiliary artifact (trace export)   |
//! | `--baseline PATH`  | committed baseline to diff against            |
//! | `--tolerance PCT`  | host-time tolerance band for baseline diffs   |
//!
//! Unknown flags and malformed values are *errors*, not silent no-ops:
//! a typoed `--sed 7` must fail the invocation rather than quietly run
//! the default seed through a CI gate.

/// Parsed study-bin flags. Every field is optional except `smoke`
/// (absent means off); the bins apply their own defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StudyArgs {
    /// `--smoke`: CI-sized workload.
    pub smoke: bool,
    /// `--seed N`.
    pub seed: Option<u64>,
    /// `--json PATH`.
    pub json: Option<String>,
    /// `--out PATH`.
    pub out: Option<String>,
    /// `--baseline PATH`.
    pub baseline: Option<String>,
    /// `--tolerance PCT` (integer percent, matching `simprof::compare`).
    pub tolerance: Option<u64>,
}

impl StudyArgs {
    /// Parses a flag vector (the program name already stripped).
    ///
    /// # Errors
    /// Returns a printable message naming the offending flag when an
    /// unknown flag appears, a value-taking flag is missing its value,
    /// or a numeric value does not parse.
    pub fn parse(args: &[String]) -> Result<StudyArgs, String> {
        let mut out = StudyArgs::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag {
                "--smoke" => out.smoke = true,
                "--seed" => {
                    out.seed =
                        Some(value(i)?.parse().map_err(|_| {
                            format!("--seed wants an integer, got {:?}", args[i + 1])
                        })?);
                    i += 1;
                }
                "--json" => {
                    out.json = Some(value(i)?.clone());
                    i += 1;
                }
                "--out" => {
                    out.out = Some(value(i)?.clone());
                    i += 1;
                }
                "--baseline" => {
                    out.baseline = Some(value(i)?.clone());
                    i += 1;
                }
                "--tolerance" => {
                    out.tolerance = Some(value(i)?.parse().map_err(|_| {
                        format!(
                            "--tolerance wants an integer percent, got {:?}",
                            args[i + 1]
                        )
                    })?);
                    i += 1;
                }
                other => return Err(format!("unknown flag {other:?} (see the bin's docs)")),
            }
            i += 1;
        }
        Ok(out)
    }

    /// Parses the current process's arguments (skipping the program
    /// name). Same error contract as [`StudyArgs::parse`].
    ///
    /// # Errors
    /// See [`StudyArgs::parse`].
    pub fn from_env() -> Result<StudyArgs, String> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        StudyArgs::parse(&args)
    }

    /// The seed, or the bin's default.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn empty_args_are_all_defaults() {
        let a = StudyArgs::parse(&[]).expect("empty is fine");
        assert_eq!(a, StudyArgs::default());
        assert!(!a.smoke);
        assert_eq!(a.seed_or(42), 42);
    }

    #[test]
    fn every_flag_parses() {
        let a = StudyArgs::parse(&argv(&[
            "--smoke",
            "--seed",
            "7",
            "--json",
            "a.json",
            "--out",
            "b.trace",
            "--baseline",
            "results/B.json",
            "--tolerance",
            "150",
        ]))
        .expect("all flags valid");
        assert!(a.smoke);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.seed_or(42), 7);
        assert_eq!(a.json.as_deref(), Some("a.json"));
        assert_eq!(a.out.as_deref(), Some("b.trace"));
        assert_eq!(a.baseline.as_deref(), Some("results/B.json"));
        assert_eq!(a.tolerance, Some(150));
    }

    #[test]
    fn order_does_not_matter() {
        let a = StudyArgs::parse(&argv(&["--json", "x", "--smoke"])).expect("valid");
        let b = StudyArgs::parse(&argv(&["--smoke", "--json", "x"])).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_flags_are_errors() {
        let err = StudyArgs::parse(&argv(&["--sed", "7"])).expect_err("typo must fail");
        assert!(err.contains("--sed"), "message names the flag: {err}");
    }

    #[test]
    fn missing_values_are_errors() {
        for flag in ["--seed", "--json", "--out", "--baseline", "--tolerance"] {
            let err = StudyArgs::parse(&argv(&[flag])).expect_err("dangling flag must fail");
            assert!(err.contains(flag), "message names {flag}: {err}");
        }
    }

    #[test]
    fn malformed_numbers_are_errors() {
        assert!(StudyArgs::parse(&argv(&["--seed", "seven"])).is_err());
        assert!(StudyArgs::parse(&argv(&["--tolerance", "wide"])).is_err());
        // Both are integers: fractional values must be rejected loudly.
        assert!(StudyArgs::parse(&argv(&["--tolerance", "2.5"])).is_err());
        assert!(StudyArgs::parse(&argv(&["--seed", "2.5"])).is_err());
    }
}
