//! Cluster-scaling analysis (extension): the architectural motivation of
//! Figures 2/3. A 40-CN/10-ION Carver-style partition shares the IONs'
//! SSDs and the fabric; compute-local SSDs scale with the node count.
use nvmtypes::NvmKind;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::cluster::{ion_saturation_nodes, scaling_curve, ClusterSpec, NodeRates};
use oocnvm_core::format::Table;

fn main() {
    println!(
        "{}",
        banner(
            "Scaling",
            "aggregate delivered bandwidth as the OoC application scales out",
        )
    );
    let trace = standard_trace();
    let spec = ClusterSpec::carver();
    println!(
        "cluster: {} IONs x {} SSDs, {:.0} GB/s bisection (Carver's OoC partition)\n",
        spec.ions,
        spec.ssds_per_ion,
        spec.bisection_mb_s / 1000.0
    );

    for kind in [NvmKind::Tlc, NvmKind::Pcm] {
        let rates = NodeRates::measure(kind, &trace);
        println!(
            "{}: per-CN ION path {:.0} MB/s, per-ION server ceiling {:.0} MB/s, per-CN local {:.0} MB/s",
            kind.label(),
            rates.per_cn_ion_mb_s,
            rates.per_ion_ssd_mb_s,
            rates.per_cn_local_mb_s
        );
        let nodes = [1u32, 2, 4, 8, 16, 40, 64];
        let curve = scaling_curve(&spec, &rates, &nodes);
        let mut t = Table::new([
            "nodes",
            "ION aggregate MB/s",
            "CNL aggregate MB/s",
            "CNL/ION",
        ]);
        for p in &curve {
            t.row([
                p.nodes.to_string(),
                format!("{:.0}", p.ion_mb_s),
                format!("{:.0}", p.cnl_mb_s),
                format!("{:.1}x", p.cnl_mb_s / p.ion_mb_s),
            ]);
        }
        print!("{}", t.render());
        println!(
            "ION path stops scaling at {} nodes; at the paper's 40-node partition the\n\
             compute-local architecture delivers {:.1}x the aggregate bandwidth.\n",
            ion_saturation_nodes(&spec, &rates),
            curve
                .iter()
                .find(|p| p.nodes == 40)
                .map(|p| p.cnl_mb_s / p.ion_mb_s)
                .unwrap_or(0.0)
        );
    }
}
