use nvmtypes::{NvmKind, MIB};
use oocnvm_bench::sweep::Sweep;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::workload::synthetic_ooc_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("calibrate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let total = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256u64);
    let trace = synthetic_ooc_trace(total * MIB, 6 * MIB, 42);
    let mut configs = SystemConfig::figure7();
    configs.extend([
        SystemConfig::cnl_bridge16(),
        SystemConfig::cnl_native8(),
        SystemConfig::cnl_native16(),
    ]);
    let t0 = std::time::Instant::now();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, &trace);
    eprintln!("sweep took {:?}", t0.elapsed());
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "config", "TLC", "MLC", "SLC", "PCM"
    );
    for c in sweep.configs() {
        let get = |k| sweep.require(c.label, k).map(|r| r.bandwidth_mb_s);
        println!(
            "{:<16} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            c.label,
            get(NvmKind::Tlc)?,
            get(NvmKind::Mlc)?,
            get(NvmKind::Slc)?,
            get(NvmKind::Pcm)?
        );
    }
    println!("\nutil/remaining/pal4 (TLC):");
    for c in sweep.configs() {
        let r = sweep.require(c.label, NvmKind::Tlc)?;
        println!(
            "{:<16} chan={:>5.1}% pkg={:>5.1}% rem={:>7.0} pal={:?} dma%={:.1}",
            c.label,
            r.channel_util * 100.0,
            r.package_util * 100.0,
            r.remaining_mb_s,
            r.pal_pct.map(|p| p.round()),
            r.breakdown_pct[0]
        );
    }
    Ok(())
}
