//! Regenerates Figures 10a–10d: execution-state breakdowns and PAL
//! parallelism decompositions for TLC and PCM across all configurations.
use nvmtypes::NvmKind;
use oocnvm_bench::sweep::Sweep;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::format::Table;
use std::process::ExitCode;

const STATES: [&str; 6] = [
    "NonOvlp-DMA %",
    "FlashBus %",
    "Channel %",
    "CellCont %",
    "ChanCont %",
    "CellAct %",
];

fn breakdown_table(sweep: &Sweep, kind: NvmKind) -> Result<Table, String> {
    let mut t = Table::new(std::iter::once("config").chain(STATES).collect::<Vec<_>>());
    for c in sweep.configs() {
        let r = sweep.require(c.label, kind)?;
        let mut row = vec![c.label.to_string()];
        row.extend(r.breakdown_pct.iter().map(|p| format!("{p:.1}")));
        t.row(row);
    }
    Ok(t)
}

fn pal_table(sweep: &Sweep, kind: NvmKind) -> Result<Table, String> {
    let mut t = Table::new(["config", "PAL1 %", "PAL2 %", "PAL3 %", "PAL4 %"]);
    for c in sweep.configs() {
        let r = sweep.require(c.label, kind)?;
        let mut row = vec![c.label.to_string()];
        row.extend(r.pal_pct.iter().map(|p| format!("{p:.1}")));
        t.row(row);
    }
    Ok(t)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig10: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let trace = standard_trace();
    let configs = SystemConfig::table2();
    let sweep = Sweep::run(&configs, &[NvmKind::Tlc, NvmKind::Pcm], &trace);

    println!(
        "{}",
        banner("Figure 10a", "TLC execution-time breakdown (%)")
    );
    print!("{}", breakdown_table(&sweep, NvmKind::Tlc)?.render());

    println!(
        "{}",
        banner("Figure 10b", "TLC parallelism decomposition (%)")
    );
    print!("{}", pal_table(&sweep, NvmKind::Tlc)?.render());

    println!(
        "{}",
        banner("Figure 10c", "PCM execution-time breakdown (%)")
    );
    print!("{}", breakdown_table(&sweep, NvmKind::Pcm)?.render());

    println!(
        "{}",
        banner("Figure 10d", "PCM parallelism decomposition (%)")
    );
    print!("{}", pal_table(&sweep, NvmKind::Pcm)?.render());

    println!("\nobservations (paper §4.5):");
    let ion = sweep.require("ION-GPFS", NvmKind::Tlc)?;
    println!(
        "  ION-GPFS TLC: {:.0}% of requests reach only PAL3, {:.0}% reach PAL4 —\n\
         \"ION-local PCIe stays almost completely parallelism type PAL3, and almost\n\
         never makes it to the full parallelism of PAL4\"",
        ion.pal_pct[2], ion.pal_pct[3]
    );
    let ufs = sweep.require("CNL-UFS", NvmKind::Tlc)?;
    println!(
        "  CNL-UFS TLC: {:.0}% PAL4 — \"UFS-based architectures are able to almost\n\
         entirely reach parallelism state PAL4\"",
        ufs.pal_pct[3]
    );
    let mut pcm_min_pal4 = f64::INFINITY;
    for c in sweep.configs() {
        pcm_min_pal4 = pcm_min_pal4.min(sweep.require(c.label, NvmKind::Pcm)?.pal_pct[3]);
    }
    println!(
        "  PCM: every configuration >= {pcm_min_pal4:.0}% PAL4 — \"almost entirely in state\n\
         PAL4, a direct result of the much smaller page sizes\""
    );
    let n16 = sweep.require("CNL-NATIVE-16", NvmKind::Tlc)?;
    println!(
        "  CNL-NATIVE-16 TLC: cell activation {:.0}% of device time — \"the closer one\n\
         can get to waiting solely on the NVM itself, the better\"",
        n16.breakdown_pct[5]
    );
    Ok(())
}
