//! Quantifies §1's argument against NVM-as-cache (extension study).
//!
//! "These cache solutions may take many hours or even days to heat up ...
//! some scientific workloads work on huge datasets and never access
//! [data] twice, whereas others access data multiple times but with such
//! great spans of time between the accesses (i.e., very high reuse
//! distances) that the likelihood that it stayed in cache is extremely
//! small."
use nvmtypes::{NvmKind, MIB};
use oocnvm_bench::banner;
use oocnvm_core::cache::{replay_lru, reuse_distances};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::format::Table;
use oocnvm_core::workload::synthetic_ooc_trace;

fn main() {
    println!(
        "{}",
        banner(
            "Cache argument",
            "LRU caching vs application-managed preload on the OoC workload",
        )
    );
    // The iterative OoC sweep: 512 MiB of I/O over a 128 MiB matrix.
    let trace = synthetic_ooc_trace(512 * MIB, 6 * MIB, 42);
    let working_set = 128 * MIB;

    // 1. Reuse-distance profile: how big would a cache have to be at all?
    let reuse = reuse_distances(&trace, 1 << 20);
    println!(
        "reuse profile (1 MiB blocks): {} cold touches, {} re-accesses,\n\
         median reuse distance {} distinct blocks -> an LRU cache needs\n\
         >= {} MiB (the full working set) before half the re-accesses can hit\n",
        reuse.cold,
        reuse.reaccesses,
        reuse.median_distance.unwrap_or(0),
        reuse.capacity_for_half_hits(1 << 20).unwrap_or(0) >> 20,
    );

    // 2. LRU replay at several capacities.
    let mut t = Table::new(["cache size", "hit rate %", "heat-up (bytes through cache)"]);
    for frac in [25u64, 50, 90, 100, 150] {
        let cap = working_set * frac / 100;
        let replay = replay_lru(&trace, cap, 1 << 20);
        t.row([
            format!("{}% of working set", frac),
            format!("{:.1}", replay.hit_ratio() * 100.0),
            match replay.warm_bytes {
                Some(b) => format!("{} MiB", b >> 20),
                None => "never warms".to_string(),
            },
        ]);
    }
    print!("{}", t.render());

    // 3. Project the heat-up to the paper's scale: a multi-TB Hamiltonian
    //    behind the ION link heats at ION bandwidth.
    let ion = ExperimentSpec::new(&SystemConfig::ion_gpfs(), NvmKind::Tlc).run(&trace);
    let dataset_tb = 10.0;
    let heat_hours = dataset_tb * 1e12 / (ion.bandwidth_mb_s * 1e6) / 3600.0;
    println!(
        "\nat the measured ION-GPFS rate ({:.0} MB/s), merely filling a cache with a\n\
         {dataset_tb} TB dataset takes {heat_hours:.1} hours — the paper's \"many hours or even\n\
         days to heat up\".",
        ion.bandwidth_mb_s
    );

    // 4. The application-managed alternative: one deliberate preload at
    //    full CNL bandwidth, then every iteration reads local NVM.
    let cnl = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
    let preload_hours = dataset_tb * 1e12 / (cnl.bandwidth_mb_s * 1e6) / 3600.0;
    println!(
        "an application-managed preload moves the same {dataset_tb} TB once at CNL-UFS\n\
         bandwidth ({:.0} MB/s) in {preload_hours:.1} hours, off the critical path, and every\n\
         subsequent sweep runs at local-NVM speed with a guaranteed '100% hit rate'.",
        cnl.bandwidth_mb_s
    );
    let ninety = replay_lru(&trace, working_set * 9 / 10, 1 << 20);
    println!(
        "\n-> {}x less data motion to first full-speed iteration, with no\n\
         cache-eviction interference on the sweeps themselves ({} MiB of the\n\
         {} MiB trace were LRU misses even at 90% capacity).",
        (heat_hours / preload_hours).round(),
        (ninety.accesses - ninety.hits) * (1 << 20) / MIB,
        trace.total_bytes() / MIB,
    );
}
