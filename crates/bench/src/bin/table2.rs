//! Regenerates Table 2: the evaluated software and hardware configurations.
use oocnvm_bench::banner;
use oocnvm_core::config::{Controller, SystemConfig};
use oocnvm_core::format::Table;

fn main() {
    println!(
        "{}",
        banner(
            "Table 2",
            "relevant software and hardware configurations evaluated",
        )
    );
    let mut t = Table::new([
        "Location-FileSystem",
        "PCIe Controller",
        "PCIe Bus",
        "Interface/Speed",
        "PCIe Lanes",
    ]);
    for cfg in SystemConfig::table2() {
        t.row([
            cfg.label.to_string(),
            match cfg.controller {
                Controller::Bridged => "Bridged".into(),
                Controller::Native => "Native".into(),
            },
            match cfg.pcie_gen {
                interconnect::PcieGen::Gen2 => "2.0".to_string(),
                interconnect::PcieGen::Gen3 => "3.0".to_string(),
                interconnect::PcieGen::Gen4 => "4.0".to_string(),
            },
            cfg.bus.label().to_string(),
            cfg.lanes.to_string(),
        ]);
    }
    print!("{}", t.render());
}
