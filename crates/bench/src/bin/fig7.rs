//! Regenerates Figures 7a/7b: bandwidth achieved and bandwidth remaining
//! for the ION-GPFS baseline and the nine compute-local file systems,
//! across all four NVM media.
use nvmtypes::NvmKind;
use oocnvm_bench::sweep::Sweep;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::format::mbps;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let trace = standard_trace();
    let configs = SystemConfig::figure7();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, &trace);

    println!(
        "{}",
        banner(
            "Figure 7a",
            "bandwidth achieved (MB/s) per file system and NVM type",
        )
    );
    print!(
        "{}",
        sweep.media_table("", |r| mbps(r.bandwidth_mb_s)).render()
    );

    println!(
        "{}",
        banner("Figure 7b", "bandwidth remaining in the NVM media (MB/s)")
    );
    print!(
        "{}",
        sweep.media_table("", |r| mbps(r.remaining_mb_s)).render()
    );

    // The section-4.3 observations, computed from the sweep.
    let bw = |label: &str, k| sweep.require(label, k).map(|r| r.bandwidth_mb_s);
    println!("\nobservations (paper §4.3):");
    for (kind, claim) in [
        (NvmKind::Tlc, "7%"),
        (NvmKind::Mlc, "78%"),
        (NvmKind::Slc, "108%"),
    ] {
        let ion = bw("ION-GPFS", kind)?;
        let mut worst = f64::INFINITY;
        for c in configs.iter().filter(|c| !c.fs.is_ion()) {
            worst = worst.min(bw(c.label, kind)?);
        }
        println!(
            "  worst CNL FS vs ION-GPFS on {}: +{:.0}%   (paper: +{claim})",
            kind.label(),
            (worst / ion - 1.0) * 100.0
        );
    }
    let e2 = bw("CNL-EXT2", NvmKind::Tlc)?;
    let bt = bw("CNL-BTRFS", NvmKind::Tlc)?;
    println!(
        "  ext2 -> BTRFS on TLC: x{:.2}   (paper: 'a factor of 2')",
        bt / e2
    );
    let e4 = bw("CNL-EXT4", NvmKind::Tlc)?;
    let e4l = bw("CNL-EXT4-L", NvmKind::Tlc)?;
    println!(
        "  ext4 -> ext4-L on TLC: +{:.0} MB/s   (paper: 'about 1GB/s')",
        e4l - e4
    );
    let mut pcm = Vec::new();
    for c in configs.iter().filter(|c| !c.fs.is_ion()) {
        pcm.push(bw(c.label, NvmKind::Pcm)?);
    }
    let spread =
        pcm.iter().cloned().fold(0.0, f64::max) / pcm.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  PCM spread across CNL file systems: x{spread:.2}   (paper: PCM 'obscures the differences')"
    );
    Ok(())
}
