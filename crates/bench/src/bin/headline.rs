//! Regenerates the paper's §7 headline numbers:
//!
//! * compute-local SSDs beat client-remote SSDs by ~108% on average,
//! * UFS adds ~52% over the traditional-file-system CNL baseline,
//! * the hardware improvements add another ~250%,
//! * end-to-end: ~10.3x over ION-local NVM.
//!
//! `--json <path>` additionally writes the matrix in a stable versioned
//! schema (`oocnvm.headline/1`) for downstream tooling.
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nvmtypes::NvmKind;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{find, run_sweep};
use simobs::json::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    println!(
        "{}",
        banner("§7 headline", "average improvements across NVM media")
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace = standard_trace();
    let configs = SystemConfig::table2();
    let reports = run_sweep(&configs, &NvmKind::ALL, &trace);
    let bw = |label: &str, k| find(&reports, label, k).unwrap().bandwidth_mb_s;

    // Baseline CNL = the traditional (non-UFS) local file systems.
    let trad: Vec<&str> = vec![
        "CNL-JFS",
        "CNL-BTRFS",
        "CNL-XFS",
        "CNL-REISERFS",
        "CNL-EXT2",
        "CNL-EXT3",
        "CNL-EXT4",
        "CNL-EXT4-L",
    ];

    let mut cnl_vs_ion = Vec::new();
    let mut ufs_vs_cnl = Vec::new();
    let mut hw_vs_ufs = Vec::new();
    let mut total = Vec::new();
    let mut rows = Vec::new();
    for k in NvmKind::ALL {
        let ion = bw("ION-GPFS", k);
        let cnl_mean = trad.iter().map(|l| bw(l, k)).sum::<f64>() / trad.len() as f64;
        let ufs = bw("CNL-UFS", k);
        let n16 = bw("CNL-NATIVE-16", k);
        cnl_vs_ion.push(cnl_mean / ion - 1.0);
        ufs_vs_cnl.push(ufs / cnl_mean - 1.0);
        hw_vs_ufs.push(n16 / ufs - 1.0);
        total.push(n16 / ion);
        rows.push(
            Json::obj()
                .field("kind", Json::str(k.label()))
                .field("ion_mb_s", Json::f64_3(ion))
                .field("cnl_mean_mb_s", Json::f64_3(cnl_mean))
                .field("ufs_mb_s", Json::f64_3(ufs))
                .field("native16_mb_s", Json::f64_3(n16))
                .field("total_x", Json::f64_3(n16 / ion)),
        );
        println!(
            "  {}: ION {:.0}  CNL-mean {:.0}  UFS {:.0}  NATIVE-16 {:.0}  (x{:.1} end-to-end)",
            k.label(),
            ion,
            cnl_mean,
            ufs,
            n16,
            n16 / ion
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "  compute-local vs client-remote SSDs: +{:.0}%   (paper: 'on average 108%')",
        avg(&cnl_vs_ion) * 100.0
    );
    println!(
        "  UFS over the baseline CNL approaches: +{:.0}%   (paper: 'an additional 52%')",
        avg(&ufs_vs_cnl) * 100.0
    );
    println!(
        "  hardware-optimized SSDs over UFS: +{:.0}%   (paper: 'an additional 250%')",
        avg(&hw_vs_ufs) * 100.0
    );
    println!(
        "  overall NATIVE-16 vs ION-local: x{:.1}   (paper: 'a relative improvement of 10.3 times')",
        avg(&total)
    );

    if let Some(path) = json_path {
        let doc = Json::obj()
            .field("format", Json::str("oocnvm.headline/1"))
            .field("rows", Json::Arr(rows))
            .field(
                "averages",
                Json::obj()
                    .field("cnl_vs_ion_pct", Json::f64_3(avg(&cnl_vs_ion) * 100.0))
                    .field("ufs_vs_cnl_pct", Json::f64_3(avg(&ufs_vs_cnl) * 100.0))
                    .field("hw_vs_ufs_pct", Json::f64_3(avg(&hw_vs_ufs) * 100.0))
                    .field("total_x", Json::f64_3(avg(&total))),
            );
        match std::fs::write(&path, doc.render()) {
            Ok(()) => println!("  json written to {path}"),
            Err(e) => {
                println!("  json write to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
