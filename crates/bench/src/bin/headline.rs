//! Regenerates the paper's §7 headline numbers:
//!
//! * compute-local SSDs beat client-remote SSDs by ~108% on average,
//! * UFS adds ~52% over the traditional-file-system CNL baseline,
//! * the hardware improvements add another ~250%,
//! * end-to-end: ~10.3x over ION-local NVM.
//!
//! `--json <path>` additionally writes the matrix in a stable versioned
//! schema (`oocnvm.headline/2`) for downstream tooling. The whole
//! computation lives in [`oocnvm_bench::headline`] so the determinism
//! tests can pin it byte-identical at every thread count.
use oocnvm_bench::cli::StudyArgs;
use oocnvm_bench::{banner, headline, standard_trace};
use std::process::ExitCode;

fn main() -> ExitCode {
    println!(
        "{}",
        banner("§7 headline", "average improvements across NVM media")
    );
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("headline: {e}");
            return ExitCode::from(2);
        }
    };
    let json_path = args.json;
    let trace = standard_trace();
    let Some(report) = headline::report(&trace) else {
        eprintln!("headline: the table-2 sweep is missing a labelled configuration");
        return ExitCode::FAILURE;
    };
    print!("{}", report.text);

    if let Some(path) = json_path {
        match std::fs::write(&path, &report.json) {
            Ok(()) => println!("  json written to {path}"),
            Err(e) => {
                println!("  json write to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
