//! Regenerates Figure 6: block access patterns of the OoC workload at the
//! POSIX level (compute node) vs under GPFS (I/O nodes).
//!
//! The POSIX panel comes from a *real* LOBPCG run over the out-of-core
//! Hamiltonian store; the GPFS panel is the same trace after the striping
//! mutation. The paper's observation: "GPFS divides up what was
//! previously largely sequential in the compute-local trace".
use oocfs::FsKind;
use oocnvm_bench::banner;
use ooctrace::stats::{block_scatter, posix_scatter, ScatterPoint};
use ooctrace::AccessStats;

/// Renders points as a rows x cols ASCII scatter (sequence on x, address
/// on y, matching the paper's axes).
fn ascii_scatter(points: &[ScatterPoint], rows: usize, cols: usize) -> String {
    if points.is_empty() {
        return String::from("(empty)\n");
    }
    let max_seq = points.iter().map(|p| p.seq).max().unwrap_or(0).max(1);
    let min_addr = points.iter().map(|p| p.addr).min().unwrap_or(0);
    let max_addr = points
        .iter()
        .map(|p| p.addr)
        .max()
        .unwrap_or(0)
        .max(min_addr + 1);
    let mut grid = vec![vec![' '; cols]; rows];
    for p in points {
        let x = ((p.seq as f64 / max_seq as f64) * (cols - 1) as f64) as usize;
        let y = (((p.addr - min_addr) as f64 / (max_addr - min_addr) as f64) * (rows - 1) as f64)
            as usize;
        grid[rows - 1 - y][x] = '*';
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("> access sequence\n");
    out
}

fn main() {
    println!(
        "{}",
        banner(
            "Figure 6",
            "block access patterns: POSIX at the compute node vs sub-GPFS at the IONs",
        )
    );
    // A real eigensolver run: synthetic CI Hamiltonian, LOBPCG, traced
    // panel reads.
    let (posix, eigs) = oocnvm_core::workload::lobpcg_posix_trace(4000, 8, 6, 125);
    println!(
        "LOBPCG produced {} POSIX records ({} MiB read), lowest Ritz value {:.4}\n",
        posix.len(),
        posix.total_bytes() >> 20,
        eigs[0]
    );

    let limit = 4800; // the paper plots the first ~4800 accesses
    let gpfs = FsKind::IonGpfs.transform(&posix);

    let ps = AccessStats::of_posix(&posix);
    let gs = AccessStats::of_block(&gpfs);
    println!("GPFS address space (top panel) — sub-GPFS block trace at the IONs:");
    print!("{}", ascii_scatter(&block_scatter(&gpfs, limit), 16, 64));
    println!(
        "  requests={} mean={:.0} B sequentiality={:.2}\n",
        gs.count, gs.mean_size, gs.sequentiality
    );
    println!("POSIX address space (bottom panel) — application trace at the CN:");
    print!("{}", ascii_scatter(&posix_scatter(&posix, limit), 16, 64));
    println!(
        "  requests={} mean={:.0} B sequentiality={:.2}",
        ps.count, ps.mean_size, ps.sequentiality
    );
    println!(
        "\nGPFS turned a {:.0}%-sequential stream into a {:.0}%-sequential one.",
        ps.sequentiality * 100.0,
        gs.sequentiality * 100.0
    );
}
