//! Energy analysis (extension): the paper motivates NVM acceleration
//! partly by the "high energy use" of distributed DRAM + networks. This
//! binary quantifies media energy per configuration and medium, and the
//! energy cost of the ION-remote data path relative to compute-local.
use nvmtypes::NvmKind;
use oocnvm_bench::sweep::Sweep;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::{Location, SystemConfig};
use oocnvm_core::format::Table;
use std::process::ExitCode;

/// Network-interface energy per byte for the ION path: a QDR HCA burns
/// roughly 10 W at 4 GB/s line rate, twice (CN side and ION side), plus
/// the ION server's share. Representative, documented in DESIGN.md.
const ION_NETWORK_NJ_PER_BYTE: f64 = 8.0;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("energy: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    println!(
        "{}",
        banner("Energy", "media energy per configuration (extension study)")
    );
    let trace = standard_trace();
    let configs = [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl(oocfs::FsKind::Ext4),
        SystemConfig::cnl_ufs(),
        SystemConfig::cnl_native16(),
    ];
    let sweep = Sweep::run(&configs, &NvmKind::ALL, &trace);

    let mut t = Table::new([
        "config",
        "medium",
        "total mJ",
        "nJ/B (media)",
        "nJ/B (+net)",
        "mean W",
    ]);
    for c in sweep.configs() {
        for kind in NvmKind::ALL {
            let r = sweep.require(c.label, kind)?;
            let e = &r.run.energy;
            let media_njb = e.nj_per_byte();
            let path_njb = media_njb
                + if c.location == Location::IonRemote {
                    ION_NETWORK_NJ_PER_BYTE
                } else {
                    0.0
                };
            t.row([
                c.label.to_string(),
                kind.label().to_string(),
                format!("{:.1}", e.total_mj()),
                format!("{:.1}", media_njb),
                format!("{:.1}", path_njb),
                format!("{:.2}", e.mean_power_w(r.run.makespan)),
            ]);
        }
    }
    print!("{}", t.render());

    // Headline: energy per byte delivered, ION vs CNL on the same medium.
    println!("\nobservations:");
    for kind in [NvmKind::Tlc, NvmKind::Pcm] {
        let ion = sweep.require("ION-GPFS", kind)?;
        let ufs = sweep.require("CNL-UFS", kind)?;
        let ion_njb = ion.run.energy.nj_per_byte() + ION_NETWORK_NJ_PER_BYTE;
        let ufs_njb = ufs.run.energy.nj_per_byte();
        println!(
            "  {}: ION path {:.1} nJ/B vs compute-local {:.1} nJ/B — x{:.1} less energy per byte",
            kind.label(),
            ion_njb,
            ufs_njb,
            ion_njb / ufs_njb
        );
    }
    println!(
        "  (static die power dominates slow configurations: finishing the same\n\
         work sooner is itself an energy optimisation)"
    );
    Ok(())
}
