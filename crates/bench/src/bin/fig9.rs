//! Regenerates Figures 9a/9b: average channel-level and package-level
//! utilization across all thirteen configurations and four NVM types.
use nvmtypes::NvmKind;
use oocnvm_bench::sweep::Sweep;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::format::pct;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig9: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let trace = standard_trace();
    let configs = SystemConfig::table2();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, &trace);

    println!("{}", banner("Figure 9a", "channel-level utilization (%)"));
    print!(
        "{}",
        sweep.media_table(" %", |r| pct(r.channel_util)).render()
    );

    println!("{}", banner("Figure 9b", "package-level utilization (%)"));
    print!(
        "{}",
        sweep.media_table(" %", |r| pct(r.package_util)).render()
    );

    println!("\nobservations (paper §4.5):");
    let ion = sweep.require("ION-GPFS", NvmKind::Tlc)?;
    let ufs = sweep.require("CNL-UFS", NvmKind::Tlc)?;
    println!(
        "  ION-GPFS (TLC): channels {:.0}% busy but packages only {:.0}% — GPFS striping\n\
         \"results in more randomized accesses and more channels being utilized\n\
         simultaneously\" while \"the utilization of the underlying packages is quite low\"",
        ion.channel_util * 100.0,
        ion.package_util * 100.0
    );
    println!(
        "  CNL-UFS (TLC): channels {:.0}%, packages {:.0}% — \"near full utilization\"",
        ufs.channel_util * 100.0,
        ufs.package_util * 100.0
    );
    Ok(())
}
