//! Regenerates Figures 9a/9b: average channel-level and package-level
//! utilization across all thirteen configurations and four NVM types.
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nvmtypes::NvmKind;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{find, run_sweep, ExperimentReport};
use oocnvm_core::format::{pct, Table};

fn util_table(
    reports: &[ExperimentReport],
    configs: &[SystemConfig],
    get: impl Fn(&ExperimentReport) -> f64,
) -> Table {
    let mut t = Table::new(["config", "TLC %", "MLC %", "SLC %", "PCM %"]);
    for c in configs {
        t.row([
            c.label.to_string(),
            pct(get(find(reports, c.label, NvmKind::Tlc).unwrap())),
            pct(get(find(reports, c.label, NvmKind::Mlc).unwrap())),
            pct(get(find(reports, c.label, NvmKind::Slc).unwrap())),
            pct(get(find(reports, c.label, NvmKind::Pcm).unwrap())),
        ]);
    }
    t
}

fn main() {
    let trace = standard_trace();
    let configs = SystemConfig::table2();
    let reports = run_sweep(&configs, &NvmKind::ALL, &trace);

    println!("{}", banner("Figure 9a", "channel-level utilization (%)"));
    print!(
        "{}",
        util_table(&reports, &configs, |r| r.channel_util).render()
    );

    println!("{}", banner("Figure 9b", "package-level utilization (%)"));
    print!(
        "{}",
        util_table(&reports, &configs, |r| r.package_util).render()
    );

    println!("\nobservations (paper §4.5):");
    let ion = find(&reports, "ION-GPFS", NvmKind::Tlc).unwrap();
    let ufs = find(&reports, "CNL-UFS", NvmKind::Tlc).unwrap();
    println!(
        "  ION-GPFS (TLC): channels {:.0}% busy but packages only {:.0}% — GPFS striping\n\
         \"results in more randomized accesses and more channels being utilized\n\
         simultaneously\" while \"the utilization of the underlying packages is quite low\"",
        ion.channel_util * 100.0,
        ion.package_util * 100.0
    );
    println!(
        "  CNL-UFS (TLC): channels {:.0}%, packages {:.0}% — \"near full utilization\"",
        ufs.channel_util * 100.0,
        ufs.package_util * 100.0
    );
}
