//! `bench` — the pinned perf scenario with dual-domain profiling and
//! baseline regression checking.
//!
//! ```text
//! cargo run --release -p oocnvm-bench --bin bench -- \
//!     [--smoke] [--json PATH] [--baseline PATH] [--tolerance PCT] \
//!     [--alloc-stats]
//! ```
//!
//! Runs [`oocnvm_bench::perf::BenchScenario::pinned`] under a real host
//! clock, prints the study, optionally writes the `oocnvm.bench/1` JSON,
//! and diffs it against the committed baseline
//! (`results/BENCH_core.json` by default): the `pinned` subtree must
//! match byte-for-byte, `host.wall_ms.total` gets a tolerance band
//! (`--tolerance`, or `OOCNVM_BENCH_TOL_PCT`, default 150%). `--smoke`
//! is the CI entry: a missing baseline, any pinned drift, a host-time
//! regression beyond tolerance, or a profile-on vs profile-off result
//! difference all fail the run.
//!
//! `--alloc-stats` reports how many heap allocations (and bytes) the
//! study phase performed, via a counting global allocator, and records
//! them under `host.alloc` in the JSON — an additive, host-domain field
//! (the baseline diff ignores it). This is the dynamic cross-check of
//! the static `simlint` hot-path inventory: after a burn-down PR, the
//! allocation count here should drop (see `docs/STATIC_ANALYSIS.md`).
//!
//! To regenerate the baseline after an intentional scenario change:
//! `cargo run --release -p oocnvm-bench --bin bench -- --json results/BENCH_core.json`.

use oocnvm_bench::cli::StudyArgs;
use oocnvm_bench::perf::{render_report, BenchScenario, WallClock, DEFAULT_TOL_PCT};
use simobs::json::Json;
use std::process::ExitCode;

/// Allocation counting for `--alloc-stats`. Lives in this bin only — a
/// global allocator is a link-time property of the final binary, so
/// putting it in the library would silently tax every study bin. It is
/// always installed (there is no runtime opt-in for `#[global_allocator]`);
/// the flag only controls whether the counters are read and reported.
/// Two sequentially-consistent atomic adds per allocation are noise next
/// to the system allocator call they wrap.
mod alloc_stats {
    use nvmtypes::convert::u64_from_usize;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to [`System`], counting every allocation and its size.
    pub struct Counting;

    // The one permitted `unsafe` in the workspace: implementing
    // `GlobalAlloc` is an unsafe trait contract. Both methods defer
    // entirely to `System` with the caller's own layout; the counters
    // are plain atomics and never allocate (no recursion hazard).
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            BYTES.fetch_add(u64_from_usize(layout.size()), Ordering::SeqCst);
            // SAFETY: same layout contract the caller gave us.
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr` came from `Self::alloc`, which is `System`.
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Current `(allocations, bytes)` totals since process start; diff
    /// two snapshots to attribute a phase.
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCATIONS.load(Ordering::SeqCst),
            BYTES.load(Ordering::SeqCst),
        )
    }
}

#[global_allocator]
static ALLOC: alloc_stats::Counting = alloc_stats::Counting;

/// Re-renders `json` with `host.alloc = {allocations, bytes}` appended.
/// Additive only: the canonical renderer keeps every existing field
/// byte-identical, and `simprof::compare` diffs `pinned` (exact) and
/// `host.wall_ms.total` (banded), so baselines without the field still
/// compare clean.
fn with_alloc_stats(json: &str, allocations: u64, bytes: u64) -> String {
    let Ok(mut doc) = simobs::json::parse(json) else {
        return json.to_string();
    };
    if let Json::Obj(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key == "host" {
                if let Json::Obj(host) = value {
                    host.push((
                        "alloc".to_string(),
                        Json::obj()
                            .field("allocations", Json::u64(allocations))
                            .field("bytes", Json::u64(bytes)),
                    ));
                }
            }
        }
    }
    doc.render()
}

fn main() -> ExitCode {
    // `--alloc-stats` is this bin's own flag; strip it before the shared
    // parser, which treats unknown flags as errors.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let before = raw.len();
    raw.retain(|a| a != "--alloc-stats");
    let alloc_stats = raw.len() != before;
    let args = match StudyArgs::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let json_path = args.json;
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| "results/BENCH_core.json".to_string());
    let tolerance = args
        .tolerance
        .or_else(|| {
            std::env::var("OOCNVM_BENCH_TOL_PCT")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(DEFAULT_TOL_PCT);

    let (allocs_before, bytes_before) = alloc_stats::snapshot();
    let report = render_report(&BenchScenario::pinned(), Box::new(WallClock::new()));
    let (allocs_after, bytes_after) = alloc_stats::snapshot();
    print!("{}", report.text);

    let report_json = if alloc_stats {
        let allocations = allocs_after.saturating_sub(allocs_before);
        let bytes = bytes_after.saturating_sub(bytes_before);
        println!("  heap: {allocations} allocations, {bytes} bytes during the study");
        with_alloc_stats(&report.json, allocations, bytes)
    } else {
        report.json
    };

    let mut failed = report.text.contains("FAIL");

    if let Some(path) = &json_path {
        match std::fs::write(path, &report_json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => {
                println!("json write to {path} failed: {e}");
                failed = true;
            }
        }
    }

    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            let violations = simprof::compare(&baseline, &report_json, tolerance);
            if violations.is_empty() {
                println!("baseline {baseline_path}: OK (tolerance {tolerance}%)");
            } else {
                println!(
                    "baseline {baseline_path}: {} violation(s)",
                    violations.len()
                );
                for v in &violations {
                    println!("  {v}");
                }
                failed = true;
            }
        }
        Err(e) => {
            println!("baseline {baseline_path} not readable: {e}");
            if smoke {
                failed = true;
            } else {
                println!("(regenerate with: bench --json {baseline_path})");
            }
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
