//! `bench` — the pinned perf scenario with dual-domain profiling and
//! baseline regression checking.
//!
//! ```text
//! cargo run --release -p oocnvm-bench --bin bench -- \
//!     [--smoke] [--json PATH] [--baseline PATH] [--tolerance PCT]
//! ```
//!
//! Runs [`oocnvm_bench::perf::BenchScenario::pinned`] under a real host
//! clock, prints the study, optionally writes the `oocnvm.bench/1` JSON,
//! and diffs it against the committed baseline
//! (`results/BENCH_core.json` by default): the `pinned` subtree must
//! match byte-for-byte, `host.wall_ms.total` gets a tolerance band
//! (`--tolerance`, or `OOCNVM_BENCH_TOL_PCT`, default 150%). `--smoke`
//! is the CI entry: a missing baseline, any pinned drift, a host-time
//! regression beyond tolerance, or a profile-on vs profile-off result
//! difference all fail the run.
//!
//! To regenerate the baseline after an intentional scenario change:
//! `cargo run --release -p oocnvm-bench --bin bench -- --json results/BENCH_core.json`.

use oocnvm_bench::cli::StudyArgs;
use oocnvm_bench::perf::{render_report, BenchScenario, WallClock, DEFAULT_TOL_PCT};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let json_path = args.json;
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| "results/BENCH_core.json".to_string());
    let tolerance = args
        .tolerance
        .or_else(|| {
            std::env::var("OOCNVM_BENCH_TOL_PCT")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(DEFAULT_TOL_PCT);

    let report = render_report(&BenchScenario::pinned(), Box::new(WallClock::new()));
    print!("{}", report.text);

    let mut failed = report.text.contains("FAIL");

    if let Some(path) = &json_path {
        match std::fs::write(path, &report.json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => {
                println!("json write to {path} failed: {e}");
                failed = true;
            }
        }
    }

    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            let violations = simprof::compare(&baseline, &report.json, tolerance);
            if violations.is_empty() {
                println!("baseline {baseline_path}: OK (tolerance {tolerance}%)");
            } else {
                println!(
                    "baseline {baseline_path}: {} violation(s)",
                    violations.len()
                );
                for v in &violations {
                    println!("  {v}");
                }
                failed = true;
            }
        }
        Err(e) => {
            println!("baseline {baseline_path} not readable: {e}");
            if smoke {
                failed = true;
            } else {
                println!("(regenerate with: bench --json {baseline_path})");
            }
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
