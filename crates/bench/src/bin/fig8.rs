//! Regenerates Figures 8a/8b: bandwidth achieved and remaining for the
//! device-improvement ladder — CNL-UFS, CNL-BRIDGE-16, CNL-NATIVE-8,
//! CNL-NATIVE-16.
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nvmtypes::NvmKind;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{find, run_sweep};
use oocnvm_core::format::{mbps, Table};

fn main() {
    let trace = standard_trace();
    let configs = SystemConfig::figure8();
    let reports = run_sweep(&configs, &NvmKind::ALL, &trace);

    println!(
        "{}",
        banner(
            "Figure 8a",
            "bandwidth achieved (MB/s) through the device improvements",
        )
    );
    let mut t = Table::new(["config", "TLC", "MLC", "SLC", "PCM"]);
    for c in &configs {
        t.row([
            c.label.to_string(),
            mbps(
                find(&reports, c.label, NvmKind::Tlc)
                    .unwrap()
                    .bandwidth_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Mlc)
                    .unwrap()
                    .bandwidth_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Slc)
                    .unwrap()
                    .bandwidth_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Pcm)
                    .unwrap()
                    .bandwidth_mb_s,
            ),
        ]);
    }
    print!("{}", t.render());

    println!(
        "{}",
        banner("Figure 8b", "bandwidth remaining in the NVM media (MB/s)")
    );
    let mut t = Table::new(["config", "TLC", "MLC", "SLC", "PCM"]);
    for c in &configs {
        t.row([
            c.label.to_string(),
            mbps(
                find(&reports, c.label, NvmKind::Tlc)
                    .unwrap()
                    .remaining_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Mlc)
                    .unwrap()
                    .remaining_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Slc)
                    .unwrap()
                    .remaining_mb_s,
            ),
            mbps(
                find(&reports, c.label, NvmKind::Pcm)
                    .unwrap()
                    .remaining_mb_s,
            ),
        ]);
    }
    print!("{}", t.render());

    let bw = |label: &str, k| find(&reports, label, k).unwrap().bandwidth_mb_s;
    println!("\nobservations (paper §4.4):");
    let mean = |label: &str| NvmKind::ALL.iter().map(|&k| bw(label, k)).sum::<f64>() / 4.0;
    println!(
        "  BRIDGE-16 over UFS-x8 (mean): +{:.0}%   (paper: 'increases only marginally')",
        (mean("CNL-BRIDGE-16") / mean("CNL-UFS") - 1.0) * 100.0
    );
    println!(
        "  NATIVE-8 over BRIDGE-16 (mean): x{:.1}   (paper: 'a factor of 2, despite half the lanes')",
        mean("CNL-NATIVE-8") / mean("CNL-BRIDGE-16")
    );
    // ION reference for the 16x / 8x claims.
    let ion_reports = run_sweep(&[SystemConfig::ion_gpfs()], &NvmKind::ALL, &trace);
    let ion = |k| find(&ion_reports, "ION-GPFS", k).unwrap().bandwidth_mb_s;
    println!(
        "  NATIVE-16 over ION-GPFS on PCM: x{:.1}   (paper: 'an incredible factor of 16')",
        bw("CNL-NATIVE-16", NvmKind::Pcm) / ion(NvmKind::Pcm)
    );
    println!(
        "  NATIVE-16 over ION-GPFS on TLC: x{:.1}   (paper: 'an increase of 8 times')",
        bw("CNL-NATIVE-16", NvmKind::Tlc) / ion(NvmKind::Tlc)
    );
}
