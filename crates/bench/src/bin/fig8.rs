//! Regenerates Figures 8a/8b: bandwidth achieved and remaining for the
//! device-improvement ladder — CNL-UFS, CNL-BRIDGE-16, CNL-NATIVE-8,
//! CNL-NATIVE-16.
use nvmtypes::NvmKind;
use oocnvm_bench::sweep::Sweep;
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::format::mbps;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig8: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let trace = standard_trace();
    let configs = SystemConfig::figure8();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, &trace);

    println!(
        "{}",
        banner(
            "Figure 8a",
            "bandwidth achieved (MB/s) through the device improvements",
        )
    );
    print!(
        "{}",
        sweep.media_table("", |r| mbps(r.bandwidth_mb_s)).render()
    );

    println!(
        "{}",
        banner("Figure 8b", "bandwidth remaining in the NVM media (MB/s)")
    );
    print!(
        "{}",
        sweep.media_table("", |r| mbps(r.remaining_mb_s)).render()
    );

    let bw = |label: &str, k| sweep.require(label, k).map(|r| r.bandwidth_mb_s);
    println!("\nobservations (paper §4.4):");
    let mean = |label: &str| -> Result<f64, String> {
        let mut sum = 0.0;
        for &k in &NvmKind::ALL {
            sum += bw(label, k)?;
        }
        Ok(sum / 4.0)
    };
    println!(
        "  BRIDGE-16 over UFS-x8 (mean): +{:.0}%   (paper: 'increases only marginally')",
        (mean("CNL-BRIDGE-16")? / mean("CNL-UFS")? - 1.0) * 100.0
    );
    println!(
        "  NATIVE-8 over BRIDGE-16 (mean): x{:.1}   (paper: 'a factor of 2, despite half the lanes')",
        mean("CNL-NATIVE-8")? / mean("CNL-BRIDGE-16")?
    );
    // ION reference for the 16x / 8x claims.
    let ion_sweep = Sweep::run(&[SystemConfig::ion_gpfs()], &NvmKind::ALL, &trace);
    let ion = |k| ion_sweep.require("ION-GPFS", k).map(|r| r.bandwidth_mb_s);
    println!(
        "  NATIVE-16 over ION-GPFS on PCM: x{:.1}   (paper: 'an incredible factor of 16')",
        bw("CNL-NATIVE-16", NvmKind::Pcm)? / ion(NvmKind::Pcm)?
    );
    println!(
        "  NATIVE-16 over ION-GPFS on TLC: x{:.1}   (paper: 'an increase of 8 times')",
        bw("CNL-NATIVE-16", NvmKind::Tlc)? / ion(NvmKind::Tlc)?
    );
    Ok(())
}
