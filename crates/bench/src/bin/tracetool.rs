//! Trace inspection and generation utility.
//!
//! ```text
//! tracetool gen <mib> <record_kib> <seed> [out.trace]   synth OoC trace
//! tracetool lobpcg <n> <block> <iters> <panel> [out]    real solver trace
//! tracetool stats <file.trace>                          POSIX-level stats
//! tracetool fs <fs-name> <file.trace>                   mutate + block stats
//! ```
//!
//! Traces use the one-line-per-record text format of
//! [`ooctrace::PosixTrace::to_text`].
use nvmtypes::MIB;
use oocfs::FsKind;
use oocnvm_core::workload::{lobpcg_posix_trace, synthetic_ooc_trace};
use ooctrace::{AccessStats, PosixTrace};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool gen <mib> <record_kib> <seed> [out]\n  \
         tracetool lobpcg <n> <block> <iters> <panel> [out]\n  \
         tracetool stats <file>\n  tracetool fs <fs-name> <file>\n\
         fs names: gpfs jfs btrfs xfs reiserfs ext2 ext3 ext4 ext4-l ufs"
    );
    ExitCode::from(2)
}

fn fs_by_name(name: &str) -> Option<FsKind> {
    // Name table instead of a string match: `FsKind::ALL` keeps this
    // exhaustive as kinds are added (gpfs aliases IonGpfs; ext4-l/ext4l
    // both spell Ext4L).
    let lower = name.to_ascii_lowercase();
    let spelled = |k: FsKind| -> &'static str {
        match k {
            FsKind::IonGpfs => "gpfs",
            FsKind::Jfs => "jfs",
            FsKind::Btrfs => "btrfs",
            FsKind::Xfs => "xfs",
            FsKind::ReiserFs => "reiserfs",
            FsKind::Ext2 => "ext2",
            FsKind::Ext3 => "ext3",
            FsKind::Ext4 => "ext4",
            FsKind::Ext4L => "ext4-l",
            FsKind::Ufs => "ufs",
        }
    };
    if lower == "ext4l" {
        return Some(FsKind::Ext4L);
    }
    FsKind::ALL.into_iter().find(|&k| spelled(k) == lower)
}

fn emit(trace: &PosixTrace, out: Option<&str>) -> std::io::Result<()> {
    match out {
        Some(path) => std::fs::write(path, trace.to_text()),
        None => {
            print!("{}", trace.to_text());
            Ok(())
        }
    }
}

fn print_posix_stats(trace: &PosixTrace) {
    let s = AccessStats::of_posix(trace);
    println!("records:        {}", s.count);
    println!("bytes:          {} ({} MiB)", s.bytes, s.bytes >> 20);
    println!("read fraction:  {:.1}%", trace.read_fraction() * 100.0);
    println!("mean request:   {:.0} B", s.mean_size);
    println!("sequentiality:  {:.2}", s.sequentiality);
    println!("median size:    >= {} B", s.sizes.median_bucket_floor());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse = |s: &String| s.parse::<u64>().ok();
    match args.first().map(String::as_str) {
        Some("gen") if args.len() >= 4 => {
            let (Some(mib), Some(rec), Some(seed)) =
                (parse(&args[1]), parse(&args[2]), parse(&args[3]))
            else {
                return usage();
            };
            let trace = synthetic_ooc_trace(mib * MIB, rec * 1024, seed);
            if emit(&trace, args.get(4).map(String::as_str)).is_err() {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("lobpcg") if args.len() >= 5 => {
            let (Some(n), Some(block), Some(iters), Some(panel)) = (
                parse(&args[1]),
                parse(&args[2]),
                parse(&args[3]),
                parse(&args[4]),
            ) else {
                return usage();
            };
            let (trace, eigs) =
                lobpcg_posix_trace(n as usize, block as usize, iters as usize, panel as usize);
            eprintln!("lowest Ritz values: {:?}", &eigs[..eigs.len().min(4)]);
            if emit(&trace, args.get(5).map(String::as_str)).is_err() {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() == 2 => {
            let Ok(text) = std::fs::read_to_string(&args[1]) else {
                eprintln!("cannot read {}", args[1]);
                return ExitCode::FAILURE;
            };
            match PosixTrace::from_text(&text) {
                Ok(trace) => {
                    print_posix_stats(&trace);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fs") if args.len() == 3 => {
            let Some(kind) = fs_by_name(&args[1]) else {
                return usage();
            };
            let Ok(text) = std::fs::read_to_string(&args[2]) else {
                eprintln!("cannot read {}", args[2]);
                return ExitCode::FAILURE;
            };
            match PosixTrace::from_text(&text) {
                Ok(trace) => {
                    let block = kind.transform(&trace);
                    let s = AccessStats::of_block(&block);
                    println!("file system:    {}", kind.label());
                    println!("requests:       {}", s.count);
                    println!("bytes:          {} (data {})", s.bytes, block.data_bytes());
                    println!("mean request:   {:.0} B", s.mean_size);
                    println!("sequentiality:  {:.2}", s.sequentiality);
                    println!("queue depth:    {}", block.queue_depth);
                    println!(
                        "sync requests:  {}",
                        block.requests.iter().filter(|r| r.sync).count()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(_) | None => usage(),
    }
}
