//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. GPFS stripe-size sweep ("larger stripes combat this randomizing
//!    trend, but only to limited extents", §4.2);
//! 2. the block-layer coalescing cap (the ext4 -> ext4-L knob, §4.3);
//! 3. the FTL's physical page-allocation (striping) order;
//! 4. PAQ-style out-of-order die service vs serialised service;
//! 5. host queue depth;
//! 6. cache-register reads (die re-arms while the bus drains);
//! 7. DOoC prefetch workers vs pool hit ratio;
//! 8. worn-NAND read retries (endurance ablation).
use flashsim::MediaConfig;
use interconnect::sdr400;
use nvmtypes::{NvmKind, MIB};
use ooc::dooc::{DataPool, Prefetcher};
use oocfs::{FileSystemModel, FsKind, FsModel, GpfsModel};
use oocnvm_bench::{banner, standard_trace};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::format::Table;
use ooctrace::BlockTrace;
use rayon::prelude::*;
use ssd::{Dim, SsdConfig, SsdDevice};
use std::process::ExitCode;
use std::sync::Arc;

fn tlc_run(device: &SsdDevice, block: &BlockTrace) -> f64 {
    device.run(block).bandwidth_mb_s
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ablations: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let posix = standard_trace();

    println!(
        "{}",
        banner("Ablation 1", "GPFS stripe size (TLC, ION data path)")
    );
    let ion_dev = SystemConfig::ion_gpfs().device(NvmKind::Tlc);
    let mut t = Table::new(["stripe", "bandwidth MB/s", "device sequentiality"]);
    let rows: Vec<[String; 3]> = [128 * 1024, 256 * 1024, 512 * 1024, MIB, 4 * MIB]
        .into_par_iter()
        .map(|stripe| {
            let block = GpfsModel::new().with_stripe(stripe).transform(&posix);
            [
                format!("{} KiB", stripe >> 10),
                format!("{:.0}", tlc_run(&ion_dev, &block)),
                format!("{:.2}", block.sequentiality()),
            ]
        })
        .collect();
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!("-> gains flatten: striping itself, not the stripe size, is the problem.\n");

    println!(
        "{}",
        banner(
            "Ablation 2",
            "block-layer coalescing cap (the ext4-L knob, TLC)",
        )
    );
    let cnl_dev = SystemConfig::cnl(FsKind::Ext4).device(NvmKind::Tlc);
    let base = FsKind::Ext4
        .params()
        .ok_or("ext4 has no block-layer parameter set")?;
    let mut t = Table::new(["max request", "bandwidth MB/s"]);
    let rows: Vec<Result<[String; 2], String>> = [
        64 * 1024u32,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1 << 20,
        2 << 20,
    ]
    .into_par_iter()
    .map(|cap| {
        let params = oocfs::FsParams {
            max_request: cap,
            queue_depth: 12,
            ..base
        };
        let block = FsModel::new(params)
            .map_err(|e| format!("coalescing cap {cap}: {e}"))?
            .transform(&posix);
        Ok([
            format!("{} KiB", cap >> 10),
            format!("{:.0}", tlc_run(&cnl_dev, &block)),
        ])
    })
    .collect();
    for row in rows {
        t.row(row?);
    }
    print!("{}", t.render());
    println!("-> \"simply turning a few kernel knobs\" is worth ~1 GB/s (§4.3).\n");

    println!(
        "{}",
        banner(
            "Ablation 3",
            "FTL page-allocation (striping) order, UFS requests, TLC",
        )
    );
    let block = FsKind::Ufs.transform(&posix);
    let mut t = Table::new(["order", "bandwidth MB/s", "PAL4 %"]);
    let orders = [
        (
            "channel-plane-die-pkg (default)",
            [Dim::Channel, Dim::Plane, Dim::Die, Dim::Package],
        ),
        (
            "channel-die-plane-pkg",
            [Dim::Channel, Dim::Die, Dim::Plane, Dim::Package],
        ),
        (
            "plane-channel-die-pkg",
            [Dim::Plane, Dim::Channel, Dim::Die, Dim::Package],
        ),
        (
            "pkg-die-plane-channel",
            [Dim::Package, Dim::Die, Dim::Plane, Dim::Channel],
        ),
    ];
    let rows: Vec<[String; 3]> = orders
        .into_par_iter()
        .map(|(name, order)| {
            let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
            let mut cfg = SsdConfig::new(media, SystemConfig::cnl_ufs().host_chain()).with_ufs();
            cfg.stripe_order = order;
            let rep = SsdDevice::new(cfg).run(&block);
            [
                name.to_string(),
                format!("{:.0}", rep.bandwidth_mb_s),
                format!("{:.0}", rep.pal.percent()[3]),
            ]
        })
        .collect();
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!("-> large UFS requests saturate every order; small-request configs care.\n");

    println!(
        "{}",
        banner(
            "Ablation 4",
            "PAQ out-of-order die service (ext2-shaped requests, TLC)",
        )
    );
    let block = FsKind::Ext2.transform(&posix);
    let mut t = Table::new(["queueing", "bandwidth MB/s"]);
    for (name, paq) in [("PAQ (out-of-order)", true), ("serialized", false)] {
        let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
        let mut cfg = SsdConfig::new(media, SystemConfig::cnl_ufs().host_chain());
        cfg.paq = paq;
        t.row([
            name.to_string(),
            format!("{:.0}", SsdDevice::new(cfg).run(&block).bandwidth_mb_s),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!(
        "{}",
        banner("Ablation 5", "host queue depth (512 KiB requests, TLC)")
    );
    let mut t = Table::new(["queue depth", "bandwidth MB/s"]);
    for qd in [1u32, 2, 4, 8, 16, 32] {
        let mut reqs = Vec::new();
        let mut off = 0u64;
        while off < 64 * MIB {
            reqs.push(nvmtypes::HostRequest::read(off, 512 * 1024));
            off += 512 * 1024;
        }
        let block = BlockTrace::from_requests(reqs, qd);
        let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
        let dev = SsdDevice::new(SsdConfig::new(media, SystemConfig::cnl_ufs().host_chain()));
        t.row([
            qd.to_string(),
            format!("{:.0}", dev.run(&block).bandwidth_mb_s),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!(
        "{}",
        banner(
            "Ablation 6",
            "cache-register reads (ext2-shaped requests, TLC)",
        )
    );
    let block7 = FsKind::Ext2.transform(&posix);
    let mut t = Table::new(["die registers", "bandwidth MB/s"]);
    for (name, cached) in [("single register", false), ("cache register", true)] {
        let mut media = MediaConfig::paper(NvmKind::Tlc, sdr400());
        media.cache_registers = cached;
        let cfg = SsdConfig::new(media, SystemConfig::cnl_ufs().host_chain());
        t.row([
            name.to_string(),
            format!("{:.0}", SsdDevice::new(cfg).run(&block7).bandwidth_mb_s),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!(
        "{}",
        banner(
            "Ablation 8",
            "worn NAND: amortised read retries (CNL-NATIVE-16, cell-bound TLC)",
        )
    );
    let block8 = FsKind::Ufs.transform(&posix);
    let mut t = Table::new(["condition", "bandwidth MB/s"]);
    let rows: Vec<[String; 2]> = [
        ("fresh (no retries)", 0u64),
        ("mid-life (1/64)", 64),
        ("worn (1/16)", 16),
        ("end-of-life (1/4)", 4),
    ]
    .into_par_iter()
    .map(|(name, every)| {
        let mut media = MediaConfig::paper(NvmKind::Tlc, interconnect::ddr800());
        if every > 0 {
            media.timing = media.timing.with_read_retry(every);
        }
        let cfg = SsdConfig::new(media, SystemConfig::cnl_native16().host_chain()).with_ufs();
        [
            name.to_string(),
            format!("{:.0}", SsdDevice::new(cfg).run(&block8).bandwidth_mb_s),
        ]
    })
    .collect();
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!();

    println!(
        "{}",
        banner("Ablation 7", "DOoC prefetch workers vs pool hit ratio")
    );
    let mut t = Table::new(["workers", "hit ratio %"]);
    for workers in [0usize, 1, 2, 4, 8] {
        let pool = Arc::new(DataPool::new(64 * MIB));
        if workers > 0 {
            let pf = Prefetcher::new(Arc::clone(&pool), workers);
            for i in 0..64 {
                pf.prefetch(&format!("panel/{i}"), move || vec![0u8; 64 * 1024]);
            }
            pf.shutdown()
                .map_err(|e| format!("ablation 7: prefetch shutdown failed: {e}"))?;
        }
        // The compute phase touches every panel.
        for i in 0..64 {
            pool.get_or_load(&format!("panel/{i}"), || vec![0u8; 64 * 1024]);
        }
        t.row([
            workers.to_string(),
            format!("{:.0}", pool.stats.hit_ratio() * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("-> prefetching converts every panel read into a pool hit.");
    Ok(())
}
