//! Regenerates Table 1: the NVM latency matrix.
use nvmtypes::{MediaTiming, NvmKind, PageClass};
use oocnvm_bench::banner;
use oocnvm_core::format::Table;

fn us(ns: u64) -> String {
    if ns % 1000 == 0 {
        format!("{}", ns / 1000)
    } else {
        format!("{:.3}", ns as f64 / 1000.0)
    }
}

fn main() {
    println!(
        "{}",
        banner(
            "Table 1",
            "latency to complete page-size operations per NVM type",
        )
    );
    let mut t = Table::new(["", "SLC", "MLC", "TLC", "PCM"]);
    let timings: Vec<MediaTiming> = NvmKind::ALL
        .iter()
        .map(|&k| MediaTiming::table1(k))
        .collect();
    t.row(
        std::iter::once("Page Size".to_string())
            .chain(timings.iter().map(|m| {
                if m.page_size >= 1024 {
                    format!("{}kB", m.page_size / 1024)
                } else {
                    format!("{}B", m.page_size)
                }
            }))
            .collect::<Vec<_>>(),
    );
    t.row(
        std::iter::once("Read (us)".to_string())
            .chain(timings.iter().map(|m| {
                if m.t_read_span > 0 {
                    format!("{}-{}", us(m.t_read), us(m.t_read + m.t_read_span))
                } else {
                    us(m.t_read)
                }
            }))
            .collect::<Vec<_>>(),
    );
    t.row(
        std::iter::once("Write (us)".to_string())
            .chain(timings.iter().map(|m| {
                let lo = m.write_latency(PageClass::Lsb);
                let hi = m.write_latency(PageClass::Msb);
                if lo == hi {
                    us(lo)
                } else {
                    format!("{}-{}", us(lo), us(hi))
                }
            }))
            .collect::<Vec<_>>(),
    );
    t.row(
        std::iter::once("Erase (us)".to_string())
            .chain(timings.iter().map(|m| us(m.t_erase)))
            .collect::<Vec<_>>(),
    );
    print!("{}", t.render());
}
