//! Regenerates Figure 1: bandwidth trends of networks vs NVM over time.
use oocnvm_bench::banner;
use oocnvm_core::format::Table;
use oocnvm_core::trends::{crossover_year, figure1_points, log2_fit, TrendSeries};

fn main() {
    println!(
        "{}",
        banner(
            "Figure 1",
            "trend of bandwidth over time: high-performance networks vs NVM storage",
        )
    );
    let pts = figure1_points();
    let mut t = Table::new(["year", "name", "series", "GB/s", "log2"]);
    let mut sorted = pts.clone();
    sorted.sort_by_key(|p| (p.year, p.name));
    for p in &sorted {
        t.row([
            p.year.to_string(),
            p.name.to_string(),
            format!("{:?}", p.series),
            format!("{:.4}", p.gb_s),
            format!("{:+.2}", p.gb_s.log2()),
        ]);
    }
    print!("{}", t.render());

    println!("\nexponential fits (log2 GB/s per year):");
    for s in [
        TrendSeries::FlashSsd,
        TrendSeries::OtherNvm,
        TrendSeries::InfiniBand,
        TrendSeries::FibreChannel,
    ] {
        let (a, b) = log2_fit(&pts, s);
        println!(
            "  {:?}: doubling every {:.1} years (2^({:.2} + {:.3}(year-1998)))",
            s,
            1.0 / b,
            a,
            b
        );
    }
    match crossover_year(&pts) {
        Some(y) => println!(
            "\nbest-available NVM overtakes best-available network in {y} —\n\
             \"even state-of-the-art network solutions are falling behind NVM bandwidth\""
        ),
        None => println!("\nno crossover within the dataset"),
    }
}
