//! One config × media sweep, with positional lookups and the shared
//! media-table renderer the figure bins used to copy-paste.
//!
//! [`Sweep::run`] fans the full cross product out on the thread pool
//! (see `docs/PARALLELISM.md`); reports come back in configs-major
//! order regardless of thread count, so every table and JSON export
//! derived from a `Sweep` is byte-identical at any `RAYON_NUM_THREADS`.

use nvmtypes::NvmKind;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{run_batch, ExperimentReport, ExperimentSpec};
use oocnvm_core::format::Table;
use ooctrace::PosixTrace;

/// The result of a config × media cross-product sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    configs: Vec<SystemConfig>,
    kinds: Vec<NvmKind>,
    reports: Vec<ExperimentReport>,
}

impl Sweep {
    /// Runs every `(config, kind)` pair in parallel and captures the
    /// axes alongside the reports for positional lookup.
    pub fn run(configs: &[SystemConfig], kinds: &[NvmKind], posix: &PosixTrace) -> Sweep {
        let specs = configs
            .iter()
            .flat_map(|c| kinds.iter().map(|&k| ExperimentSpec::new(c, k)))
            .collect();
        Sweep {
            configs: configs.to_vec(),
            kinds: kinds.to_vec(),
            reports: run_batch(specs, posix),
        }
    }

    /// The configuration axis, in input order.
    pub fn configs(&self) -> &[SystemConfig] {
        &self.configs
    }

    /// The media axis, in input order.
    pub fn kinds(&self) -> &[NvmKind] {
        &self.kinds
    }

    /// Every report, configs-major: `reports()[ci * kinds().len() + ki]`.
    pub fn reports(&self) -> &[ExperimentReport] {
        &self.reports
    }

    /// The report for `(label, kind)`, if both are on the sweep's axes.
    pub fn get(&self, label: &str, kind: NvmKind) -> Option<&ExperimentReport> {
        let ci = self.configs.iter().position(|c| c.label == label)?;
        let ki = self.kinds.iter().position(|&k| k == kind)?;
        self.reports.get(ci * self.kinds.len() + ki)
    }

    /// Like [`Sweep::get`], but failures become a printable error naming
    /// the missing axis value — the figure bins route this to stderr
    /// instead of panicking on a mistyped label.
    pub fn require(&self, label: &str, kind: NvmKind) -> Result<&ExperimentReport, String> {
        self.get(label, kind).ok_or_else(|| {
            format!(
                "no report for ({label:?}, {}): the sweep covers configs {:?} and media {:?}",
                kind.label(),
                self.configs.iter().map(|c| c.label).collect::<Vec<_>>(),
                self.kinds.iter().map(|k| k.label()).collect::<Vec<_>>(),
            )
        })
    }

    /// Bandwidth shortcut for the most common lookup.
    pub fn bandwidth(&self, label: &str, kind: NvmKind) -> Option<f64> {
        self.get(label, kind).map(|r| r.bandwidth_mb_s)
    }

    /// Renders the standard figure table: one row per configuration, one
    /// column per medium (header `"<KIND><unit>"`, e.g. `"TLC"` or
    /// `"TLC %"`), each cell produced by `metric` from the pair's report.
    pub fn media_table(&self, unit: &str, metric: impl Fn(&ExperimentReport) -> String) -> Table {
        let mut header = vec!["config".to_string()];
        header.extend(self.kinds.iter().map(|k| format!("{}{unit}", k.label())));
        let mut t = Table::new(header);
        for (ci, c) in self.configs.iter().enumerate() {
            let mut row = vec![c.label.to_string()];
            row.extend(
                (0..self.kinds.len()).map(|ki| metric(&self.reports[ci * self.kinds.len() + ki])),
            );
            t.row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::MIB;
    use oocnvm_core::workload::synthetic_ooc_trace;

    fn small_sweep() -> Sweep {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let configs = [SystemConfig::cnl_ufs(), SystemConfig::cnl_native16()];
        Sweep::run(&configs, &[NvmKind::Slc, NvmKind::Pcm], &trace)
    }

    #[test]
    fn lookups_hit_the_right_pair() {
        let s = small_sweep();
        assert_eq!(s.reports().len(), 4);
        let r = s.get("CNL-NATIVE-16", NvmKind::Slc).unwrap();
        assert_eq!(r.label, "CNL-NATIVE-16");
        assert_eq!(r.kind, NvmKind::Slc);
        assert!(s.get("CNL-UFS", NvmKind::Tlc).is_none(), "kind off-axis");
        assert!(s.get("nope", NvmKind::Slc).is_none(), "label off-axis");
        assert_eq!(
            s.bandwidth("CNL-UFS", NvmKind::Pcm).unwrap(),
            s.get("CNL-UFS", NvmKind::Pcm).unwrap().bandwidth_mb_s
        );
    }

    #[test]
    fn media_table_has_one_row_per_config_and_kind_headers() {
        let s = small_sweep();
        let rendered = s
            .media_table(" MB/s", |r| format!("{:.0}", r.bandwidth_mb_s))
            .render();
        assert!(rendered.contains("SLC MB/s"));
        assert!(rendered.contains("PCM MB/s"));
        assert!(rendered.contains("CNL-UFS"));
        assert!(rendered.contains("CNL-NATIVE-16"));
    }
}
