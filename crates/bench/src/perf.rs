//! The `bench` study: one pinned headline scenario, profiled in both
//! time domains, emitted as a versioned JSON report and diffed against
//! the committed baseline (`results/BENCH_core.json`).
//!
//! The report splits by contract (see `simprof::regress` and
//! `docs/PROFILING.md`):
//!
//! * `"pinned"` — simulated results: integers and booleans only,
//!   byte-exact against the baseline at any thread count. Includes the
//!   observer-effect check (profile-on vs profile-off reports compare
//!   equal), HDR latency percentiles, the per-layer simulated self-time
//!   rollup, the journal's write-amplification decomposition and the
//!   solver's eigenvalue digest.
//! * `"host"` — wall-clock milliseconds per phase from a
//!   [`simprof::Profiler`] driven by [`WallClock`] (this crate is the
//!   one place real time may enter; the profiler itself never reads a
//!   clock). Only `host.wall_ms.total` is regression-checked, with a
//!   tolerance band.

use crate::sweep::Sweep;
use nvmtypes::convert::{approx_f64, u64_from_usize};
use nvmtypes::{NvmKind, MIB};
use ooc::lobpcg::{Lobpcg, LobpcgOptions, TracedOperator};
use ooc::{HamiltonianSpec, OocMatrix};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::TraceCapture;
use simobs::json::Json;
use simobs::HdrHistogram;
use simprof::{HostClock, Profiler, SimSpanProfile};

/// Schema tag of the bench JSON document.
pub const SCHEMA: &str = "oocnvm.bench/1";

/// Default host-time regression tolerance, percent over baseline.
/// Generous on purpose: CI machines vary wildly (single-core runners
/// show 2–3x run-to-run spread under load), and the committed baseline
/// records a good warm run — the band only catches order-of-magnitude
/// regressions. Override with `--tolerance` or `OOCNVM_BENCH_TOL_PCT`.
pub const DEFAULT_TOL_PCT: u64 = 300;

/// A real host clock for the profiler: nanoseconds since construction.
/// Lives here — not in `simprof` — because the bench crate is the one
/// place the workspace permits wall-clock reads.
#[derive(Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// Starts the clock.
    pub fn new() -> WallClock {
        WallClock {
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl HostClock for WallClock {
    fn now_ns(&mut self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// What the bench runs. [`BenchScenario::pinned`] is the committed
/// headline scenario — change it and the baseline must be regenerated;
/// [`BenchScenario::tiny`] keeps debug-mode tests fast.
#[derive(Debug, Clone, Copy)]
pub struct BenchScenario {
    /// Scenario name, recorded in the report.
    pub label: &'static str,
    /// Workload size, MiB.
    pub trace_mib: u64,
    /// Workload / solver seed.
    pub seed: u64,
    /// Run the full Table-2 configuration set (else a 2-config subset).
    pub full_table: bool,
    /// LOBPCG problem dimension.
    pub solver_dim: usize,
}

impl BenchScenario {
    /// The committed headline scenario behind `results/BENCH_core.json`.
    pub fn pinned() -> BenchScenario {
        BenchScenario {
            label: "pinned",
            trace_mib: 8,
            seed: 42,
            full_table: true,
            solver_dim: 96,
        }
    }

    /// A reduced scenario for debug-mode tests.
    pub fn tiny() -> BenchScenario {
        BenchScenario {
            label: "tiny",
            trace_mib: 2,
            seed: 42,
            full_table: false,
            solver_dim: 32,
        }
    }
}

/// The rendered bench study.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Human-readable study (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`crate::json_report`].
    pub json: String,
}

fn line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

/// Runs the scenario under the given host clock and renders the report.
/// Everything under `"pinned"` is a pure function of the scenario; the
/// clock only feeds the `"host"` subtree.
pub fn render_report(sc: &BenchScenario, clock: Box<dyn HostClock>) -> BenchReport {
    let mut prof = Profiler::new(clock);
    let mut out = String::new();
    line(&mut out, &format!("bench scenario: {}", sc.label));

    // Phase 1 — the config × media sweep (the paper's Table-2 cross
    // product), merging every run's HDR latency histogram.
    prof.enter("sweep");
    let trace = synthetic_ooc_trace(sc.trace_mib * MIB, MIB, sc.seed);
    let configs = if sc.full_table {
        SystemConfig::table2()
    } else {
        vec![SystemConfig::cnl_ufs(), SystemConfig::cnl_native16()]
    };
    let kinds: &[NvmKind] = if sc.full_table {
        &NvmKind::ALL
    } else {
        &[NvmKind::Tlc, NvmKind::Pcm]
    };
    let sweep = Sweep::run(&configs, kinds, &trace);
    let mut requests: u64 = 0;
    let mut bytes: u64 = 0;
    let mut sim_ns: u64 = 0;
    let mut merged = HdrHistogram::new();
    for r in sweep.reports() {
        requests = requests.saturating_add(r.run.requests);
        bytes = bytes.saturating_add(r.run.total_bytes);
        sim_ns = sim_ns.saturating_add(r.run.makespan);
        merged.merge(&r.run.latency_hdr);
    }
    let pct = merged.percentiles();
    let sim_ops_per_sec = requests
        .saturating_mul(1_000_000_000)
        .checked_div(sim_ns)
        .unwrap_or(0);
    prof.add_sim(sim_ns);
    prof.exit();
    line(
        &mut out,
        &format!(
            "  sweep: {} runs, {requests} requests, {bytes} bytes, {sim_ns} sim-ns ({sim_ops_per_sec} ops/sim-s)",
            sweep.reports().len()
        ),
    );
    line(
        &mut out,
        &format!(
            "  latency p50={} p90={} p99={} p999={} max={} ns",
            pct.p50, pct.p90, pct.p99, pct.p999, pct.max
        ),
    );

    // Phase 2 — one traced CNL-UFS/TLC journaled run: per-layer
    // simulated self-time attribution, plus the observer-effect check
    // (the traced and untraced reports must render identically).
    prof.enter("traced_run");
    let cnl = SystemConfig::cnl_ufs();
    let mut obs = simobs::Tracer::ring(1 << 16);
    let traced = ExperimentSpec::new(&cnl, NvmKind::Tlc)
        .journaled_ufs(true)
        .tracer(&mut obs)
        .run(&trace);
    let untraced = ExperimentSpec::new(&cnl, NvmKind::Tlc)
        .journaled_ufs(true)
        .run(&trace);
    // Structural comparison, not Debug-string rendering: formatting two
    // multi-kilobyte reports allocated and walked O(report) text per run.
    let observer_zero = traced == untraced;
    let log = obs.finish();
    let span_prof = SimSpanProfile::build(&log);
    prof.add_sim(traced.run.makespan);
    prof.exit();
    line(
        &mut out,
        &format!(
            "  traced run: {} events, observer effect zero: {}",
            log.emitted,
            if observer_zero { "OK" } else { "FAIL" }
        ),
    );
    out.push_str(&indent(&span_prof.render(), "  "));

    // Phase 3 — the journal's write-amplification decomposition on the
    // same trace (the ufs study's replay overhead, itemised). The traced
    // run already performed this exact replay and recorded the
    // filesystem's counters ([`JournaledUfs::transform_observed`]), so
    // this phase reads them back rather than replaying a third time —
    // same deterministic values, one less full-trace replay per bench.
    prof.enter("journal");
    let wa = ufs::WriteAmp {
        user_bytes: log.metrics.counter("ufs.user_bytes"),
        cow_bytes: log.metrics.counter("ufs.cow_bytes"),
        journal_bytes: log.metrics.counter("ufs.journal_bytes"),
        apply_bytes: log.metrics.counter("ufs.apply_bytes"),
        commits: log.metrics.counter("ufs.commits"),
        recovery_replays: 0,
    };
    prof.exit();
    line(
        &mut out,
        &format!(
            "  journal: user={} cow={} journal={} apply={} bytes in {} commits ({} permille device/user)",
            wa.user_bytes,
            wa.cow_bytes,
            wa.journal_bytes,
            wa.apply_bytes,
            wa.commits,
            wa.device_per_user_permille()
        ),
    );

    // Phase 4 — the LOBPCG driver at reduced dimension; eigenvalues are
    // pinned through a bit-level digest.
    prof.enter("solver");
    let h = HamiltonianSpec::tiny(sc.solver_dim).generate();
    let mem = OocMatrix::build(&h, 16, 0, None);
    let cap = TraceCapture::new();
    let res = Lobpcg::new(LobpcgOptions {
        block_size: 3,
        max_iters: 60,
        seed: sc.seed,
        ..LobpcgOptions::default()
    })
    .solve(&TracedOperator::new(&mem, &cap));
    let eigen_digest = res
        .eigenvalues
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits());
    prof.add_sim(u64_from_usize(res.iterations).saturating_mul(1_000));
    prof.exit();
    line(
        &mut out,
        &format!(
            "  solver: dim {} converged in {} iters, eigen digest {eigen_digest:#018x}",
            sc.solver_dim, res.iterations
        ),
    );

    let report = prof.finish();
    let wall_ms = |ns: u64| ns / 1_000_000;
    let phase_host = |name: &str| {
        report
            .root
            .children
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.host_ns)
            .unwrap_or(0)
    };
    line(
        &mut out,
        &format!(
            "  host wall: total {} ms (sweep {} / traced_run {} / journal {} / solver {} ms)",
            wall_ms(report.root.host_ns),
            wall_ms(phase_host("sweep")),
            wall_ms(phase_host("traced_run")),
            wall_ms(phase_host("journal")),
            wall_ms(phase_host("solver")),
        ),
    );
    let host_ops_per_sec = if report.root.host_ns > 0 {
        approx_f64(requests) / (approx_f64(report.root.host_ns) / 1e9)
    } else {
        0.0
    };
    line(
        &mut out,
        &format!("  host throughput: {host_ops_per_sec:.0} simulated requests/s"),
    );

    let layers = span_prof
        .layers
        .iter()
        .map(|l| {
            Json::obj()
                .field("layer", Json::str(l.layer.label()))
                .field("calls", Json::u64(l.calls))
                .field("self_ns", Json::u64(l.self_ns))
        })
        .collect();
    let pinned = Json::obj()
        .field(
            "sweep",
            Json::obj()
                .field("runs", Json::u64(u64_from_usize(sweep.reports().len())))
                .field("requests", Json::u64(requests))
                .field("bytes", Json::u64(bytes))
                .field("sim_ns", Json::u64(sim_ns))
                .field("sim_ops_per_sec", Json::u64(sim_ops_per_sec))
                .field(
                    "latency_ns",
                    Json::obj()
                        .field("p50", Json::u64(pct.p50))
                        .field("p90", Json::u64(pct.p90))
                        .field("p99", Json::u64(pct.p99))
                        .field("p999", Json::u64(pct.p999))
                        .field("max", Json::u64(pct.max)),
                ),
        )
        .field(
            "traced_run",
            Json::obj()
                .field("observer_effect_zero", Json::Bool(observer_zero))
                .field("events", Json::u64(log.emitted))
                .field("union_ns", Json::u64(span_prof.union_ns))
                .field("layers", Json::Arr(layers)),
        )
        .field(
            "journal",
            Json::obj()
                .field("user_bytes", Json::u64(wa.user_bytes))
                .field("cow_bytes", Json::u64(wa.cow_bytes))
                .field("journal_bytes", Json::u64(wa.journal_bytes))
                .field("apply_bytes", Json::u64(wa.apply_bytes))
                .field("commits", Json::u64(wa.commits))
                .field(
                    "device_per_user_permille",
                    Json::u64(wa.device_per_user_permille()),
                ),
        )
        .field(
            "solver",
            Json::obj()
                .field("dim", Json::u64(u64_from_usize(sc.solver_dim)))
                .field("iterations", Json::u64(u64_from_usize(res.iterations)))
                .field(
                    "eigenvalues",
                    Json::u64(u64_from_usize(res.eigenvalues.len())),
                )
                .field("eigen_digest", Json::u64(eigen_digest)),
        );
    let host = Json::obj()
        .field(
            "wall_ms",
            Json::obj()
                .field("total", Json::u64(wall_ms(report.root.host_ns)))
                .field("sweep", Json::u64(wall_ms(phase_host("sweep"))))
                .field("traced_run", Json::u64(wall_ms(phase_host("traced_run"))))
                .field("journal", Json::u64(wall_ms(phase_host("journal"))))
                .field("solver", Json::u64(wall_ms(phase_host("solver")))),
        )
        .field("requests_per_sec", Json::f64_3(host_ops_per_sec))
        .field("profile", report.to_json());
    let payload = Json::obj()
        .field(
            "scenario",
            Json::obj()
                .field("label", Json::str(sc.label))
                .field("trace_mib", Json::u64(sc.trace_mib))
                .field("seed", Json::u64(sc.seed))
                .field("full_table", Json::Bool(sc.full_table))
                .field("solver_dim", Json::u64(u64_from_usize(sc.solver_dim))),
        )
        .field("pinned", pinned)
        .field("host", host);
    BenchReport {
        text: out,
        json: crate::json_report(SCHEMA, payload),
    }
}

fn indent(s: &str, by: &str) -> String {
    s.lines()
        .map(|l| format!("{by}{l}\n"))
        .collect::<Vec<_>>()
        .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof::TickClock;

    fn strip_host(json: &str) -> simobs::json::Json {
        let doc = simobs::json::parse(json).expect("well-formed");
        doc.get("pinned").cloned().expect("pinned subtree")
    }

    #[test]
    fn tiny_bench_is_pinned_deterministic_and_observer_clean() {
        let a = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(1)));
        assert!(!a.text.contains("FAIL"), "{}", a.text);
        let b = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(500)));
        // Different clocks, identical pinned subtree.
        assert_eq!(strip_host(&a.json), strip_host(&b.json));
        // Identical clock, identical full report.
        let c = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(1)));
        assert_eq!(a.json, c.json);
        assert_eq!(a.text, c.text);
    }

    #[test]
    fn tiny_bench_diffs_cleanly_against_itself() {
        let a = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(1)));
        let b = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(900)));
        let violations = simprof::compare(&a.json, &b.json, DEFAULT_TOL_PCT);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn report_carries_the_expected_sections() {
        let r = render_report(&BenchScenario::tiny(), Box::new(TickClock::new(1)));
        let doc = simobs::json::parse(&r.json).expect("well-formed");
        assert_eq!(doc.get("format"), Some(&simobs::json::Json::str(SCHEMA)));
        let pinned = doc.get("pinned").expect("pinned");
        for key in ["sweep", "traced_run", "journal", "solver"] {
            assert!(pinned.get(key).is_some(), "missing pinned.{key}");
        }
        let wa = pinned.get("journal").expect("journal");
        assert!(wa.get("journal_bytes").is_some());
        let host = doc.get("host").expect("host");
        assert!(host.get("wall_ms").and_then(|w| w.get("total")).is_some());
    }
}
