//! The §7 headline computation, shared by the `headline` bin and the
//! determinism tests (which pin that text and JSON are byte-identical
//! at every thread count).

use crate::sweep::Sweep;
use nvmtypes::NvmKind;
use oocnvm_core::config::SystemConfig;
use ooctrace::PosixTrace;
use simobs::json::Json;

/// Schema tag of the headline JSON document. Version 2 adds a per-row
/// `latency_ns` object (p50/p99/p999 over every configuration's request
/// latencies on that medium, merged from the per-run HDR histograms);
/// version-1 consumers keep working — no field was renamed or removed
/// (see the back-compat test below and `docs/PROFILING.md`).
pub const SCHEMA: &str = "oocnvm.headline/2";

/// The traditional (non-UFS) compute-local file systems whose mean forms
/// the baseline-CNL reference in the §7 ratios.
pub const TRADITIONAL_CNL: [&str; 8] = [
    "CNL-JFS",
    "CNL-BTRFS",
    "CNL-XFS",
    "CNL-REISERFS",
    "CNL-EXT2",
    "CNL-EXT3",
    "CNL-EXT4",
    "CNL-EXT4-L",
];

/// The rendered §7 headline block.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Human-readable summary (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`crate::json_report`].
    pub json: String,
}

/// Runs the full Table-2 sweep on the thread pool and derives the §7
/// headline ratios. Returns `None` only if a required label is missing
/// from the Table-2 configuration set — a programming error in the
/// config tables, not a runtime condition.
pub fn report(posix: &PosixTrace) -> Option<Headline> {
    let configs = SystemConfig::table2();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, posix);

    let mut cnl_vs_ion = Vec::new();
    let mut ufs_vs_cnl = Vec::new();
    let mut hw_vs_ufs = Vec::new();
    let mut total = Vec::new();
    let mut rows = Vec::new();
    let mut text = String::new();
    for k in NvmKind::ALL {
        let ion = sweep.bandwidth("ION-GPFS", k)?;
        let mut cnl_sum = 0.0;
        for label in TRADITIONAL_CNL {
            cnl_sum += sweep.bandwidth(label, k)?;
        }
        let cnl_mean = cnl_sum / TRADITIONAL_CNL.len() as f64;
        let ufs = sweep.bandwidth("CNL-UFS", k)?;
        let n16 = sweep.bandwidth("CNL-NATIVE-16", k)?;
        cnl_vs_ion.push(cnl_mean / ion - 1.0);
        ufs_vs_cnl.push(ufs / cnl_mean - 1.0);
        hw_vs_ufs.push(n16 / ufs - 1.0);
        total.push(n16 / ion);
        // Request-latency distribution on this medium, merged across
        // every configuration's per-run HDR histogram (the merge is
        // associative, so this is thread-count independent).
        let mut merged = simobs::HdrHistogram::new();
        for r in sweep.reports().iter().filter(|r| r.kind == k) {
            merged.merge(&r.run.latency_hdr);
        }
        let lat = merged.percentiles();
        rows.push(
            Json::obj()
                .field("kind", Json::str(k.label()))
                .field("ion_mb_s", Json::f64_3(ion))
                .field("cnl_mean_mb_s", Json::f64_3(cnl_mean))
                .field("ufs_mb_s", Json::f64_3(ufs))
                .field("native16_mb_s", Json::f64_3(n16))
                .field("total_x", Json::f64_3(n16 / ion))
                .field(
                    "latency_ns",
                    Json::obj()
                        .field("p50", Json::u64(lat.p50))
                        .field("p99", Json::u64(lat.p99))
                        .field("p999", Json::u64(lat.p999)),
                ),
        );
        text.push_str(&format!(
            "  {}: ION {:.0}  CNL-mean {:.0}  UFS {:.0}  NATIVE-16 {:.0}  (x{:.1} end-to-end)\n",
            k.label(),
            ion,
            cnl_mean,
            ufs,
            n16,
            n16 / ion
        ));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    text.push('\n');
    text.push_str(&format!(
        "  compute-local vs client-remote SSDs: +{:.0}%   (paper: 'on average 108%')\n",
        avg(&cnl_vs_ion) * 100.0
    ));
    text.push_str(&format!(
        "  UFS over the baseline CNL approaches: +{:.0}%   (paper: 'an additional 52%')\n",
        avg(&ufs_vs_cnl) * 100.0
    ));
    text.push_str(&format!(
        "  hardware-optimized SSDs over UFS: +{:.0}%   (paper: 'an additional 250%')\n",
        avg(&hw_vs_ufs) * 100.0
    ));
    text.push_str(&format!(
        "  overall NATIVE-16 vs ION-local: x{:.1}   (paper: 'a relative improvement of 10.3 times')\n",
        avg(&total)
    ));

    let payload = Json::obj().field("rows", Json::Arr(rows)).field(
        "averages",
        Json::obj()
            .field("cnl_vs_ion_pct", Json::f64_3(avg(&cnl_vs_ion) * 100.0))
            .field("ufs_vs_cnl_pct", Json::f64_3(avg(&ufs_vs_cnl) * 100.0))
            .field("hw_vs_ufs_pct", Json::f64_3(avg(&hw_vs_ufs) * 100.0))
            .field("total_x", Json::f64_3(avg(&total))),
    );
    Some(Headline {
        text,
        json: crate::json_report(SCHEMA, payload),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::MIB;
    use oocnvm_core::workload::synthetic_ooc_trace;
    use simobs::json::parse;

    #[test]
    fn headline_renders_and_tags_its_schema() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 42);
        let h = report(&trace).expect("table2 labels are static");
        assert!(h.text.contains("end-to-end"));
        let doc = parse(&h.json).expect("well-formed JSON");
        assert_eq!(doc.get("format"), Some(&Json::str(SCHEMA)));
        assert!(doc.get("rows").is_some());
        assert!(doc.get("averages").is_some());
        // The v2 addition: every row carries latency percentiles.
        if let Some(Json::Arr(rows)) = doc.get("rows") {
            for row in rows {
                let lat = row.get("latency_ns").expect("v2 rows have latency_ns");
                for p in ["p50", "p99", "p999"] {
                    assert!(lat.get(p).is_some(), "missing {p}");
                }
            }
        } else {
            unreachable!("rows is an array");
        }
    }

    #[test]
    fn version_1_documents_still_parse_for_consumers() {
        // A row exactly as oocnvm.headline/1 emitted it: no latency_ns.
        // Old documents must keep parsing, and the version split must let
        // consumers branch on it — the whole back-compat contract.
        let v1 = r#"{"format":"oocnvm.headline/1","rows":[{"kind":"TLC","ion_mb_s":100.000,"cnl_mean_mb_s":200.000,"ufs_mb_s":300.000,"native16_mb_s":900.000,"total_x":9.000}],"averages":{"cnl_vs_ion_pct":100.000,"ufs_vs_cnl_pct":50.000,"hw_vs_ufs_pct":200.000,"total_x":9.000}}"#;
        let doc = parse(v1).expect("v1 documents stay well-formed");
        let (family, version) = simobs::json::schema_version(&doc).expect("versioned format tag");
        assert_eq!(family, "oocnvm.headline");
        assert_eq!(version, 1);
        assert!(version < 2, "consumers can detect the older document");
        // Shared fields read identically from both versions.
        if let Some(Json::Arr(rows)) = doc.get("rows") {
            assert_eq!(rows[0].get("kind"), Some(&Json::str("TLC")));
            assert!(rows[0].get("latency_ns").is_none(), "v1 has no percentiles");
        } else {
            unreachable!("rows is an array");
        }
        assert_eq!(
            simobs::json::schema_version(&parse(&report_doc()).expect("v2")),
            Some(("oocnvm.headline", 2))
        );
    }

    fn report_doc() -> String {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 42);
        report(&trace).expect("table2 labels are static").json
    }
}
