//! The §7 headline computation, shared by the `headline` bin and the
//! determinism tests (which pin that text and JSON are byte-identical
//! at every thread count).

use crate::sweep::Sweep;
use nvmtypes::NvmKind;
use oocnvm_core::config::SystemConfig;
use ooctrace::PosixTrace;
use simobs::json::Json;

/// Schema tag of the headline JSON document.
pub const SCHEMA: &str = "oocnvm.headline/1";

/// The traditional (non-UFS) compute-local file systems whose mean forms
/// the baseline-CNL reference in the §7 ratios.
pub const TRADITIONAL_CNL: [&str; 8] = [
    "CNL-JFS",
    "CNL-BTRFS",
    "CNL-XFS",
    "CNL-REISERFS",
    "CNL-EXT2",
    "CNL-EXT3",
    "CNL-EXT4",
    "CNL-EXT4-L",
];

/// The rendered §7 headline block.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Human-readable summary (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`crate::json_report`].
    pub json: String,
}

/// Runs the full Table-2 sweep on the thread pool and derives the §7
/// headline ratios. Returns `None` only if a required label is missing
/// from the Table-2 configuration set — a programming error in the
/// config tables, not a runtime condition.
pub fn report(posix: &PosixTrace) -> Option<Headline> {
    let configs = SystemConfig::table2();
    let sweep = Sweep::run(&configs, &NvmKind::ALL, posix);

    let mut cnl_vs_ion = Vec::new();
    let mut ufs_vs_cnl = Vec::new();
    let mut hw_vs_ufs = Vec::new();
    let mut total = Vec::new();
    let mut rows = Vec::new();
    let mut text = String::new();
    for k in NvmKind::ALL {
        let ion = sweep.bandwidth("ION-GPFS", k)?;
        let mut cnl_sum = 0.0;
        for label in TRADITIONAL_CNL {
            cnl_sum += sweep.bandwidth(label, k)?;
        }
        let cnl_mean = cnl_sum / TRADITIONAL_CNL.len() as f64;
        let ufs = sweep.bandwidth("CNL-UFS", k)?;
        let n16 = sweep.bandwidth("CNL-NATIVE-16", k)?;
        cnl_vs_ion.push(cnl_mean / ion - 1.0);
        ufs_vs_cnl.push(ufs / cnl_mean - 1.0);
        hw_vs_ufs.push(n16 / ufs - 1.0);
        total.push(n16 / ion);
        rows.push(
            Json::obj()
                .field("kind", Json::str(k.label()))
                .field("ion_mb_s", Json::f64_3(ion))
                .field("cnl_mean_mb_s", Json::f64_3(cnl_mean))
                .field("ufs_mb_s", Json::f64_3(ufs))
                .field("native16_mb_s", Json::f64_3(n16))
                .field("total_x", Json::f64_3(n16 / ion)),
        );
        text.push_str(&format!(
            "  {}: ION {:.0}  CNL-mean {:.0}  UFS {:.0}  NATIVE-16 {:.0}  (x{:.1} end-to-end)\n",
            k.label(),
            ion,
            cnl_mean,
            ufs,
            n16,
            n16 / ion
        ));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    text.push('\n');
    text.push_str(&format!(
        "  compute-local vs client-remote SSDs: +{:.0}%   (paper: 'on average 108%')\n",
        avg(&cnl_vs_ion) * 100.0
    ));
    text.push_str(&format!(
        "  UFS over the baseline CNL approaches: +{:.0}%   (paper: 'an additional 52%')\n",
        avg(&ufs_vs_cnl) * 100.0
    ));
    text.push_str(&format!(
        "  hardware-optimized SSDs over UFS: +{:.0}%   (paper: 'an additional 250%')\n",
        avg(&hw_vs_ufs) * 100.0
    ));
    text.push_str(&format!(
        "  overall NATIVE-16 vs ION-local: x{:.1}   (paper: 'a relative improvement of 10.3 times')\n",
        avg(&total)
    ));

    let payload = Json::obj().field("rows", Json::Arr(rows)).field(
        "averages",
        Json::obj()
            .field("cnl_vs_ion_pct", Json::f64_3(avg(&cnl_vs_ion) * 100.0))
            .field("ufs_vs_cnl_pct", Json::f64_3(avg(&ufs_vs_cnl) * 100.0))
            .field("hw_vs_ufs_pct", Json::f64_3(avg(&hw_vs_ufs) * 100.0))
            .field("total_x", Json::f64_3(avg(&total))),
    );
    Some(Headline {
        text,
        json: crate::json_report(SCHEMA, payload),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::MIB;
    use oocnvm_core::workload::synthetic_ooc_trace;
    use simobs::json::parse;

    #[test]
    fn headline_renders_and_tags_its_schema() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 42);
        let h = report(&trace).expect("table2 labels are static");
        assert!(h.text.contains("end-to-end"));
        let doc = parse(&h.json).expect("well-formed JSON");
        assert_eq!(doc.get("format"), Some(&Json::str(SCHEMA)));
        assert!(doc.get("rows").is_some());
        assert!(doc.get("averages").is_some());
    }
}
