//! Criterion benches for the file-system request mutators: how fast each
//! model turns a POSIX trace into a device trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvmtypes::MIB;
use oocfs::FsKind;
use oocnvm_core::workload::synthetic_ooc_trace;

fn bench_transforms(c: &mut Criterion) {
    let trace = synthetic_ooc_trace(64 * MIB, 6 * MIB, 42);
    let mut g = c.benchmark_group("fs_transform");
    for kind in FsKind::ALL {
        g.throughput(Throughput::Bytes(trace.total_bytes()));
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| kind.transform(&trace));
            },
        );
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("synthetic_64mib", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            synthetic_ooc_trace(64 * MIB, 6 * MIB, seed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_transforms, bench_trace_generation);
criterion_main!(benches);
