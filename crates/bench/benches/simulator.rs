//! Criterion benches for the storage simulator: the media engine itself,
//! and one end-to-end cell per figure (7a, 8a) so regressions in the
//! figure-regeneration pipeline show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flashsim::{DieOp, MediaConfig, MediaSim};
use interconnect::sdr400;
use nvmtypes::{DieIndex, NvmKind, MIB};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::synthetic_ooc_trace;
use ssd::StripeMap;

fn bench_media_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("media_engine");
    for kind in NvmKind::ALL {
        let cfg = MediaConfig::paper(kind, sdr400());
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("read_die_op", kind.label()),
            &cfg,
            |b, cfg| {
                let mut sim = MediaSim::new(*cfg);
                let mut t = 0u64;
                let dies = cfg.geometry.total_dies();
                b.iter(|| {
                    let die = DieIndex((t % dies as u64) as u32);
                    let out = sim.execute(t, &DieOp::read(die, 2, 8, 0));
                    t = t.wrapping_add(1_000);
                    out.end
                });
            },
        );
    }
    g.finish();
}

fn bench_stripe_decompose(c: &mut Criterion) {
    let map = StripeMap::default_order(nvmtypes::SsdGeometry::paper(NvmKind::Tlc));
    let mut g = c.benchmark_group("stripe_decompose");
    for pages in [16u64, 256, 4096] {
        g.throughput(Throughput::Elements(pages));
        g.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            let mut start = 0u64;
            b.iter(|| {
                start = start.wrapping_add(37);
                map.decompose(start, pages)
            });
        });
    }
    g.finish();
}

fn bench_figure7_cells(c: &mut Criterion) {
    // One representative cell per figure row: the full POSIX->FS->SSD
    // pipeline for a 24 MiB workload.
    let trace = synthetic_ooc_trace(24 * MIB, 6 * MIB, 42);
    let mut g = c.benchmark_group("fig7_cell");
    g.sample_size(10);
    for cfg in [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl(oocfs::FsKind::Ext2),
        SystemConfig::cnl(oocfs::FsKind::Btrfs),
        SystemConfig::cnl_ufs(),
    ] {
        g.throughput(Throughput::Bytes(trace.total_bytes()));
        g.bench_with_input(BenchmarkId::from_parameter(cfg.label), &cfg, |b, cfg| {
            b.iter(|| {
                ExperimentSpec::new(cfg, NvmKind::Tlc)
                    .run(&trace)
                    .bandwidth_mb_s
            });
        });
    }
    g.finish();
}

fn bench_figure8_cells(c: &mut Criterion) {
    let trace = synthetic_ooc_trace(24 * MIB, 6 * MIB, 42);
    let mut g = c.benchmark_group("fig8_cell");
    g.sample_size(10);
    for cfg in SystemConfig::figure8() {
        g.throughput(Throughput::Bytes(trace.total_bytes()));
        g.bench_with_input(BenchmarkId::from_parameter(cfg.label), &cfg, |b, cfg| {
            b.iter(|| {
                ExperimentSpec::new(cfg, NvmKind::Pcm)
                    .run(&trace)
                    .bandwidth_mb_s
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_media_engine,
    bench_stripe_decompose,
    bench_figure7_cells,
    bench_figure8_cells
);
criterion_main!(benches);
