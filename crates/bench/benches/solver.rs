//! Criterion benches for the out-of-core application substrate: dense
//! kernels, sparse x block products (in-memory and streamed through the
//! traced store), and whole LOBPCG solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ooc::dense::{jacobi_eigh, mgs_orthonormalize, DMatrix};
use ooc::lobpcg::{Lobpcg, LobpcgOptions};
use ooc::{HamiltonianSpec, OocMatrix};
use ooctrace::capture::NullSink;

fn filled(n: usize, m: usize) -> DMatrix {
    let mut x = DMatrix::zeros(n, m);
    for (i, v) in x.data.iter_mut().enumerate() {
        *v = ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0;
    }
    x
}

fn bench_dense_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense");
    let s = filled(4096, 24);
    g.bench_function("mgs_4096x24", |b| b.iter(|| mgs_orthonormalize(&s, 1e-10)));
    let a = {
        let b = filled(24, 24);
        let mut a = b.transpose_mul(&b);
        for i in 0..24 {
            a[(i, i)] += 24.0;
        }
        a
    };
    g.bench_function("jacobi_eigh_24", |b| b.iter(|| jacobi_eigh(&a)));
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmm");
    for n in [2_000usize, 10_000] {
        let h = HamiltonianSpec::medium(n).generate();
        let x = filled(n, 12);
        g.throughput(Throughput::Elements(h.nnz() as u64));
        g.bench_with_input(BenchmarkId::new("in_memory", n), &h, |b, h| {
            b.iter(|| h.spmm(&x));
        });
        let ooc = OocMatrix::build(&h, 256, 0, None);
        g.bench_with_input(BenchmarkId::new("streamed", n), &ooc, |b, ooc| {
            b.iter(|| ooc.spmm_traced(&x, &NullSink));
        });
    }
    g.finish();
}

fn bench_lobpcg(c: &mut Criterion) {
    let mut g = c.benchmark_group("lobpcg");
    g.sample_size(10);
    let h = HamiltonianSpec::medium(2_000).generate();
    g.bench_function("solve_n2000_m8", |b| {
        b.iter(|| {
            Lobpcg::new(LobpcgOptions {
                block_size: 8,
                max_iters: 6,
                tol: 1e-9,
                seed: 3,
                precondition: true,
            })
            .solve(&h)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dense_kernels, bench_spmm, bench_lobpcg);
criterion_main!(benches);
