//! Planted bug: a shared counter incremented with a non-atomic
//! read-modify-write from two tasks.
//!
//! Every interleaving is racy — each task's read is unordered with the
//! other task's write (spawn only flows knowledge parent → child, and
//! neither task joins the other) — so exhaustive exploration must report
//! a `data_race` on its very first execution, and any lost-update
//! schedule replays to the same race.

use std::sync::Arc;

use crate::{spawn, RaceCell};

/// Two tasks each do `counter = counter + 1` without synchronization.
pub fn model() {
    let counter = Arc::new(RaceCell::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            spawn(move || {
                let v = counter.get();
                counter.set(v + 1);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
}
