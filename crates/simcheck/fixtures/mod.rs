//! Planted-bug fixtures: known-buggy (and fixed) concurrency models the
//! selftests explore to pin the checker's detection behaviour.
//!
//! These live under `crates/simcheck/fixtures/` (outside `src/`) so
//! static scans treat them as test corpus, but they compile into the
//! crate so the models stay type-checked against the shadow API. Each
//! fixture documents the bug it plants and the violation kind the
//! checker must report; `tests/selftest.rs` pins the exact counts.

pub mod deadlock;
pub mod racy_counter;
pub mod unsync_publish;
