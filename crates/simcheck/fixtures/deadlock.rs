//! Planted bug: the classic AB-BA lock-order inversion.
//!
//! Task 1 locks `a` then `b`; task 2 locks `b` then `a`. The schedule
//! `[t1: lock a] [t2: lock b]` leaves both tasks blocked on the other's
//! held mutex and the root blocked joining them: no task is enabled, so
//! the checker reports a `deadlock` naming every blocked task. This is
//! exactly the cycle the simlint `lock_order` pass rejects statically.

use std::sync::Arc;

use crate::{spawn, Mutex};

/// Two tasks acquire two mutexes in opposite orders.
pub fn model() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    let t1 = spawn(move || {
        let mut ga = a1.lock();
        let gb = b1.lock();
        *ga += *gb;
    });
    let t2 = spawn(move || {
        let mut gb = b.lock();
        let ga = a.lock();
        *gb += *ga;
    });
    t1.join();
    t2.join();
}
