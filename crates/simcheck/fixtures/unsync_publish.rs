//! Planted bug: publication through a `Relaxed` flag.
//!
//! The producer writes the payload, then raises an atomic flag with
//! `Ordering::Relaxed`; the consumer polls the flag with `Relaxed` and
//! reads the payload when it sees `true`. Under the happens-before model
//! a relaxed store/load pair contributes *no* synchronizes-with edge, so
//! the consumer's payload read is unordered with the producer's write:
//! every interleaving where the consumer observes the flag is a
//! `data_race`, even though the explorer only runs SC interleavings.
//!
//! [`fixed`] is the same protocol with `Release`/`Acquire`, which the
//! checker must pass exhaustively — the pair of models is the dynamic
//! twin of the simlint `atomic_ordering` pass.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::{check, spawn, AtomicBool, RaceCell};

fn publish(store_ord: Ordering, load_ord: Ordering) {
    let flag = Arc::new(AtomicBool::new(false));
    let data = Arc::new(RaceCell::new(0u64));
    let (pflag, pdata) = (Arc::clone(&flag), Arc::clone(&data));
    let producer = spawn(move || {
        pdata.set(42);
        pflag.store(true, store_ord);
    });
    let consumer = spawn(move || {
        if flag.load(load_ord) {
            let v = data.get();
            check(v == 42, "consumer must observe the published payload");
        }
    });
    producer.join();
    consumer.join();
}

/// Publication over `Relaxed`: racy in every observing interleaving.
pub fn buggy() {
    publish(Ordering::Relaxed, Ordering::Relaxed);
}

/// Publication over `Release`/`Acquire`: race-free, exhaustively.
pub fn fixed() {
    publish(Ordering::Release, Ordering::Acquire);
}
