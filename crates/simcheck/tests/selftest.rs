//! Pins the checker's behaviour on the planted-bug fixtures and the
//! pool protocol matrix: exact violation kinds, exact execution/step
//! counts (the DFS + sleep-set exploration is fully deterministic), and
//! byte-identical replay of every recorded violation schedule.

use simcheck::{explore, fixtures, replay, Config, Report, ViolationKind};
use simobs::json::Json;

fn cfg() -> Config {
    Config::default()
}

/// Replays a violation's recorded schedule and checks the reproduction
/// is byte-identical: same kind, same message, same event trace.
fn assert_replays(model: fn(), report: &Report) {
    let Some(violation) = report.violation.as_ref() else {
        assert!(report.violation.is_some(), "expected a violation to replay");
        return;
    };
    let outcome = replay(model, &violation.schedule, &cfg());
    let Some(replayed) = outcome.violation.as_ref() else {
        assert!(
            outcome.violation.is_some(),
            "replaying the schedule must reproduce the violation"
        );
        return;
    };
    assert_eq!(replayed.kind, violation.kind, "replay reproduces the kind");
    assert_eq!(
        replayed.message, violation.message,
        "replay reproduces the message"
    );
    assert_eq!(
        replayed.trace, violation.trace,
        "replay reproduces the trace byte-identically"
    );
}

#[test]
fn racy_counter_races_on_the_first_execution() {
    let report = explore(fixtures::racy_counter::model, &cfg());
    let kind = report.violation.as_ref().map(|v| v.kind);
    assert_eq!(kind, Some(ViolationKind::DataRace));
    // Every interleaving is racy, so the very first one already fails.
    assert_eq!(report.executions, 1, "first execution exhibits the race");
    assert_eq!(report.steps_total, 9, "pinned step count");
    assert_replays(fixtures::racy_counter::model, &report);
}

#[test]
fn deadlock_is_found_with_a_blocked_task_inventory() {
    let report = explore(fixtures::deadlock::model, &cfg());
    let kind = report.violation.as_ref().map(|v| v.kind);
    assert_eq!(kind, Some(ViolationKind::Deadlock));
    assert_eq!(report.executions, 5, "pinned execution count");
    let message = report
        .violation
        .as_ref()
        .map(|v| v.message.clone())
        .unwrap_or_default();
    assert!(
        message.contains("blocked"),
        "deadlock message inventories blocked tasks: {message}"
    );
    assert_replays(fixtures::deadlock::model, &report);
}

#[test]
fn unsync_publish_races_and_sync_publish_does_not() {
    let buggy = explore(fixtures::unsync_publish::buggy, &cfg());
    let kind = buggy.violation.as_ref().map(|v| v.kind);
    assert_eq!(kind, Some(ViolationKind::DataRace));
    assert_eq!(buggy.executions, 1, "relaxed publish races immediately");
    assert_replays(fixtures::unsync_publish::buggy, &buggy);

    let fixed = explore(fixtures::unsync_publish::fixed, &cfg());
    assert!(
        fixed.violation.is_none(),
        "release/acquire publish is clean"
    );
    assert!(fixed.complete, "exploration exhausts the state space");
    assert_eq!(fixed.executions, 6, "pinned execution count");
}

#[test]
fn pool_protocol_matrix_is_clean_with_pinned_state_spaces() {
    // (executions, steps_total, pruned) per matrix entry, in order: the
    // exploration is deterministic, so any drift means the protocol (or
    // the checker) changed behaviour and must be re-audited.
    let pinned = [
        ("pool_clean_2w2c", 21, 323, 13),
        ("pool_clean_2w3c", 41, 774, 25),
        ("pool_clean_3w2c", 251, 4596, 197),
        ("pool_clean_3w3c", 735, 15913, 573),
        ("pool_poison_2w2c", 18, 241, 11),
        ("pool_poison_2w3c", 27, 425, 16),
        ("pool_poison_3w2c", 218, 3723, 173),
        ("pool_poison_3w3c", 540, 10745, 427),
    ];
    assert_eq!(
        pinned.len(),
        simcheck::checks::PROTOCOL_CHECKS.len(),
        "every matrix entry is pinned"
    );
    for (check, (name, executions, steps, pruned)) in
        simcheck::checks::PROTOCOL_CHECKS.iter().zip(pinned)
    {
        let report = check.run(&cfg());
        assert_eq!(check.name, name, "matrix order is stable");
        assert!(
            report.violation.is_none(),
            "{name}: protocol violation: {:?}",
            report.violation
        );
        assert!(report.complete, "{name}: state space exhausted");
        assert_eq!(report.executions, executions, "{name}: executions");
        assert_eq!(report.steps_total, steps, "{name}: steps");
        assert_eq!(report.pruned, pruned, "{name}: pruned");
    }
}

#[test]
fn violation_reports_render_versioned_json() {
    let report = explore(fixtures::racy_counter::model, &cfg());
    let text = report.to_json("selftest");
    let doc = match simobs::json::parse(&text) {
        Ok(doc) => doc,
        Err(_) => Json::Null,
    };
    assert_ne!(doc, Json::Null, "report must parse as JSON");
    assert_eq!(
        doc.get("format").cloned(),
        Some(Json::Str(simcheck::SCHEMA.to_string()))
    );
    let violation = doc.get("violation").cloned().unwrap_or(Json::Null);
    assert_eq!(
        violation.get("kind").cloned(),
        Some(Json::Str("data_race".to_string()))
    );
    let schedule = violation.get("schedule").cloned().unwrap_or(Json::Null);
    assert!(
        matches!(schedule, Json::Arr(ref items) if !items.is_empty()),
        "schedule is exported for replay"
    );
}
