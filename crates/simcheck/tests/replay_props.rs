//! Property tests for the checker's determinism contract: a seed
//! identifies a random-walk interleaving exactly, a recorded schedule
//! replays its trace byte-identically, and the exhaustive explorer finds
//! the planted 2-thread race within its pinned budget for any bound
//! above the minimum.

use proptest::prelude::*;
use simcheck::{explore, fixtures, random_walk, replay, Config, ViolationKind};

fn cfg() -> Config {
    Config::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same seed always drives the same interleaving: schedule,
    /// trace, and outcome are all equal across runs.
    #[test]
    fn random_walk_is_replay_identical_per_seed(seed in prop::num::u64::ANY) {
        let a = random_walk(fixtures::racy_counter::model, seed, &cfg());
        let b = random_walk(fixtures::racy_counter::model, seed, &cfg());
        prop_assert_eq!(&a.schedule, &b.schedule);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(&a.violation, &b.violation);
    }

    /// Replaying a random walk's decision sequence reproduces its trace
    /// byte-identically — the mechanism that makes every reported
    /// violation reproducible from its JSON `schedule` field.
    #[test]
    fn recorded_schedules_replay_byte_identically(seed in prop::num::u64::ANY) {
        let walked = random_walk(fixtures::unsync_publish::buggy, seed, &cfg());
        let replayed = replay(fixtures::unsync_publish::buggy, &walked.schedule, &cfg());
        prop_assert_eq!(&replayed.trace, &walked.trace);
        prop_assert_eq!(&replayed.violation, &walked.violation);
    }

    /// Exhaustive 2-thread exploration finds the planted race within a
    /// strict budget: one execution and at most 16 steps, regardless of
    /// how generous the configured bounds are (any bounds at or above
    /// the fixture's 9-step first execution behave identically).
    #[test]
    fn exhaustive_search_finds_the_race_within_bounds(extra in 0usize..10_000) {
        let bounds = Config {
            max_steps: 16 + extra,
            max_executions: 1 + extra,
        };
        let report = explore(fixtures::racy_counter::model, &bounds);
        let kind = report.violation.as_ref().map(|v| v.kind);
        prop_assert_eq!(kind, Some(ViolationKind::DataRace));
        prop_assert_eq!(report.executions, 1);
        prop_assert!(report.steps_total <= 16, "steps={}", report.steps_total);
    }
}
