//! Operations, events, and violations: the vocabulary of an explored
//! execution.
//!
//! Every visible operation a shadow type performs becomes an [`Op`];
//! each executed op is recorded as an [`Event`] in the execution trace.
//! When the checker finds a bug it freezes the trace and the decision
//! sequence into a [`Violation`] — enough to replay the exact
//! interleaving (`oocnvm.simcheck/1` JSON via the simobs writer).

use simobs::json::Json;

/// Memory ordering as the model understands it (a closed mirror of
/// `std::sync::atomic::Ordering`, which is `#[non_exhaustive]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOrd {
    /// No synchronization edge.
    Relaxed,
    /// Load half of a synchronizes-with edge.
    Acquire,
    /// Store half of a synchronizes-with edge.
    Release,
    /// Both halves (RMW only).
    AcqRel,
    /// Total order; modeled as `AcqRel` plus the checker's sequential
    /// interleaving (the explorer only generates SC executions, so the
    /// extra total-order constraint is implicit).
    SeqCst,
}

impl MemOrd {
    /// Converts from the std ordering (unknown future variants are
    /// treated as `SeqCst`, the strongest).
    pub fn from_std(ord: std::sync::atomic::Ordering) -> MemOrd {
        use std::sync::atomic::Ordering as O;
        match ord {
            O::Relaxed => MemOrd::Relaxed,
            O::Acquire => MemOrd::Acquire,
            O::Release => MemOrd::Release,
            O::AcqRel => MemOrd::AcqRel,
            _ => MemOrd::SeqCst,
        }
    }

    /// Whether a load with this ordering acquires.
    pub fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    /// Whether a store with this ordering releases.
    pub fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    fn name(self) -> &'static str {
        match self {
            MemOrd::Relaxed => "Relaxed",
            MemOrd::Acquire => "Acquire",
            MemOrd::Release => "Release",
            MemOrd::AcqRel => "AcqRel",
            MemOrd::SeqCst => "SeqCst",
        }
    }
}

/// Read-modify-write flavors the shadow atomics support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// `fetch_add(operand)`.
    FetchAdd,
    /// `swap(operand)`.
    Swap,
}

/// A visible operation, announced at a schedule point before it runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A freshly spawned task reaching its first schedule point.
    TaskStart,
    /// Atomic load.
    Load {
        /// Atomic object id.
        obj: usize,
        /// Ordering of the load.
        ord: MemOrd,
    },
    /// Atomic store.
    Store {
        /// Atomic object id.
        obj: usize,
        /// Ordering of the store.
        ord: MemOrd,
        /// Value being stored.
        val: u64,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Atomic object id.
        obj: usize,
        /// Ordering of the RMW.
        ord: MemOrd,
        /// Which RMW.
        kind: RmwKind,
        /// Right-hand operand.
        operand: u64,
    },
    /// Shadow mutex acquisition (blocks while held).
    Lock {
        /// Mutex object id.
        obj: usize,
    },
    /// Shadow mutex release.
    Unlock {
        /// Mutex object id.
        obj: usize,
    },
    /// Unsynchronized read of a [`crate::RaceCell`].
    CellRead {
        /// Cell object id.
        obj: usize,
    },
    /// Unsynchronized write of a [`crate::RaceCell`].
    CellWrite {
        /// Cell object id.
        obj: usize,
    },
    /// Spawning a child task.
    Spawn {
        /// The child's task id.
        child: usize,
    },
    /// Joining a finished task (blocks until it finishes).
    Join {
        /// The joined task's id.
        target: usize,
    },
}

/// Object classes for the dependence relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ObjClass {
    Atomic,
    Mutex,
    Cell,
}

impl Op {
    /// `(class, object, is_write)` when the op touches a shared object.
    fn key(&self) -> Option<(ObjClass, usize, bool)> {
        match *self {
            Op::Load { obj, .. } => Some((ObjClass::Atomic, obj, false)),
            Op::Store { obj, .. } | Op::Rmw { obj, .. } => Some((ObjClass::Atomic, obj, true)),
            Op::Lock { obj } | Op::Unlock { obj } => Some((ObjClass::Mutex, obj, true)),
            Op::CellRead { obj } => Some((ObjClass::Cell, obj, false)),
            Op::CellWrite { obj } => Some((ObjClass::Cell, obj, true)),
            Op::TaskStart | Op::Spawn { .. } | Op::Join { .. } => None,
        }
    }

    /// Whether two ops are dependent (do not commute): same object and
    /// at least one side writes. Ops without a shared object —
    /// `TaskStart`, `Spawn`, `Join` — only read task-local or immutable
    /// state and commute with everything.
    pub fn dependent(&self, other: &Op) -> bool {
        match (self.key(), other.key()) {
            (Some((ca, ia, wa)), Some((cb, ib, wb))) => ca == cb && ia == ib && (wa || wb),
            _ => false,
        }
    }

    /// Compact human-readable rendering (used in traces and JSON).
    pub fn describe(&self) -> String {
        match *self {
            Op::TaskStart => "start".to_string(),
            Op::Load { obj, ord } => format!("load a{obj} {}", ord.name()),
            Op::Store { obj, ord, val } => format!("store a{obj} <- {val} {}", ord.name()),
            Op::Rmw {
                obj,
                ord,
                kind,
                operand,
            } => {
                let k = match kind {
                    RmwKind::FetchAdd => "fetch_add",
                    RmwKind::Swap => "swap",
                };
                format!("{k} a{obj} {operand} {}", ord.name())
            }
            Op::Lock { obj } => format!("lock m{obj}"),
            Op::Unlock { obj } => format!("unlock m{obj}"),
            Op::CellRead { obj } => format!("read c{obj}"),
            Op::CellWrite { obj } => format!("write c{obj}"),
            Op::Spawn { child } => format!("spawn t{child}"),
            Op::Join { target } => format!("join t{target}"),
        }
    }
}

/// One executed operation in an execution trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// 1-based step number within the execution.
    pub step: usize,
    /// Task that executed the op.
    pub task: usize,
    /// The operation.
    pub op: Op,
    /// Result value (loaded value, RMW's old value; 0 when meaningless).
    pub result: u64,
}

impl Event {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("step", Json::u64(self.step as u64))
            .field("task", Json::u64(self.task as u64))
            .field("op", Json::str(&self.op.describe()))
            .field("result", Json::u64(self.result))
    }
}

/// What kind of bug a violation reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two unordered accesses to a [`crate::RaceCell`], at least one a
    /// write.
    DataRace,
    /// No task can make progress while some remain unfinished.
    Deadlock,
    /// A [`crate::check`] assertion failed.
    AssertFailed,
    /// A task panicked with an ordinary (non-checker) panic.
    Panic,
}

impl ViolationKind {
    /// Stable identifier used in JSON and selftests.
    pub fn id(self) -> &'static str {
        match self {
            ViolationKind::DataRace => "data_race",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::AssertFailed => "assert_failed",
            ViolationKind::Panic => "panic",
        }
    }
}

/// A bug found by the checker, frozen with everything needed to replay
/// the exact interleaving that exhibits it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Bug class.
    pub kind: ViolationKind,
    /// Human-readable description naming the tasks/objects involved.
    pub message: String,
    /// Full event trace of the failing execution.
    pub trace: Vec<Event>,
    /// Decision sequence (chosen task per schedule point); feed to
    /// [`crate::replay`] to reproduce the trace byte-identically.
    pub schedule: Vec<usize>,
}

impl Violation {
    /// JSON rendering used inside reports.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("kind", Json::str(self.kind.id()))
            .field("message", Json::str(&self.message))
            .field(
                "schedule",
                Json::Arr(self.schedule.iter().map(|&t| Json::u64(t as u64)).collect()),
            )
            .field(
                "trace",
                Json::Arr(self.trace.iter().map(Event::to_json).collect()),
            )
    }
}

/// The outcome of one complete execution (one interleaving).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The violation, if this execution exhibited one.
    pub violation: Option<Violation>,
    /// Every executed event, in order.
    pub trace: Vec<Event>,
    /// Every scheduling decision, in order.
    pub schedule: Vec<usize>,
    /// Steps executed.
    pub steps: usize,
    /// The sleep-set chooser cut this execution short as redundant.
    pub pruned: bool,
    /// The per-execution step bound was hit (result incomplete).
    pub step_limited: bool,
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Executions run (including pruned ones).
    pub executions: usize,
    /// Total steps across all executions.
    pub steps_total: usize,
    /// Executions cut short by sleep-set pruning.
    pub pruned: usize,
    /// First violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
    /// Whether the state space was exhausted within the configured
    /// bounds (always `false` when a violation stopped the search and
    /// for random walks).
    pub complete: bool,
}

/// JSON schema tag for simcheck reports.
pub const SCHEMA: &str = "oocnvm.simcheck/1";

impl Report {
    /// Renders the report through the simobs versioned-JSON writer.
    pub fn to_json(&self, name: &str) -> String {
        let violation = match &self.violation {
            Some(v) => v.to_json(),
            None => Json::Null,
        };
        let payload = Json::obj()
            .field("check", Json::str(name))
            .field("executions", Json::u64(self.executions as u64))
            .field("steps_total", Json::u64(self.steps_total as u64))
            .field("pruned", Json::u64(self.pruned as u64))
            .field("complete", Json::Bool(self.complete))
            .field("violation", violation);
        simobs::json::report(SCHEMA, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_is_object_and_write_sensitive() {
        let la = Op::Load {
            obj: 0,
            ord: MemOrd::Relaxed,
        };
        let sa = Op::Store {
            obj: 0,
            ord: MemOrd::Relaxed,
            val: 1,
        };
        let sb = Op::Store {
            obj: 1,
            ord: MemOrd::Relaxed,
            val: 1,
        };
        assert!(la.dependent(&sa), "read/write same atomic");
        assert!(!la.dependent(&la.clone()), "two reads commute");
        assert!(!sa.dependent(&sb), "different objects commute");
        assert!(!Op::TaskStart.dependent(&sa), "start commutes");
        let lock = Op::Lock { obj: 2 };
        let unlock = Op::Unlock { obj: 2 };
        assert!(lock.dependent(&unlock), "same mutex never commutes");
    }

    #[test]
    fn report_json_is_versioned_and_parses() {
        let report = Report {
            executions: 3,
            steps_total: 17,
            pruned: 1,
            violation: Some(Violation {
                kind: ViolationKind::DataRace,
                message: "cell c0".to_string(),
                trace: vec![Event {
                    step: 1,
                    task: 0,
                    op: Op::CellWrite { obj: 0 },
                    result: 0,
                }],
                schedule: vec![0, 1],
            }),
            complete: false,
        };
        let text = report.to_json("demo");
        let doc = simobs::json::parse(&text).unwrap_or(simobs::json::Json::Null);
        assert_eq!(doc.get("format"), Some(&Json::Str(SCHEMA.to_string())));
        assert_eq!(doc.get("check"), Some(&Json::Str("demo".to_string())));
        let v = doc.get("violation").cloned().unwrap_or(Json::Null);
        assert_eq!(v.get("kind"), Some(&Json::Str("data_race".to_string())));
    }
}
