//! The workspace's model-checked protocols: the vendored pool's
//! claim-counter/poison-flag region state, instantiated over the shadow
//! atomics and explored exhaustively at 2–3 workers.
//!
//! `rayon::chunk_claim_protocol!` expands the *same source* here as in
//! `vendor/rayon/src/protocol.rs` — the verified model and the
//! production code cannot drift apart. Each check asserts the protocol's
//! actual contract in every interleaving:
//!
//! * **claim uniqueness / coverage** — with no panics, the workers'
//!   claimed indices are exactly `0..n_chunks`, each claimed once. Each
//!   claimed chunk's slot is written through a [`RaceCell`], so a
//!   duplicate claim would also surface as a data race (two unordered
//!   writers), not just an assertion failure.
//! * **poison-stop** — when a worker poisons the region, claims remain
//!   unique and the flag is visible after the joins. No stronger claim
//!   is made (and none holds): a sibling mid-claim may still take one
//!   more chunk, at `Relaxed` and at `SeqCst` alike — see the ordering
//!   audit in `rayon::protocol`.

use std::sync::Arc;

use crate::explore::{explore, Config};
use crate::shadow::{check, spawn, AtomicBool, AtomicUsize, RaceCell};
use crate::trace::Report;

rayon::chunk_claim_protocol!(pub(crate), AtomicUsize, AtomicBool);

/// The pool's worker loop against the shadow region state: claim chunks
/// until exhausted (or poisoned), "process" each claimed chunk by
/// writing its slot, and return the claim list to the root via join.
/// The bool reports whether this worker poisoned the region (a poisoner
/// that never wins a claim — siblings drained the region first — has
/// nothing to panic in, exactly like the real pool).
fn worker(
    region: &RegionState,
    slots: &[RaceCell<bool>],
    poison_on_first: bool,
) -> (Vec<usize>, bool) {
    let mut claimed = Vec::new();
    while let Some(i) = region.claim() {
        if poison_on_first {
            // Stand-in for a panicking closure: the pool's PanicGuard
            // poisons the region and the worker stops claiming.
            region.poison();
            return (claimed, true);
        }
        if let Some(slot) = slots.get(i) {
            slot.set(true);
        }
        claimed.push(i);
    }
    (claimed, false)
}

/// One run of the pool model; `poisoner` marks a worker whose first
/// claim "panics" instead of processing.
fn pool_model(workers: usize, n_chunks: usize, poisoner: Option<usize>) {
    let region = Arc::new(RegionState::new(n_chunks));
    let slots: Arc<Vec<RaceCell<bool>>> =
        Arc::new((0..n_chunks).map(|_| RaceCell::new(false)).collect());
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let region = Arc::clone(&region);
            let slots = Arc::clone(&slots);
            spawn(move || worker(&region, &slots, poisoner == Some(w)))
        })
        .collect();
    let mut all: Vec<usize> = Vec::new();
    let mut poison_fired = false;
    for h in handles {
        let (claimed, fired) = h.join();
        all.extend(claimed);
        poison_fired |= fired;
    }
    let total = all.len();
    all.sort_unstable();
    all.dedup();
    check(all.len() == total, "no chunk is claimed twice");
    if poison_fired {
        check(
            region.is_poisoned(),
            "the poison flag is visible after the joins",
        );
    } else {
        // No panic fired (the poisoner, if any, never won a claim — the
        // siblings drained the region first): the region must have been
        // drained completely and every chunk processed exactly once.
        let every: Vec<usize> = (0..n_chunks).collect();
        check(all == every, "every chunk is claimed exactly once");
        for slot in slots.iter() {
            check(slot.get(), "every claimed chunk was processed");
        }
    }
}

/// One named protocol check: the model and the exploration bounds.
pub struct ProtocolCheck {
    /// Stable name (used in smoke output and selftests).
    pub name: &'static str,
    /// Worker count.
    pub workers: usize,
    /// Chunk count.
    pub chunks: usize,
    /// Index of the poisoning worker, if this is a poison-path check.
    pub poisoner: Option<usize>,
}

/// The exhaustive protocol matrix: every combination of 2–3 workers and
/// 2–3 chunks, clean and poisoned. Zero violations expected everywhere.
pub const PROTOCOL_CHECKS: [ProtocolCheck; 8] = [
    ProtocolCheck {
        name: "pool_clean_2w2c",
        workers: 2,
        chunks: 2,
        poisoner: None,
    },
    ProtocolCheck {
        name: "pool_clean_2w3c",
        workers: 2,
        chunks: 3,
        poisoner: None,
    },
    ProtocolCheck {
        name: "pool_clean_3w2c",
        workers: 3,
        chunks: 2,
        poisoner: None,
    },
    ProtocolCheck {
        name: "pool_clean_3w3c",
        workers: 3,
        chunks: 3,
        poisoner: None,
    },
    ProtocolCheck {
        name: "pool_poison_2w2c",
        workers: 2,
        chunks: 2,
        poisoner: Some(0),
    },
    ProtocolCheck {
        name: "pool_poison_2w3c",
        workers: 2,
        chunks: 3,
        poisoner: Some(0),
    },
    ProtocolCheck {
        name: "pool_poison_3w2c",
        workers: 3,
        chunks: 2,
        poisoner: Some(1),
    },
    ProtocolCheck {
        name: "pool_poison_3w3c",
        workers: 3,
        chunks: 3,
        poisoner: Some(1),
    },
];

impl ProtocolCheck {
    /// Exhaustively explores this check's model.
    pub fn run(&self, cfg: &Config) -> Report {
        let (workers, chunks, poisoner) = (self.workers, self.chunks, self.poisoner);
        explore(move || pool_model(workers, chunks, poisoner), cfg)
    }
}
