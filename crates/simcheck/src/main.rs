//! `simcheck` — run the workspace's concurrency model checks.
//!
//! ```text
//! simcheck --smoke [--json]
//! ```
//!
//! `--smoke` exhaustively explores the pool claim/poison protocol at
//! 2–3 workers (zero violations expected) and the planted-bug fixtures
//! (each must produce its documented violation), printing one line per
//! check. `--json` additionally emits each check's `oocnvm.simcheck/1`
//! report on stdout. Exit code 0 when every check behaves as pinned,
//! 1 on any deviation, 2 on usage errors.

use simcheck::{checks, explore, fixtures, Config, Report};

/// A fixture expectation: the model must produce exactly this violation
/// kind (or none, for the fixed variants).
struct FixtureCheck {
    name: &'static str,
    model: fn(),
    expect: Option<&'static str>,
}

const FIXTURE_CHECKS: [FixtureCheck; 4] = [
    FixtureCheck {
        name: "fixture_racy_counter",
        model: fixtures::racy_counter::model,
        expect: Some("data_race"),
    },
    FixtureCheck {
        name: "fixture_deadlock",
        model: fixtures::deadlock::model,
        expect: Some("deadlock"),
    },
    FixtureCheck {
        name: "fixture_unsync_publish",
        model: fixtures::unsync_publish::buggy,
        expect: Some("data_race"),
    },
    FixtureCheck {
        name: "fixture_sync_publish",
        model: fixtures::unsync_publish::fixed,
        expect: None,
    },
];

/// Renders one check outcome and returns whether it matched `expect`.
fn judge(name: &str, report: &Report, expect: Option<&str>, json: bool) -> bool {
    let found = report.violation.as_ref().map(|v| v.kind.id());
    let ok = match expect {
        None => found.is_none() && report.complete,
        Some(kind) => found == Some(kind),
    };
    let verdict = if ok { "ok" } else { "FAIL" };
    let outcome = match found {
        None => {
            if report.complete {
                "no violation (exhaustive)".to_string()
            } else {
                "no violation (bounds hit)".to_string()
            }
        }
        Some(kind) => format!("violation: {kind}"),
    };
    println!(
        "simcheck {name}: {verdict} - {outcome} [executions={} steps={} pruned={}]",
        report.executions, report.steps_total, report.pruned
    );
    if json {
        println!("{}", report.to_json(name));
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let known = |a: &String| a == "--smoke" || a == "--json";
    if !args.iter().any(|a| a == "--smoke") || !args.iter().all(known) {
        eprintln!("usage: simcheck --smoke [--json]");
        std::process::exit(2);
    }
    let cfg = Config::default();
    let mut all_ok = true;
    for check in &checks::PROTOCOL_CHECKS {
        let report = check.run(&cfg);
        all_ok &= judge(check.name, &report, None, json);
    }
    for fixture in &FIXTURE_CHECKS {
        let report = explore(fixture.model, &cfg);
        all_ok &= judge(fixture.name, &report, fixture.expect, json);
    }
    if !all_ok {
        std::process::exit(1);
    }
}
