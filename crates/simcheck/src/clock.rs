//! Vector clocks: the happens-before backbone of the model checker.
//!
//! Every task carries a [`VClock`]; every synchronization object carries
//! one describing the knowledge released into it. Data-race detection on
//! [`crate::RaceCell`] reduces to clock comparisons (the FastTrack
//! observation: a race is two accesses, at least one a write, neither
//! ordered before the other).

/// A vector clock over task ids. Component `t` counts the visible
/// operations task `t` has executed; missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The clock's component for task `tid` (zero when never touched).
    pub fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances this task's own component by one.
    pub fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (dst, src) in self.slots.iter_mut().zip(other.slots.iter()) {
            *dst = (*dst).max(*src);
        }
    }

    /// Whether the epoch `(tid, stamp)` happened before the point this
    /// clock describes — i.e. the clock has already observed it.
    pub fn observed(&self, tid: usize, stamp: u32) -> bool {
        stamp <= self.get(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::default();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::default();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn observed_tracks_epochs() {
        let mut a = VClock::default();
        a.tick(2);
        assert!(a.observed(2, 1));
        assert!(!a.observed(2, 2));
        assert!(a.observed(5, 0));
    }
}
