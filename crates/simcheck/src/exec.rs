//! The cooperative scheduler: one execution = one explored interleaving.
//!
//! Tasks run on real scoped threads but are serialized by a token
//! protocol: exactly one task is *active* at any moment, and every
//! visible operation passes through [`Exec::schedule_point`], which
//! parks the caller, lets the chooser pick the next task among the
//! enabled ones, and then executes the chosen task's announced op under
//! the state lock. Because user code between schedule points touches
//! only task-local state, the trace of visible ops fully determines the
//! execution — the property replay and DPOR-style pruning rely on.
//!
//! Execution teardown never uses the `panic!` macro: a controlled abort
//! unwinds with [`std::panic::panic_any`] carrying the private
//! [`Aborted`] token, which every task wrapper catches.

use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::explore::{Choice, Chooser};
use crate::trace::{Event, ExecOutcome, Op, Violation, ViolationKind};

/// Panic payload for controlled teardown (never reported as a bug).
pub(crate) struct Aborted;

/// The crate's only panic sites, quarantined behind the workspace's
/// `clippy::panic` deny: teardown is *control flow* here — the unwind
/// carries [`Aborted`], every task wrapper catches it, and the quiet
/// hook keeps it off stderr. Nothing user-visible ever panics through
/// these except [`unwind::misuse`], which reports API misuse (a shadow
/// type touched outside `explore`/`replay`/`random_walk`).
pub(crate) mod unwind {
    use super::Aborted;

    /// Unwinds the calling task thread for controlled teardown.
    #[allow(clippy::panic)]
    pub(crate) fn teardown() -> ! {
        std::panic::panic_any(Aborted);
    }

    /// Unwinds with a real, user-visible message on API misuse.
    #[allow(clippy::panic)]
    pub(crate) fn misuse(msg: &str) -> ! {
        std::panic::panic_any(msg.to_string());
    }
}

/// A spawned task body.
pub(crate) type TaskBody = Box<dyn FnOnce() + Send>;

/// Messages from tasks to the per-execution driver loop.
pub(crate) enum DriverMsg {
    /// Start a thread for task `.0` running body `.1`.
    Spawn(usize, TaskBody),
    /// All tasks finished; the driver may exit.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskStatus {
    /// Allocated, thread not yet at its first schedule point.
    Fresh,
    /// Parked at a schedule point with a pending op announced.
    Parked,
    /// Picked by the chooser; about to execute its pending op.
    Chosen,
    /// Executing user code between schedule points (the active task).
    Running,
    /// Body returned or unwound.
    Finished,
}

struct TaskState {
    status: TaskStatus,
    pending: Option<Op>,
    clock: VClock,
}

struct AtomicState {
    value: u64,
    /// Knowledge released into this location by release stores/RMWs.
    sync: VClock,
}

struct MutexState {
    held_by: Option<usize>,
    /// Knowledge released by the last unlock.
    sync: VClock,
}

#[derive(Default)]
struct CellState {
    /// Last write as `(task, clock stamp, trace step)`.
    last_write: Option<(usize, u32, usize)>,
    /// Last read per task as `(clock stamp, trace step)`.
    reads: Vec<Option<(u32, usize)>>,
}

struct State {
    tasks: Vec<TaskState>,
    unfinished: usize,
    active: usize,
    step: usize,
    trace: Vec<Event>,
    schedule: Vec<usize>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    cells: Vec<CellState>,
    violation: Option<Violation>,
    aborted: bool,
    pruned: bool,
    step_limited: bool,
    done_sent: bool,
    chooser: Chooser,
    tx: mpsc::Sender<DriverMsg>,
    max_steps: usize,
}

impl State {
    fn op_enabled(&self, op: &Op) -> bool {
        match *op {
            Op::Lock { obj } => self.mutexes[obj].held_by.is_none(),
            Op::Join { target } => self.tasks[target].status == TaskStatus::Finished,
            _ => true,
        }
    }

    fn record_violation(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind,
                message,
                trace: self.trace.clone(),
                schedule: self.schedule.clone(),
            });
        }
    }
}

/// Per-execution scheduler shared by every task thread.
pub(crate) struct Exec {
    state: Mutex<State>,
    cv: Condvar,
}

impl Exec {
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            // Poison can only come from a panic between `drop(guard)`
            // and `panic_any` — state is consistent at every such point.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&'a self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        match self.cv.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a new atomic location, returning its id.
    pub(crate) fn alloc_atomic(&self, value: u64) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicState {
            value,
            sync: VClock::default(),
        });
        st.atomics.len() - 1
    }

    /// Registers a new shadow mutex, returning its id.
    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState {
            held_by: None,
            sync: VClock::default(),
        });
        st.mutexes.len() - 1
    }

    /// Registers a new race-checked cell, returning its id.
    pub(crate) fn alloc_cell(&self) -> usize {
        let mut st = self.lock();
        st.cells.push(CellState::default());
        st.cells.len() - 1
    }

    /// Allocates a task id for a child of `parent`, inheriting the
    /// parent's clock (the spawn happens-before edge). The child joins
    /// the unfinished count only in [`Exec::launch`]: if the spawner is
    /// torn down between the two calls, no thread will ever run the
    /// child, and counting it would leave the execution waiting forever
    /// for a finish that cannot come.
    pub(crate) fn alloc_task(&self, parent: usize) -> usize {
        let mut st = self.lock();
        let clock = st.tasks[parent].clock.clone();
        st.tasks.push(TaskState {
            status: TaskStatus::Fresh,
            pending: None,
            clock,
        });
        st.tasks.len() - 1
    }

    /// Ships the child's body to the driver and waits until its thread
    /// has announced itself (so every later decision sees all runnable
    /// tasks parked with known ops).
    pub(crate) fn launch(&self, child: usize, body: TaskBody) {
        let mut st = self.lock();
        st.unfinished += 1;
        let _shipped = st.tx.send(DriverMsg::Spawn(child, body));
        loop {
            if st.aborted {
                drop(st);
                self.cv.notify_all();
                unwind::teardown();
            }
            if st.tasks[child].status != TaskStatus::Fresh {
                return;
            }
            st = self.wait(st);
        }
    }

    /// Records an assertion failure as a violation and aborts.
    pub(crate) fn fail_assert(&self, tid: usize, msg: &str) -> ! {
        let mut st = self.lock();
        st.record_violation(ViolationKind::AssertFailed, format!("t{tid}: {msg}"));
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
        unwind::teardown();
    }

    /// The heart of the checker: announce `op`, hand the token to the
    /// chooser's pick, wait to be picked, then execute the op. Returns
    /// the op's result value (loaded value / RMW old value).
    pub(crate) fn schedule_point(&self, tid: usize, op: Op) -> u64 {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            unwind::teardown();
        }
        st.tasks[tid].pending = Some(op);
        st.tasks[tid].status = TaskStatus::Parked;
        if st.active == tid {
            self.decide(&mut st);
        } else {
            // A fresh task announcing itself: wake the launching parent.
            self.cv.notify_all();
        }
        loop {
            if st.aborted {
                drop(st);
                self.cv.notify_all();
                unwind::teardown();
            }
            if st.active == tid && st.tasks[tid].status == TaskStatus::Chosen {
                break;
            }
            st = self.wait(st);
        }
        st.tasks[tid].status = TaskStatus::Running;
        let (result, abort) = self.execute_op(&mut st, tid);
        if abort {
            drop(st);
            self.cv.notify_all();
            unwind::teardown();
        }
        result
    }

    /// Marks `tid` finished and hands the token onward. `payload` is the
    /// panic payload when the body unwound ([`Aborted`] is teardown, not
    /// a bug; anything else is reported as a `Panic` violation).
    pub(crate) fn task_finished(&self, tid: usize, payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        st.tasks[tid].status = TaskStatus::Finished;
        st.tasks[tid].pending = None;
        st.unfinished -= 1;
        if let Some(p) = payload {
            if p.downcast_ref::<Aborted>().is_none() {
                let msg = panic_message(p.as_ref());
                st.record_violation(ViolationKind::Panic, format!("task t{tid} panicked: {msg}"));
                st.aborted = true;
            }
        }
        if st.unfinished == 0 {
            if !st.done_sent {
                st.done_sent = true;
                let _done = st.tx.send(DriverMsg::Done);
            }
        } else if !st.aborted {
            self.decide(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Picks the next task to run among the enabled parked tasks,
    /// reporting a deadlock when none is enabled and honoring the
    /// chooser's sleep-set prune.
    fn decide(&self, st: &mut State) {
        let parked: Vec<(usize, Op)> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == TaskStatus::Parked)
            .filter_map(|(i, t)| t.pending.clone().map(|op| (i, op)))
            .collect();
        let enabled: Vec<usize> = parked
            .iter()
            .filter(|(_, op)| st.op_enabled(op))
            .map(|&(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let blocked: Vec<String> = parked
                .iter()
                .map(|(i, op)| format!("t{i} blocked on {}", op.describe()))
                .collect();
            st.record_violation(
                ViolationKind::Deadlock,
                format!(
                    "deadlock: {} unfinished task(s), none enabled [{}]",
                    st.unfinished,
                    blocked.join("; ")
                ),
            );
            st.aborted = true;
            self.cv.notify_all();
            return;
        }
        match st.chooser.choose(&enabled, &parked) {
            Choice::Task(next) => {
                st.schedule.push(next);
                st.active = next;
                st.tasks[next].status = TaskStatus::Chosen;
                self.cv.notify_all();
            }
            Choice::Prune => {
                st.pruned = true;
                st.aborted = true;
                self.cv.notify_all();
            }
        }
    }

    /// Executes `tid`'s pending op against the shadow state. Returns
    /// `(result, abort)`; `abort` is set when the op surfaced a bug or
    /// hit the step bound.
    fn execute_op(&self, st: &mut State, tid: usize) -> (u64, bool) {
        let Some(op) = st.tasks[tid].pending.take() else {
            return (0, false);
        };
        st.step += 1;
        if st.step > st.max_steps {
            st.step_limited = true;
            st.aborted = true;
            return (0, true);
        }
        let step = st.step;
        st.tasks[tid].clock.tick(tid);
        let stamp = st.tasks[tid].clock.get(tid);
        let mut result = 0u64;
        let mut race: Option<String> = None;
        match op {
            Op::TaskStart | Op::Spawn { .. } => {}
            Op::Load { obj, ord } => {
                result = st.atomics[obj].value;
                if ord.acquires() {
                    let sync = st.atomics[obj].sync.clone();
                    st.tasks[tid].clock.join(&sync);
                }
            }
            Op::Store { obj, ord, val } => {
                st.atomics[obj].value = val;
                // A plain store replaces the release clock (it starts a
                // new release sequence — or none, when relaxed).
                st.atomics[obj].sync = if ord.releases() {
                    st.tasks[tid].clock.clone()
                } else {
                    VClock::default()
                };
            }
            Op::Rmw {
                obj,
                ord,
                kind,
                operand,
            } => {
                if ord.acquires() {
                    let sync = st.atomics[obj].sync.clone();
                    st.tasks[tid].clock.join(&sync);
                }
                result = st.atomics[obj].value;
                st.atomics[obj].value = match kind {
                    crate::trace::RmwKind::FetchAdd => result.wrapping_add(operand),
                    crate::trace::RmwKind::Swap => operand,
                };
                // An RMW continues an existing release sequence, so the
                // location's clock joins rather than resets.
                if ord.releases() {
                    let clock = st.tasks[tid].clock.clone();
                    st.atomics[obj].sync.join(&clock);
                }
            }
            Op::Lock { obj } => {
                debug_assert!(st.mutexes[obj].held_by.is_none(), "chose a disabled lock");
                st.mutexes[obj].held_by = Some(tid);
                let sync = st.mutexes[obj].sync.clone();
                st.tasks[tid].clock.join(&sync);
            }
            Op::Unlock { obj } => {
                st.mutexes[obj].held_by = None;
                st.mutexes[obj].sync = st.tasks[tid].clock.clone();
            }
            Op::CellRead { obj } => {
                if let Some((wt, wstamp, wstep)) = st.cells[obj].last_write {
                    if wt != tid && !st.tasks[tid].clock.observed(wt, wstamp) {
                        race = Some(format!(
                            "data race on c{obj}: write by t{wt} (step {wstep}) \
                             unordered with read by t{tid} (step {step})"
                        ));
                    }
                }
                let cell = &mut st.cells[obj];
                if cell.reads.len() <= tid {
                    cell.reads.resize(tid + 1, None);
                }
                cell.reads[tid] = Some((stamp, step));
            }
            Op::CellWrite { obj } => {
                if let Some((wt, wstamp, wstep)) = st.cells[obj].last_write {
                    if wt != tid && !st.tasks[tid].clock.observed(wt, wstamp) {
                        race = Some(format!(
                            "data race on c{obj}: write by t{wt} (step {wstep}) \
                             unordered with write by t{tid} (step {step})"
                        ));
                    }
                }
                for (rt, slot) in st.cells[obj].reads.iter().enumerate() {
                    if let Some((rstamp, rstep)) = *slot {
                        if rt != tid && !st.tasks[tid].clock.observed(rt, rstamp) {
                            race = Some(format!(
                                "data race on c{obj}: read by t{rt} (step {rstep}) \
                                 unordered with write by t{tid} (step {step})"
                            ));
                        }
                    }
                }
                let cell = &mut st.cells[obj];
                cell.reads.clear();
                cell.last_write = Some((tid, stamp, step));
            }
            Op::Join { target } => {
                debug_assert!(
                    st.tasks[target].status == TaskStatus::Finished,
                    "chose a disabled join"
                );
                let clock = st.tasks[target].clock.clone();
                st.tasks[tid].clock.join(&clock);
            }
        }
        st.trace.push(Event {
            step,
            task: tid,
            op,
            result,
        });
        if let Some(msg) = race {
            st.record_violation(ViolationKind::DataRace, msg);
            st.aborted = true;
            return (result, true);
        }
        (result, false)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

std::thread_local! {
    /// The current task's identity, set for the duration of its body.
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// A task's handle to its execution, stored in TLS.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

/// The calling task's context; unwinds (as a `Panic` violation or test
/// failure) when called outside a model.
pub(crate) fn ctx() -> Ctx {
    CTX.with(|slot| match slot.borrow().as_ref() {
        Some(ctx) => ctx.clone(),
        None => unwind::misuse("simcheck shadow operation used outside model()"),
    })
}

fn task_main(exec: &Arc<Exec>, tid: usize, body: TaskBody) {
    CTX.with(|slot| {
        *slot.borrow_mut() = Some(Ctx {
            exec: Arc::clone(exec),
            tid,
        });
    });
    let e2 = Arc::clone(exec);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        e2.schedule_point(tid, Op::TaskStart);
        body();
    }));
    CTX.with(|slot| {
        *slot.borrow_mut() = None;
    });
    exec.task_finished(tid, outcome.err());
}

/// Silences the default panic hook for [`Aborted`] teardown unwinds —
/// they are the checker's control flow, not failures — while leaving
/// every other panic's report (including model bugs) untouched.
fn install_quiet_teardown_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Aborted>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs one execution of `model` under `chooser`, returning the outcome
/// and the chooser (with its cross-execution exploration state).
pub(crate) fn run_model(
    model: &Arc<dyn Fn() + Send + Sync>,
    chooser: Chooser,
    max_steps: usize,
) -> (ExecOutcome, Chooser) {
    install_quiet_teardown_hook();
    let (tx, rx) = mpsc::channel();
    let exec = Arc::new(Exec {
        state: Mutex::new(State {
            tasks: vec![TaskState {
                status: TaskStatus::Fresh,
                pending: None,
                clock: VClock::default(),
            }],
            unfinished: 1,
            active: 0,
            step: 0,
            trace: Vec::new(),
            schedule: Vec::new(),
            atomics: Vec::new(),
            mutexes: Vec::new(),
            cells: Vec::new(),
            violation: None,
            aborted: false,
            pruned: false,
            step_limited: false,
            done_sent: false,
            chooser,
            tx,
            max_steps,
        }),
        cv: Condvar::new(),
    });
    std::thread::scope(|scope| {
        let root_exec = Arc::clone(&exec);
        let root_model = Arc::clone(model);
        scope.spawn(move || task_main(&root_exec, 0, Box::new(move || root_model())));
        while let Ok(DriverMsg::Spawn(tid, body)) = rx.recv() {
            let task_exec = Arc::clone(&exec);
            scope.spawn(move || task_main(&task_exec, tid, body));
        }
    });
    let mut st = exec.lock();
    let outcome = ExecOutcome {
        violation: st.violation.take(),
        trace: std::mem::take(&mut st.trace),
        schedule: std::mem::take(&mut st.schedule),
        steps: st.step,
        pruned: st.pruned,
        step_limited: st.step_limited,
    };
    let chooser = std::mem::replace(&mut st.chooser, Chooser::Fifo);
    drop(st);
    (outcome, chooser)
}
