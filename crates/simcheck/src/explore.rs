//! Schedule exploration: exhaustive DFS with sleep-set pruning, seeded
//! random walks, and exact replay.
//!
//! The exhaustive mode enumerates interleavings as a depth-first search
//! over scheduling decisions. Sleep sets (the DPOR family's cheapest
//! member) prune interleavings that only commute independent operations:
//! after a branch is fully explored its task goes to sleep for the
//! remaining siblings, and sleeping tasks are only woken by a dependent
//! operation. Every Mazurkiewicz trace is still visited at least once,
//! so any reachable data race, deadlock, or assertion failure is found.
//!
//! The random mode drives decisions from the workspace's SplitMix64
//! machinery (`rand::SmallRng::seed_from_u64`), so a seed identifies an
//! interleaving stream exactly — the replay-determinism property pinned
//! by `tests/replay_props.rs`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::exec::run_model;
use crate::trace::{ExecOutcome, Op, Report};

/// What the chooser wants done at a decision point.
pub(crate) enum Choice {
    /// Run this task next.
    Task(usize),
    /// Every enabled task is asleep: the execution is redundant.
    Prune,
}

/// One node on the DFS decision stack.
struct Node {
    /// Branch currently being explored.
    chosen: usize,
    /// Enabled tasks at this decision, in task-id order.
    enabled: Vec<usize>,
    /// Tasks asleep on entry (their pending op commutes with everything
    /// executed since they were passed over).
    sleep: BTreeSet<usize>,
    /// Siblings whose subtrees are fully explored (asleep for the rest
    /// of this node's lifetime).
    done: BTreeSet<usize>,
    /// Pending op of every parked task at this decision.
    ops: BTreeMap<usize, Op>,
}

/// Cross-execution DFS state.
#[derive(Default)]
pub(crate) struct DfsStack {
    nodes: Vec<Node>,
    /// Replay cursor within the current execution.
    pos: usize,
}

impl DfsStack {
    fn choose(&mut self, enabled: &[usize], parked: &[(usize, Op)]) -> Choice {
        if self.pos < self.nodes.len() {
            // Replaying the committed prefix of the previous execution.
            let node = &self.nodes[self.pos];
            debug_assert_eq!(node.enabled, enabled, "model is not deterministic");
            self.pos += 1;
            return Choice::Task(node.chosen);
        }
        // A fresh frontier node: inherit sleepers that commute with the
        // parent's executed op (dependent ops wake a sleeping task).
        let sleep: BTreeSet<usize> = match self.nodes.last() {
            Some(parent) => {
                let executed = &parent.ops[&parent.chosen];
                parent
                    .sleep
                    .iter()
                    .chain(parent.done.iter())
                    .copied()
                    .filter(|s| match parent.ops.get(s) {
                        Some(op) => !op.dependent(executed),
                        None => false,
                    })
                    .collect()
            }
            None => BTreeSet::new(),
        };
        let Some(&chosen) = enabled.iter().find(|t| !sleep.contains(t)) else {
            return Choice::Prune;
        };
        self.nodes.push(Node {
            chosen,
            enabled: enabled.to_vec(),
            sleep,
            done: BTreeSet::new(),
            ops: parked.iter().cloned().collect(),
        });
        self.pos += 1;
        Choice::Task(chosen)
    }

    /// Advances to the next unexplored branch; `false` when the whole
    /// tree is exhausted.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some(top) = self.nodes.last_mut() else {
                return false;
            };
            top.done.insert(top.chosen);
            let next = top
                .enabled
                .iter()
                .copied()
                .find(|t| !top.sleep.contains(t) && !top.done.contains(t));
            match next {
                Some(t) => {
                    top.chosen = t;
                    self.pos = 0;
                    return true;
                }
                None => {
                    self.nodes.pop();
                }
            }
        }
    }
}

/// Decision strategy for one or more executions.
pub(crate) enum Chooser {
    /// Exhaustive DFS with sleep sets.
    Dfs(DfsStack),
    /// Seeded uniform random walk.
    Random(SmallRng),
    /// Forced decision sequence (trace reproduction).
    Replay {
        /// The schedule to follow.
        sched: Vec<usize>,
        /// Cursor into `sched`.
        pos: usize,
    },
    /// Always the lowest-id enabled task (placeholder / smoke runs).
    Fifo,
}

impl Chooser {
    pub(crate) fn choose(&mut self, enabled: &[usize], parked: &[(usize, Op)]) -> Choice {
        match self {
            Chooser::Dfs(stack) => stack.choose(enabled, parked),
            Chooser::Random(rng) => {
                let pick = rng.gen_range(0..enabled.len());
                Choice::Task(enabled[pick])
            }
            Chooser::Replay { sched, pos } => {
                let forced = sched.get(*pos).copied();
                *pos += 1;
                match forced {
                    Some(t) if enabled.contains(&t) => Choice::Task(t),
                    // Schedule exhausted or diverged (the model changed
                    // since the trace was recorded): fall back to the
                    // lowest-id enabled task rather than wedge.
                    _ => Choice::Task(enabled[0]),
                }
            }
            Chooser::Fifo => Choice::Task(enabled[0]),
        }
    }
}

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-execution step budget; exceeding it marks the report
    /// incomplete (the model likely has an unbounded loop).
    pub max_steps: usize,
    /// Execution budget for exhaustive exploration; exceeding it marks
    /// the report incomplete.
    pub max_executions: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_steps: 20_000,
            max_executions: 200_000,
        }
    }
}

/// Exhaustively explores every interleaving of `model` (up to sleep-set
/// equivalence) within `cfg`'s bounds, stopping at the first violation.
pub fn explore<F>(model: F, cfg: &Config) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut dfs = DfsStack::default();
    let mut report = Report {
        executions: 0,
        steps_total: 0,
        pruned: 0,
        violation: None,
        complete: false,
    };
    loop {
        if report.executions >= cfg.max_executions {
            return report;
        }
        let (outcome, back) = run_model(&model, Chooser::Dfs(dfs), cfg.max_steps);
        dfs = match back {
            Chooser::Dfs(stack) => stack,
            // run_model returns the chooser it was given.
            _ => return report,
        };
        report.executions += 1;
        report.steps_total += outcome.steps;
        if outcome.pruned {
            report.pruned += 1;
        }
        if outcome.step_limited {
            return report;
        }
        if outcome.violation.is_some() {
            report.violation = outcome.violation;
            return report;
        }
        if !dfs.backtrack() {
            report.complete = true;
            return report;
        }
    }
}

/// Runs a single seeded random-walk execution of `model`. The same seed
/// always produces the identical schedule, trace, and outcome.
pub fn random_walk<F>(model: F, seed: u64, cfg: &Config) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let chooser = Chooser::Random(SmallRng::seed_from_u64(seed));
    run_model(&model, chooser, cfg.max_steps).0
}

/// Runs up to `iters` seeded random-walk executions (one RNG stream
/// across all of them), stopping at the first violation.
pub fn explore_random<F>(model: F, seed: u64, iters: usize, cfg: &Config) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut chooser = Chooser::Random(SmallRng::seed_from_u64(seed));
    let mut report = Report {
        executions: 0,
        steps_total: 0,
        pruned: 0,
        violation: None,
        complete: false,
    };
    for _ in 0..iters {
        let (outcome, back) = run_model(&model, chooser, cfg.max_steps);
        chooser = back;
        report.executions += 1;
        report.steps_total += outcome.steps;
        if outcome.violation.is_some() {
            report.violation = outcome.violation;
            return report;
        }
    }
    report
}

/// Re-runs `model` under a recorded decision sequence, reproducing the
/// trace that produced it byte-identically (violations included).
pub fn replay<F>(model: F, schedule: &[usize], cfg: &Config) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let chooser = Chooser::Replay {
        sched: schedule.to_vec(),
        pos: 0,
    };
    run_model(&model, chooser, cfg.max_steps).0
}
