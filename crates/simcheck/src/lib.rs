//! # simcheck — loom-style concurrency model checking for the workspace
//!
//! The lock-free roadmap items (work-sharing pool internals today,
//! concurrent prefetch/pipeline state machines next) cannot be gated by
//! example-based tests: a racy interleaving that fires once per million
//! runs passes `cargo test` forever. This crate gates them the way loom
//! and shuttle gate real lock-free code — by *enumerating* thread
//! interleavings instead of sampling them:
//!
//! * **Shadow types** ([`AtomicUsize`], [`AtomicBool`], [`Mutex`],
//!   [`RaceCell`], [`spawn`]/[`JoinHandle`]) mirror the std API but
//!   announce every visible operation to a cooperative scheduler. Real
//!   scoped OS threads run the model; exactly one is ever unblocked, so
//!   the scheduler owns every ordering decision.
//! * **Exhaustive exploration** ([`explore`]) walks the decision tree
//!   depth-first with sleep-set pruning (the DPOR family's entry point):
//!   interleavings that only commute independent operations are visited
//!   once. Within the configured bounds every Mazurkiewicz trace is
//!   covered, so a reachable data race, deadlock, assertion failure, or
//!   panic *will* be found.
//! * **Determinism and replay** ([`random_walk`], [`replay`]) reuse the
//!   workspace's SplitMix64 seeding (`rand::SmallRng::seed_from_u64`): a
//!   seed identifies an interleaving stream exactly, and a recorded
//!   decision sequence reproduces its trace byte-identically. Every
//!   [`Violation`] carries both the event trace and the schedule.
//! * **Happens-before, not luck** — data races on [`RaceCell`] are
//!   detected with vector clocks (FastTrack-style): two accesses, at
//!   least one a write, neither ordered before the other. `Relaxed`
//!   atomics deliberately contribute *no* ordering edge, so
//!   publish-via-relaxed bugs are caught even though the explorer only
//!   generates sequentially consistent interleavings.
//!
//! Violations render through the simobs versioned-JSON writer under the
//! [`SCHEMA`] tag, so `simcheck --smoke` output is machine-checkable by
//! the same tooling as every other workspace report.
//!
//! The planted-bug fixtures under `fixtures/` (compiled in via
//! [`fixtures`]) keep the checker honest: selftests pin the exact
//! violation kind, execution count, and replayability for a racy
//! counter, an AB-BA deadlock, and an unsynchronized publish.
//!
//! See `docs/CONCURRENCY.md` for the full model and its limits (SC
//! interleavings + HB race detection, not weak-memory simulation).

mod clock;
mod exec;
mod explore;
mod shadow;
mod trace;

pub mod checks;

pub use explore::{explore, explore_random, random_walk, replay, Config};
pub use shadow::{check, spawn, AtomicBool, AtomicUsize, JoinHandle, Mutex, MutexGuard, RaceCell};
pub use trace::{
    Event, ExecOutcome, MemOrd, Op, Report, RmwKind, Violation, ViolationKind, SCHEMA,
};

#[path = "../fixtures/mod.rs"]
pub mod fixtures;
