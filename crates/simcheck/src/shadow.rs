//! Shadow synchronization types: drop-in lookalikes for the std types
//! whose every access is announced to the scheduler.
//!
//! The shadow atomics accept the real `std::sync::atomic::Ordering`, so
//! protocol code written once (e.g. via `rayon::chunk_claim_protocol!`)
//! instantiates against either the std types or these with no source
//! changes. Data payloads live behind ordinary `std::sync::Mutex`es —
//! the scheduler serializes all access, so those locks are uncontended
//! bookkeeping that keeps the crate free of `unsafe`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::exec::{ctx, unwind, Ctx};
use crate::trace::{MemOrd, Op, RmwKind};

fn lock_data<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        // Teardown unwinds can poison payload locks; the data is
        // untouched (writes complete before any schedule point).
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Shadow `AtomicUsize`: every access is a schedule point, orderings
/// feed the happens-before model.
pub struct AtomicUsize {
    id: usize,
}

impl AtomicUsize {
    /// Registers a new atomic with the current execution.
    pub fn new(value: usize) -> AtomicUsize {
        let id = ctx().exec.alloc_atomic(value as u64);
        AtomicUsize { id }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> usize {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Load {
                obj: self.id,
                ord: MemOrd::from_std(ord),
            },
        ) as usize
    }

    /// Atomic store.
    pub fn store(&self, value: usize, ord: Ordering) {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Store {
                obj: self.id,
                ord: MemOrd::from_std(ord),
                val: value as u64,
            },
        );
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, value: usize, ord: Ordering) -> usize {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Rmw {
                obj: self.id,
                ord: MemOrd::from_std(ord),
                kind: RmwKind::FetchAdd,
                operand: value as u64,
            },
        ) as usize
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, value: usize, ord: Ordering) -> usize {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Rmw {
                obj: self.id,
                ord: MemOrd::from_std(ord),
                kind: RmwKind::Swap,
                operand: value as u64,
            },
        ) as usize
    }
}

/// Shadow `AtomicBool` (same machinery over 0/1).
pub struct AtomicBool {
    id: usize,
}

impl AtomicBool {
    /// Registers a new atomic flag with the current execution.
    pub fn new(value: bool) -> AtomicBool {
        let id = ctx().exec.alloc_atomic(u64::from(value));
        AtomicBool { id }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Load {
                obj: self.id,
                ord: MemOrd::from_std(ord),
            },
        ) != 0
    }

    /// Atomic store.
    pub fn store(&self, value: bool, ord: Ordering) {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Store {
                obj: self.id,
                ord: MemOrd::from_std(ord),
                val: u64::from(value),
            },
        );
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, value: bool, ord: Ordering) -> bool {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(
            tid,
            Op::Rmw {
                obj: self.id,
                ord: MemOrd::from_std(ord),
                kind: RmwKind::Swap,
                operand: u64::from(value),
            },
        ) != 0
    }
}

/// Shadow mutex: lock acquisition is a blocking schedule point (the
/// checker reports a deadlock when no task can proceed), and the
/// lock/unlock pair carries a happens-before edge like the real thing.
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Registers a new shadow mutex with the current execution.
    pub fn new(value: T) -> Mutex<T> {
        let id = ctx().exec.alloc_mutex();
        Mutex {
            id,
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking (in model time) while held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::Lock { obj: self.id });
        MutexGuard {
            id: self.id,
            inner: lock_data(&self.data),
        }
    }
}

/// RAII guard for [`Mutex`]; unlocking is a schedule point.
pub struct MutexGuard<'a, T> {
    id: usize,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // During teardown (controlled abort or a reported panic) the
        // execution is already frozen; skip the unlock schedule point
        // so unwinding never re-enters the scheduler.
        if std::thread::panicking() {
            return;
        }
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::Unlock { obj: self.id });
    }
}

/// A deliberately unsynchronized cell: reads and writes are visible ops
/// checked for data races via vector clocks (FastTrack-style). The
/// payload itself sits behind a std mutex purely so the type stays free
/// of `unsafe` — the *model* treats accesses as unsynchronized.
pub struct RaceCell<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> RaceCell<T> {
    /// Registers a new race-checked cell with the current execution.
    pub fn new(value: T) -> RaceCell<T> {
        let id = ctx().exec.alloc_cell();
        RaceCell {
            id,
            data: std::sync::Mutex::new(value),
        }
    }

    /// Unsynchronized write.
    pub fn set(&self, value: T) {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::CellWrite { obj: self.id });
        *lock_data(&self.data) = value;
    }

    /// Unsynchronized read.
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::CellRead { obj: self.id });
        *lock_data(&self.data)
    }

    /// Unsynchronized read through a closure (non-`Copy` payloads).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::CellRead { obj: self.id });
        f(&lock_data(&self.data))
    }
}

/// Handle to a spawned model task.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<std::sync::Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the task and returns its result.
    pub fn join(self) -> T {
        let Ctx { exec, tid } = ctx();
        exec.schedule_point(tid, Op::Join { target: self.tid });
        let taken = lock_data(&self.slot).take();
        match taken {
            Some(value) => value,
            // Only reachable mid-teardown; propagate the abort.
            None => unwind::teardown(),
        }
    }
}

/// Spawns a model task. The child inherits the spawner's happens-before
/// knowledge; joining it flows its knowledge back.
pub fn spawn<T, F>(body: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Ctx { exec, tid } = ctx();
    let child = exec.alloc_task(tid);
    let slot = Arc::new(std::sync::Mutex::new(None));
    let child_slot = Arc::clone(&slot);
    exec.schedule_point(tid, Op::Spawn { child });
    exec.launch(
        child,
        Box::new(move || {
            let value = body();
            *lock_data(&child_slot) = Some(value);
        }),
    );
    JoinHandle { tid: child, slot }
}

/// Model assertion: a failure freezes the interleaving trace into an
/// `assert_failed` violation (instead of tearing down the test with an
/// uninformative panic).
pub fn check(cond: bool, msg: &str) {
    if cond {
        return;
    }
    let Ctx { exec, tid } = ctx();
    exec.fail_assert(tid, msg);
}
