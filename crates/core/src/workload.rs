//! Workload builders: synthetic out-of-core sweeps and real LOBPCG traces.

use nvmtypes::IoOp;
use ooc::lobpcg::{Lobpcg, LobpcgOptions, TracedOperator};
use ooc::{HamiltonianSpec, OocMatrix};
use ooctrace::{PosixTrace, TraceCapture, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fast synthetic stand-in for the out-of-core eigensolver's I/O: a
/// read-only sequential panel sweep over one large file, repeated until
/// `total_bytes` have been read — the shape §3.1 describes ("most OoC
/// computations are heavily read-intensive and require many iterations").
///
/// `record_size` is the application's POSIX read granularity (one matrix
/// panel). `seed` perturbs record sizes by ±12% so traces are not
/// artificially uniform.
pub fn synthetic_ooc_trace(total_bytes: u64, record_size: u64, seed: u64) -> PosixTrace {
    assert!(record_size >= 4096, "panel reads are large");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = PosixTrace::new();
    // The matrix file is a quarter of the volume: four sweeps on average.
    let file_len = (total_bytes / 4).max(record_size);
    let mut pos = 0u64;
    let mut moved = 0u64;
    let mut t = 0u64;
    while moved < total_bytes {
        let jitter = 1.0 + rng.gen_range(-0.12..0.12);
        let len = (((record_size as f64 * jitter) as u64).max(4096))
            .min(file_len - pos)
            .min(total_bytes - moved);
        trace.push(TraceRecord {
            t,
            op: IoOp::Read,
            file: 0,
            offset: pos,
            len,
        });
        t += 1;
        pos += len;
        if pos >= file_len {
            pos = 0;
        }
        moved += len;
    }
    trace
}

/// Captures the POSIX-level trace of a *real* LOBPCG run: builds a
/// synthetic nuclear-CI Hamiltonian, serialises it into an out-of-core
/// panel store, and records every panel read the eigensolver performs.
///
/// Returns the trace together with the solver's eigenvalues so callers can
/// assert the computation (not just the I/O) was real.
pub fn lobpcg_posix_trace(
    n: usize,
    block_size: usize,
    max_iters: usize,
    rows_per_panel: usize,
) -> (PosixTrace, Vec<f64>) {
    let h = HamiltonianSpec::medium(n).generate();
    let diag: Vec<f64> = (0..h.n).map(|i| h.get(i, i)).collect();
    let ooc = OocMatrix::build(&h, rows_per_panel, 0, None);
    let cap = TraceCapture::new();
    let op = TracedOperator::new(&ooc, &cap).with_diagonal(diag);
    let solver = Lobpcg::new(LobpcgOptions {
        block_size,
        max_iters,
        tol: 1e-6,
        seed: 13,
        precondition: true,
    });
    let result = solver.solve(&op);
    (cap.into_trace(), result.eigenvalues)
}

/// An out-of-core graph-analytics workload (the intro's other OoC family:
/// external-memory BFS and PageRank, the paper's [34]/[44]). Each
/// "superstep" streams a large sequential run of edge blocks (file 0) and
/// sprinkles small random reads into the vertex-state array (file 1);
/// `random_fraction` sets the byte share of the random component.
pub fn graph_ooc_trace(
    total_bytes: u64,
    edge_block: u64,
    random_fraction: f64,
    seed: u64,
) -> PosixTrace {
    assert!((0.0..=0.9).contains(&random_fraction));
    assert!(edge_block >= 64 * 1024);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9a17);
    let mut trace = PosixTrace::new();
    let edge_file = (total_bytes / 3).max(edge_block);
    let vertex_file = (edge_file / 8).max(1 << 20);
    let vertex_read = 8 * 1024u64;
    let mut edge_pos = 0u64;
    let mut moved = 0u64;
    let mut t = 0u64;
    while moved < total_bytes {
        // One edge block, sequential with wraparound.
        let len = edge_block.min(edge_file - edge_pos);
        trace.push(TraceRecord {
            t,
            op: IoOp::Read,
            file: 0,
            offset: edge_pos,
            len,
        });
        t += 1;
        edge_pos = (edge_pos + len) % edge_file;
        moved += len;
        // Random vertex-state touches to keep the byte ratio.
        let mut random_due = (len as f64 * random_fraction / (1.0 - random_fraction)) as u64;
        while random_due >= vertex_read && moved < total_bytes {
            let off = rng.gen_range(0..vertex_file / vertex_read) * vertex_read;
            trace.push(TraceRecord {
                t,
                op: IoOp::Read,
                file: 1,
                offset: off,
                len: vertex_read,
            });
            t += 1;
            random_due -= vertex_read;
            moved += vertex_read;
        }
    }
    trace
}

/// A key-value lookup workload: uniformly random point reads of
/// `value_size` bytes over a store file much larger than the bytes
/// moved, so there is essentially no spatial reuse. This is the
/// latency-sensitive tenant of the multi-tenant studies ([`crate::tenancy`]):
/// every request is small and independent, which makes its tail latency
/// the first casualty of a bandwidth-hungry co-tenant.
pub fn kv_lookup_trace(total_bytes: u64, value_size: u64, seed: u64) -> PosixTrace {
    assert!(value_size >= 4096, "values are at least one block");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51c7);
    let mut trace = PosixTrace::new();
    // The store is 8x the bytes read: lookups effectively never repeat.
    let slots = ((total_bytes * 8) / value_size).max(1);
    let mut moved = 0u64;
    let mut t = 0u64;
    while moved < total_bytes {
        let off = rng.gen_range(0..slots) * value_size;
        let len = value_size.min(total_bytes - moved).max(4096);
        trace.push(TraceRecord {
            t,
            op: IoOp::Read,
            file: 0,
            offset: off,
            len,
        });
        t += 1;
        moved += len;
    }
    trace
}

/// A hybrid-checkpointing workload (the related-work scenario of the
/// paper's [33]): the read-dominant OoC sweep interleaved with periodic
/// large sequential checkpoint writes to a separate file. Exercises the
/// device's program, erase-before-write and wear paths alongside reads.
pub fn checkpoint_trace(
    read_bytes: u64,
    ckpt_interval_bytes: u64,
    ckpt_bytes: u64,
    record_size: u64,
    seed: u64,
) -> PosixTrace {
    assert!(ckpt_interval_bytes >= record_size && ckpt_bytes >= 4096);
    let base = synthetic_ooc_trace(read_bytes, record_size, seed);
    let mut out = PosixTrace::new();
    let mut since_ckpt = 0u64;
    let mut ckpt_cursor = 0u64;
    let mut t = 0u64;
    for rec in base.records {
        out.push(TraceRecord { t, ..rec });
        t += 1;
        since_ckpt += rec.len;
        if since_ckpt >= ckpt_interval_bytes {
            since_ckpt -= ckpt_interval_bytes;
            // One checkpoint burst: sequential appends to file 1 in
            // record-size pieces.
            let mut left = ckpt_bytes;
            while left > 0 {
                let len = left.min(record_size);
                out.push(TraceRecord {
                    t,
                    op: IoOp::Write,
                    file: 1,
                    offset: ckpt_cursor,
                    len,
                });
                t += 1;
                ckpt_cursor += len;
                left -= len;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_volume_and_shape() {
        let tr = synthetic_ooc_trace(64 << 20, 4 << 20, 1);
        assert!(tr.total_bytes() >= 64 << 20);
        assert!((tr.read_fraction() - 1.0).abs() < 1e-12);
        // Mostly sequential within the file.
        let stats = ooctrace::AccessStats::of_posix(&tr);
        assert!(
            stats.sequentiality > 0.7,
            "sequentiality {}",
            stats.sequentiality
        );
    }

    #[test]
    fn synthetic_trace_is_deterministic_per_seed() {
        assert_eq!(
            synthetic_ooc_trace(8 << 20, 1 << 20, 5),
            synthetic_ooc_trace(8 << 20, 1 << 20, 5)
        );
        assert_ne!(
            synthetic_ooc_trace(8 << 20, 1 << 20, 5),
            synthetic_ooc_trace(8 << 20, 1 << 20, 6)
        );
    }

    #[test]
    fn graph_trace_mixes_sequential_and_random() {
        let tr = graph_ooc_trace(64 << 20, 1 << 20, 0.25, 3);
        assert!(tr.total_bytes() >= 64 << 20);
        assert!((tr.read_fraction() - 1.0).abs() < 1e-12);
        // Random bytes land near the requested share.
        let random: u64 = tr
            .records
            .iter()
            .filter(|r| r.file == 1)
            .map(|r| r.len)
            .sum();
        let share = random as f64 / tr.total_bytes() as f64;
        assert!((0.15..0.35).contains(&share), "random share {share}");
        // Vertex touches are small, edge blocks large.
        assert!(tr
            .records
            .iter()
            .filter(|r| r.file == 1)
            .all(|r| r.len == 8192));
        assert!(tr
            .records
            .iter()
            .filter(|r| r.file == 0)
            .any(|r| r.len >= 1 << 20));
    }

    #[test]
    fn graph_trace_random_share_zero_is_pure_streaming() {
        let tr = graph_ooc_trace(16 << 20, 1 << 20, 0.0, 3);
        assert!(tr.records.iter().all(|r| r.file == 0));
    }

    #[test]
    fn checkpoint_trace_mixes_reads_and_writes() {
        let tr = checkpoint_trace(64 << 20, 16 << 20, 8 << 20, 4 << 20, 3);
        // Roughly one 8 MiB checkpoint per 16 MiB read: ~1/3 writes.
        let rf = tr.read_fraction();
        assert!((0.6..0.75).contains(&rf), "read fraction {rf}");
        // Checkpoint writes append sequentially in file 1.
        let writes: Vec<_> = tr.records.iter().filter(|r| !r.op.is_read()).collect();
        assert!(!writes.is_empty());
        for w in writes.windows(2) {
            assert_eq!(w[1].offset, w[0].offset + w[0].len);
            assert_eq!(w[0].file, 1);
        }
    }

    #[test]
    fn kv_lookup_trace_is_small_random_reads() {
        let tr = kv_lookup_trace(16 << 20, 8192, 7);
        assert!(tr.total_bytes() >= 16 << 20);
        assert!((tr.read_fraction() - 1.0).abs() < 1e-12);
        assert!(tr.records.iter().all(|r| r.len <= 8192));
        // Random point lookups: near-zero sequentiality.
        let stats = ooctrace::AccessStats::of_posix(&tr);
        assert!(
            stats.sequentiality < 0.2,
            "sequentiality {}",
            stats.sequentiality
        );
        // Deterministic per seed.
        assert_eq!(tr, kv_lookup_trace(16 << 20, 8192, 7));
        assert_ne!(tr, kv_lookup_trace(16 << 20, 8192, 8));
    }

    #[test]
    fn lobpcg_trace_is_read_only_panel_sweeps() {
        let (tr, eigs) = lobpcg_posix_trace(600, 4, 8, 100);
        assert!(!tr.is_empty());
        assert!((tr.read_fraction() - 1.0).abs() < 1e-12);
        // 6 panels per sweep; at least the initial apply plus iterations.
        assert!(tr.len() >= 12, "only {} records", tr.len());
        // Eigenvalues are finite and ascending.
        assert!(eigs.windows(2).all(|w| w[0] <= w[1]));
        assert!(eigs.iter().all(|v| v.is_finite()));
    }
}
