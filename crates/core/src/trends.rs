//! Figure 1: bandwidth over time for high-performance networks versus NVM
//! storage, and the crossover the paper's argument rests on.
//!
//! The figure plots per-channel bandwidth (log2 GB/s) of real devices and
//! network generations from 1998 to 2016. The exact values here are read
//! off the published figure and public datasheets; what matters for the
//! reproduction is the *shape*: NVM bandwidth grows much faster than
//! point-to-point network bandwidth and overtakes it around 2012.

use serde::Serialize;

/// Which technology family a data point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TrendSeries {
    /// InfiniBand generations (per-link).
    InfiniBand,
    /// Fibre Channel generations.
    FibreChannel,
    /// Flash-based SSDs (magnetic-era devices included for the early tail).
    FlashSsd,
    /// Non-flash NVM devices (RAM-SSD, PCM prototypes) and projections.
    OtherNvm,
}

/// One Figure-1 data point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrendPoint {
    /// Device / generation name.
    pub name: &'static str,
    /// Year of general availability.
    pub year: u32,
    /// Bandwidth per channel, GB/s.
    pub gb_s: f64,
    /// Series.
    pub series: TrendSeries,
}

/// The Figure-1 dataset.
pub fn figure1_points() -> Vec<TrendPoint> {
    use TrendSeries::*;
    vec![
        // Storage devices (early magnetic tail, then SSDs).
        TrendPoint {
            name: "Winchester",
            year: 1998,
            gb_s: 0.0156,
            series: FlashSsd,
        },
        TrendPoint {
            name: "A25FB",
            year: 2001,
            gb_s: 0.031,
            series: FlashSsd,
        },
        TrendPoint {
            name: "ST-Zeus",
            year: 2004,
            gb_s: 0.06,
            series: FlashSsd,
        },
        TrendPoint {
            name: "Intel-X25",
            year: 2008,
            gb_s: 0.25,
            series: FlashSsd,
        },
        TrendPoint {
            name: "SF-1000",
            year: 2009,
            gb_s: 0.5,
            series: FlashSsd,
        },
        TrendPoint {
            name: "ioDrive",
            year: 2010,
            gb_s: 0.75,
            series: FlashSsd,
        },
        TrendPoint {
            name: "Z-Drive R4",
            year: 2011,
            gb_s: 2.8,
            series: FlashSsd,
        },
        TrendPoint {
            name: "ioDrive2",
            year: 2012,
            gb_s: 3.0,
            series: FlashSsd,
        },
        TrendPoint {
            name: "ioDrive Octal",
            year: 2012,
            gb_s: 6.0,
            series: FlashSsd,
        },
        TrendPoint {
            name: "Future PCIe SSD",
            year: 2015,
            gb_s: 8.0,
            series: FlashSsd,
        },
        // Non-flash NVM.
        TrendPoint {
            name: "Silicon Disk II (RAM-SSD)",
            year: 2005,
            gb_s: 0.125,
            series: OtherNvm,
        },
        TrendPoint {
            name: "Onyx PCM Prototype",
            year: 2011,
            gb_s: 1.1,
            series: OtherNvm,
        },
        TrendPoint {
            name: "NonFlash-NVM SSD",
            year: 2013,
            gb_s: 4.0,
            series: OtherNvm,
        },
        TrendPoint {
            name: "Future Multi-channel PCM-SSD",
            year: 2016,
            gb_s: 16.0,
            series: OtherNvm,
        },
        // InfiniBand generations (4X links).
        TrendPoint {
            name: "IB SDR 4X",
            year: 2002,
            gb_s: 1.0,
            series: InfiniBand,
        },
        TrendPoint {
            name: "IB DDR 4X",
            year: 2005,
            gb_s: 2.0,
            series: InfiniBand,
        },
        TrendPoint {
            name: "IB QDR 4X",
            year: 2008,
            gb_s: 4.0,
            series: InfiniBand,
        },
        TrendPoint {
            name: "IB FDR 4X",
            year: 2011,
            gb_s: 6.8,
            series: InfiniBand,
        },
        TrendPoint {
            name: "IB EDR 4X",
            year: 2014,
            gb_s: 12.1,
            series: InfiniBand,
        },
        // Fibre Channel generations.
        TrendPoint {
            name: "FC 1G",
            year: 1998,
            gb_s: 0.1,
            series: FibreChannel,
        },
        TrendPoint {
            name: "FC 2G",
            year: 2001,
            gb_s: 0.2,
            series: FibreChannel,
        },
        TrendPoint {
            name: "FC 4G",
            year: 2004,
            gb_s: 0.4,
            series: FibreChannel,
        },
        TrendPoint {
            name: "FC 8G",
            year: 2008,
            gb_s: 0.8,
            series: FibreChannel,
        },
        TrendPoint {
            name: "FC 16G",
            year: 2012,
            gb_s: 1.6,
            series: FibreChannel,
        },
    ]
}

/// Least-squares exponential fit `gb_s ≈ 2^(a + b * (year - 1998))`
/// over a series; returns `(a, b)` — `b` is the doubling rate per year.
pub fn log2_fit(points: &[TrendPoint], series: TrendSeries) -> (f64, f64) {
    let xs: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.series == series)
        .map(|p| ((p.year - 1998) as f64, p.gb_s.log2()))
        .collect();
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().map(|(x, _)| x).sum();
    let sy: f64 = xs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = xs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = xs.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a, b)
}

/// First year in which the best available NVM device (flash or other NVM,
/// projections included) out-runs the best available network generation —
/// the visual crossover of Figure 1. Returns `None` if it never happens
/// within the dataset.
pub fn crossover_year(points: &[TrendPoint]) -> Option<u32> {
    let mut years: Vec<u32> = points.iter().map(|p| p.year).collect();
    years.sort_unstable();
    years.dedup();
    let best = |pred: &dyn Fn(&TrendPoint) -> bool, until: u32| -> f64 {
        points
            .iter()
            .filter(|p| p.year <= until && pred(p))
            .map(|p| p.gb_s)
            .fold(0.0, f64::max)
    };
    let is_nvm = |p: &TrendPoint| matches!(p.series, TrendSeries::FlashSsd | TrendSeries::OtherNvm);
    let is_net = |p: &TrendPoint| {
        matches!(
            p.series,
            TrendSeries::InfiniBand | TrendSeries::FibreChannel
        )
    };
    years
        .into_iter()
        .find(|&y| best(&is_nvm, y) > best(&is_net, y) && best(&is_net, y) > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_nonempty_per_series() {
        let pts = figure1_points();
        for s in [
            TrendSeries::InfiniBand,
            TrendSeries::FibreChannel,
            TrendSeries::FlashSsd,
            TrendSeries::OtherNvm,
        ] {
            assert!(pts.iter().filter(|p| p.series == s).count() >= 2, "{s:?}");
        }
    }

    #[test]
    fn nvm_grows_faster_than_networks() {
        let pts = figure1_points();
        let (_, b_ssd) = log2_fit(&pts, TrendSeries::FlashSsd);
        let (_, b_ib) = log2_fit(&pts, TrendSeries::InfiniBand);
        let (_, b_fc) = log2_fit(&pts, TrendSeries::FibreChannel);
        assert!(b_ssd > b_ib, "ssd {b_ssd} vs ib {b_ib}");
        assert!(b_ssd > b_fc);
    }

    #[test]
    fn crossover_lands_near_the_paper_epoch() {
        // Figure 1's premise: NVM "shows great potential to far surpass
        // network bandwidth within the decade" — the best NVM device
        // overtakes the best network generation by the mid-2010s.
        let y = crossover_year(&figure1_points()).expect("crossover exists");
        assert!(
            (2011..=2017).contains(&y),
            "crossover year {y} outside the expected window"
        );
    }

    #[test]
    fn fit_reproduces_a_perfect_exponential() {
        let pts = vec![
            TrendPoint {
                name: "a",
                year: 2000,
                gb_s: 1.0,
                series: TrendSeries::FlashSsd,
            },
            TrendPoint {
                name: "b",
                year: 2002,
                gb_s: 4.0,
                series: TrendSeries::FlashSsd,
            },
            TrendPoint {
                name: "c",
                year: 2004,
                gb_s: 16.0,
                series: TrendSeries::FlashSsd,
            },
        ];
        let (a, b) = log2_fit(&pts, TrendSeries::FlashSsd);
        assert!((b - 1.0).abs() < 1e-9); // doubling every year
        assert!((a - (-2.0)).abs() < 1e-9); // 2^-2 at 1998
    }
}
